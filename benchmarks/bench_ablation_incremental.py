"""Ablation — incremental update (Lemma 2) vs recomputation.

The design choice DESIGN.md calls out: when B new points arrive, TSUBASA can
(a) update incrementally with Lemma 2 (the paper's real-time path), (b)
re-run Lemma 1 over the sketched windows of the new query window, or (c)
recompute from raw data. This bench measures all three as the query window
length grows, at fixed B.

Expected shape: Lemma 2's cost is independent of the query window length
(only the entering window is touched), Lemma 1 recomputation grows with
l / B, and the raw recompute grows with l — so the incremental advantage
widens with l.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.baseline.naive import baseline_correlation_matrix
from repro.core.lemma1 import combine_matrix
from repro.core.lemma2 import SlidingCorrelationState
from repro.core.sketch import build_sketch

BASIC_WINDOW = 50
QUERY_LENGTHS = (500, 1000, 2000, 3000)


def _setup(data, length):
    history = data[:, :length]
    sketch = build_sketch(history, BASIC_WINDOW)
    state = SlidingCorrelationState(sketch, length // BASIC_WINDOW)
    return sketch, state


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_lemma2_update(benchmark, ncea_like, length):
    _, state = _setup(ncea_like.values, length)
    block = ncea_like.values[:, -BASIC_WINDOW:]

    def update():
        state.slide_raw(block)
        return state.correlation_matrix()

    result = benchmark.pedantic(update, rounds=5, iterations=1)
    assert result.shape[0] == ncea_like.n_series


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_lemma1_recompute(benchmark, ncea_like, length):
    sketch, _ = _setup(ncea_like.values, length)
    idx = np.arange(sketch.n_windows)

    def recompute():
        return combine_matrix(
            sketch.means[:, idx], sketch.stds[:, idx], sketch.covs[idx],
            sketch.sizes[idx],
        )

    benchmark.pedantic(recompute, rounds=5, iterations=1)


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_raw_recompute(benchmark, ncea_like, length):
    data = ncea_like.values[:, :length]
    benchmark.pedantic(
        baseline_correlation_matrix, args=(data,), rounds=5, iterations=1
    )


def test_ablation_incremental_report(benchmark, ncea_like):
    """Print the three strategies' costs across query lengths."""
    import time

    rows = []
    lemma2_times = []
    for length in QUERY_LENGTHS:
        sketch, state = _setup(ncea_like.values, length)
        block = ncea_like.values[:, -BASIC_WINDOW:]
        idx = np.arange(sketch.n_windows)

        def timed(f, repeats=10):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                f()
                best = min(best, time.perf_counter() - start)
            return best

        t_lemma2 = timed(
            lambda: (state.slide_raw(block), state.correlation_matrix())
        )
        t_lemma1 = timed(
            lambda: combine_matrix(
                sketch.means[:, idx], sketch.stds[:, idx], sketch.covs[idx],
                sketch.sizes[idx],
            )
        )
        t_raw = timed(
            lambda: baseline_correlation_matrix(ncea_like.values[:, :length])
        )
        lemma2_times.append(t_lemma2)
        rows.append((length, t_lemma2, t_lemma1, t_raw))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Ablation: Lemma 2 vs recomputation (B={BASIC_WINDOW})",
        ["l", "lemma2_update_s", "lemma1_recompute_s", "raw_recompute_s"],
        rows,
    )
    # Shape: Lemma 2's cost stays flat in l while recomputes grow; at the
    # largest l the incremental path must win against both.
    assert lemma2_times[-1] < rows[-1][2]
    assert lemma2_times[-1] < rows[-1][3]
    assert lemma2_times[-1] < lemma2_times[0] * 6  # roughly length-invariant
