"""Ablation — window sweeps: prefix sums vs per-position Lemma 1 queries.

The paper's motivating workflow constructs a network per hypothesized
window. Answering each position with a Lemma 1 query costs O((l/B) * N^2)
per position; the :class:`~repro.core.sweep.SweepPlan` prefix sums reduce
that to O(N^2) per position independent of l/B. This bench sweeps the
query-window length and measures the per-position advantage.

Expected shape: per-query Lemma 1 cost grows with the window length (more
basic windows to fold); the prefix-sum cost stays flat, so the speedup grows
with the window length.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.lemma1 import combine_matrix
from repro.core.sketch import build_sketch
from repro.core.sweep import SweepPlan

BASIC_WINDOW = 50
WINDOW_LENGTHS = (4, 10, 20, 40)  # in basic windows
STRIDE = 1


@pytest.fixture(scope="module")
def sketch(ncea_like):
    return build_sketch(ncea_like.values, BASIC_WINDOW)


def _sweep_with_plan(plan, n_windows):
    return [
        plan.correlation_matrix(first, n_windows)
        for first in range(0, plan.n_windows - n_windows + 1, STRIDE)
    ]


def _sweep_with_lemma1(sketch, n_windows):
    out = []
    for first in range(0, sketch.n_windows - n_windows + 1, STRIDE):
        idx = np.arange(first, first + n_windows)
        out.append(
            combine_matrix(
                sketch.means[:, idx], sketch.stds[:, idx],
                sketch.covs[idx], sketch.sizes[idx],
            )
        )
    return out


@pytest.mark.parametrize("n_windows", WINDOW_LENGTHS)
def test_prefix_sum_sweep(benchmark, sketch, n_windows):
    plan = SweepPlan(sketch)
    results = benchmark.pedantic(
        _sweep_with_plan, args=(plan, n_windows), rounds=3, iterations=1
    )
    assert len(results) == sketch.n_windows - n_windows + 1


@pytest.mark.parametrize("n_windows", WINDOW_LENGTHS)
def test_per_query_sweep(benchmark, sketch, n_windows):
    benchmark.pedantic(
        _sweep_with_lemma1, args=(sketch, n_windows), rounds=3, iterations=1
    )


def test_ablation_sweep_report(benchmark, sketch, ncea_like):
    """Print the sweep comparison and check exactness + shape."""
    import time

    plan = SweepPlan(sketch)
    rows = []
    speedups = []
    for n_windows in WINDOW_LENGTHS:
        positions = sketch.n_windows - n_windows + 1

        def timed(f, *args, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                f(*args)
                best = min(best, time.perf_counter() - start)
            return best

        t_plan = timed(_sweep_with_plan, plan, n_windows)
        t_query = timed(_sweep_with_lemma1, sketch, n_windows)
        speedups.append(t_query / t_plan)
        rows.append(
            (n_windows * BASIC_WINDOW, positions,
             t_plan / positions, t_query / positions, t_query / t_plan)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Ablation: prefix-sum sweep vs per-position Lemma 1 "
        f"(B={BASIC_WINDOW}, stride={STRIDE})",
        ["window_len", "positions", "plan_s_per_pos", "lemma1_s_per_pos",
         "speedup"],
        rows,
    )
    # Exactness of one arbitrary position.
    first, n_windows = 7, 20
    got = plan.correlation_matrix(first, n_windows).values
    raw = ncea_like.values[:, first * 50 : (first + n_windows) * 50]
    np.testing.assert_allclose(got, np.corrcoef(raw), atol=1e-9)
    # Shape: the advantage grows with the window length.
    assert speedups[-1] > speedups[0]
