"""Figure 6c — Impact of the Number of Partitions.

Paper setting: 2,000 Berkeley Earth time-series; sketch and matrix
calculation times as the number of partitions/cores grows (one core always
reserved for the database worker).

Expected shape (paper): both sketch and matrix calculation times decrease as
cores are added (with diminishing returns from coordination overhead).

Scaled-down setting: 400 grid nodes, worker counts up to the host's cores.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.parallel.executor import parallel_query, parallel_sketch

BASIC_WINDOW = 120
QUERY_WINDOWS = 8
N_SERIES = 400


def _worker_sweep() -> tuple[int, ...]:
    """Worker counts to sweep.

    The sweep always exercises multi-worker execution (validating the §3.4
    architecture end to end); actual speedup is only asserted when the host
    has spare physical cores (see the report test).
    """
    cores = os.cpu_count() or 1
    return tuple(w for w in (1, 2, 4, 8) if w <= max(cores - 1, 4))


@pytest.fixture(scope="module")
def workload(berkeley_like):
    data = berkeley_like.subset(N_SERIES).values
    sketch = parallel_sketch(data, BASIC_WINDOW, n_workers=1).sketch
    return data, sketch


@pytest.mark.parametrize("n_workers", _worker_sweep())
def test_sketch_scaling(benchmark, workload, n_workers):
    data, _ = workload
    result = benchmark.pedantic(
        parallel_sketch, args=(data, BASIC_WINDOW, n_workers),
        rounds=1, iterations=1,
    )
    assert result.n_partitions <= n_workers


@pytest.mark.parametrize("n_workers", _worker_sweep())
def test_query_scaling(benchmark, workload, n_workers):
    _, sketch = workload
    result = benchmark.pedantic(
        parallel_query, args=(np.arange(QUERY_WINDOWS), n_workers),
        kwargs={"sketch": sketch},
        rounds=2, iterations=1,
    )
    assert result.matrix.shape == (N_SERIES, N_SERIES)


def test_fig6c_report(benchmark, workload):
    """Print the Figure 6c series and assert the scaling shape."""
    data, sketch = workload
    rows = []
    sketch_times = []
    for n_workers in _worker_sweep():
        sketch_result = parallel_sketch(data, BASIC_WINDOW, n_workers)
        query_result = parallel_query(
            np.arange(QUERY_WINDOWS), n_workers, sketch=sketch
        )
        sketch_times.append(sketch_result.calc_seconds)
        rows.append(
            (n_workers, sketch_result.calc_seconds, query_result.calc_seconds)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Figure 6c: impact of partitions (N={N_SERIES}, B={BASIC_WINDOW})",
        ["workers", "sketch_calc_s", "query_calc_s"],
        rows,
    )
    # Shape: on hosts with spare cores, adding workers must speed the sketch
    # up (the paper's Fig. 6c). On single-core hosts the sweep only validates
    # that the partitioned execution completes and stays exact.
    if (os.cpu_count() or 1) > 2 and len(sketch_times) >= 2:
        assert min(sketch_times[1:]) < sketch_times[0]
    assert all(t >= 0 for t in sketch_times)
