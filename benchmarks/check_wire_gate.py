"""CI gate: protocol v2 must beat JSON v1 at the highest concurrency.

Reads ``BENCH_provider.json`` (written by ``bench_provider_query.py``) and
fails when the binary columnar ``service_http_v2`` / ``service_ws_v2`` rows
are not at least :data:`MARGIN` times the throughput of their JSON v1 twins
at the largest service concurrency. The margin is deliberately below the
typically observed speedup — the point is a cheap sanity gate catching a v2
path that silently fell back to JSON (or an encode regression that erased
the columnar win), not a precise performance SLO; the benchmark JSON
artifact carries the real numbers.

Usage::

    python benchmarks/check_wire_gate.py [BENCH_provider.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: v2 throughput must be at least this many times the v1 throughput.
MARGIN = 1.5

#: v1-vs-v2 row pairs that must both clear the margin.
PAIRS = (("service_http", "service_http_v2"), ("service_ws", "service_ws_v2"))


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = Path(args[0]) if args else Path("BENCH_provider.json")
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"wire gate: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    rows = [
        row for row in payload.get("service", []) if "workers" not in row
    ]
    if not rows:
        print(f"wire gate: {path} has no service rows", file=sys.stderr)
        return 1
    top = max(row["concurrency"] for row in rows)
    at_top = {
        row["backend"]: row["qps"] for row in rows if row["concurrency"] == top
    }
    failed = False
    for v1_name, v2_name in PAIRS:
        missing = {v1_name, v2_name} - set(at_top)
        if missing:
            print(
                f"wire gate: service rows at c={top} are missing "
                f"{sorted(missing)}", file=sys.stderr,
            )
            return 1
        v1 = at_top[v1_name]
        v2 = at_top[v2_name]
        speedup = v2 / v1 if v1 > 0 else float("inf")
        ok = speedup >= MARGIN
        failed = failed or not ok
        print(
            f"wire gate [{'OK' if ok else 'FAIL'}]: at c={top}, {v2_name} "
            f"{v2:.1f} q/s vs {v1_name} {v1:.1f} q/s "
            f"({speedup:.2f}x, required >= {MARGIN}x)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
