"""Figure 6b — Parallel/disk-based Query Time Breakdown.

Paper setting: Berkeley Earth data, basic window 120, query window 960
(8 basic windows); database read time versus correlation-matrix calculation
time, for growing numbers of time-series, with partitioned workers reading
sketches straight from the database.

Expected shape (paper): read time is a small share of total query time (it
matters relatively more for small N), total query time grows quadratically
with N, and even the largest setting answers in far less than a minute.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, worker_count
from repro.parallel.executor import parallel_query, parallel_sketch

BASIC_WINDOW = 120
QUERY_WINDOWS = 960 // BASIC_WINDOW  # 8 basic windows, as in the paper
SERIES_COUNTS = (100, 200, 400)


@pytest.fixture(scope="module")
def stores(berkeley_like, tmp_path_factory):
    """One populated sketch store per series count."""
    root = tmp_path_factory.mktemp("fig6b")
    paths = {}
    for n_series in SERIES_COUNTS:
        path = root / f"sketch_{n_series}.db"
        parallel_sketch(
            berkeley_like.subset(n_series).values, BASIC_WINDOW,
            n_workers=worker_count(), store_path=path,
        )
        paths[n_series] = path
    return paths


@pytest.mark.parametrize("n_series", SERIES_COUNTS)
def test_parallel_query_time(benchmark, berkeley_like, stores, n_series):
    result = benchmark.pedantic(
        parallel_query,
        args=(np.arange(QUERY_WINDOWS), worker_count()),
        kwargs={"store_path": stores[n_series]},
        rounds=2, iterations=1,
    )
    data = berkeley_like.subset(n_series).values[:, : 960]
    np.testing.assert_allclose(result.matrix, np.corrcoef(data), atol=1e-9)


def test_fig6b_report(benchmark, stores):
    """Print the Figure 6b breakdown and assert its shape."""
    rows = []
    totals = []
    read_shares = []
    for n_series in SERIES_COUNTS:
        result = parallel_query(
            np.arange(QUERY_WINDOWS), worker_count(),
            store_path=stores[n_series],
        )
        totals.append(result.total_seconds)
        read_shares.append(result.read_seconds / result.total_seconds)
        rows.append(
            (n_series, result.read_seconds, result.calc_seconds,
             result.total_seconds, result.read_seconds / result.total_seconds)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Figure 6b: query time breakdown (B={BASIC_WINDOW}, "
        f"query={QUERY_WINDOWS} windows, workers={worker_count()})",
        ["N", "read_s", "calc_s", "total_s", "read_share"],
        rows,
    )
    # Shape: total grows with N; queries stay interactive (well under 60 s).
    assert totals[-1] > totals[0] * 0.8
    assert all(t < 60.0 for t in totals)
