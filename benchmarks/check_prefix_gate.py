"""CI gate: prefix queries must beat the direct path at the largest scale.

Reads ``BENCH_provider.json`` (written by ``bench_provider_query.py``) and
fails when ``prefix_cold`` is not at least :data:`MARGIN` times faster than
``direct`` at the largest ``ns_scale`` point. The margin is deliberately
generous — the point is a cheap sanity gate catching a prefix path that
silently fell back to streaming (or a build regression that made the tables
useless), not a precise performance SLO; the benchmark JSON artifact carries
the real numbers.

Usage::

    python benchmarks/check_prefix_gate.py [BENCH_provider.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: prefix_cold must be at least this many times faster than direct.
MARGIN = 1.5


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = Path(args[0]) if args else Path("BENCH_provider.json")
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"prefix gate: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    rows = payload.get("ns_scale", [])
    if not rows:
        print(f"prefix gate: {path} has no ns_scale rows", file=sys.stderr)
        return 1
    largest = max(row["n_windows"] for row in rows)
    at_largest = {
        row["backend"]: row["seconds"]
        for row in rows
        if row["n_windows"] == largest
    }
    missing = {"prefix_cold", "direct"} - set(at_largest)
    if missing:
        print(
            f"prefix gate: ns_scale rows at ns={largest} are missing "
            f"{sorted(missing)}", file=sys.stderr,
        )
        return 1
    prefix = at_largest["prefix_cold"]
    direct = at_largest["direct"]
    speedup = direct / prefix if prefix > 0 else float("inf")
    verdict = "OK" if speedup >= MARGIN else "FAIL"
    print(
        f"prefix gate [{verdict}]: at ns={largest}, prefix_cold "
        f"{prefix * 1e3:.2f} ms vs direct {direct * 1e3:.2f} ms "
        f"({speedup:.1f}x, required >= {MARGIN}x)"
    )
    return 0 if speedup >= MARGIN else 1


if __name__ == "__main__":
    raise SystemExit(main())
