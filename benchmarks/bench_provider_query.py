"""Provider benchmark: in-memory vs store-backed (cold/warm) query latency.

Times the same Lemma 1 all-pairs query through each sketch backend:

* ``memory`` — :class:`~repro.engine.providers.InMemoryProvider` over a fully
  materialized sketch (the paper's in-memory configuration);
* ``store_cold`` — :class:`~repro.engine.providers.StoreProvider` over a
  SQLite store with an empty LRU cache (every window record read from disk);
* ``store_warm`` — the same provider immediately re-queried, so the LRU
  serves the window records;
* ``mmap_cold`` — a fresh :class:`~repro.engine.providers.MmapProvider` per
  repeat (re-maps the store's arrays, then reads zero-copy);
* ``mmap_warm`` — the same provider re-queried over already-mapped pages;
* ``chunked_build`` — :class:`~repro.engine.providers.ChunkedBuildProvider`
  computing window covariances on demand from raw data;
* ``parallel_*`` — :func:`~repro.parallel.executor.parallel_query` fan-out
  over each backend (shared-memory shipping for in-memory sketches, path
  handoff for SQLite and mmap stores);
* ``convert_*`` — the sketch→store conversion cost per backend (the §3.4
  ingestion-side write path).

Beyond the per-query rows, three system-level axes are recorded:

* ``scale`` — the same aligned query at n_stations 60 → 500 (records grow
  quadratically), tracking the mmap-vs-SQLite crossover as collections grow;
* ``ns_scale`` — the same full-range query at 1k → 50k basic *windows*:
  ``direct`` streams the whole selection through the Lemma 1 kernel
  (O(ns * n^2)), ``prefix_cold`` / ``prefix_warm`` answer from the store's
  persisted prefix-aggregate tables (O(n^2), flat in ``ns``). CI gates on
  ``prefix_cold`` beating ``direct`` at the largest point
  (``benchmarks/check_prefix_gate.py``);
* ``service`` — :class:`~repro.api.service.TsubasaService` throughput
  (queries/sec) over one shared provider at client concurrency 1/8/32, with
  the measured coalesce rate. ``service_http`` / ``service_ws`` rows run the
  same workload through a real :class:`~repro.api.server.TsubasaServer`
  socket via :class:`~repro.api.remote.TsubasaRemoteClient` threads, so the
  wire protocol's overhead over the in-process service is measured rather
  than assumed. The ``*_v2`` twins pin the binary columnar protocol v2 on
  the same connections (CI gates v2 beating JSON v1 at the highest
  concurrency via ``benchmarks/check_wire_gate.py``), and
  ``service_http_v2_workers`` scales the v2 workload over 1/2/4
  ``SO_REUSEPORT`` acceptor processes.

Run as a script to emit ``BENCH_provider.json`` at the repository root, so
the provider-layer performance trajectory accumulates across revisions::

    PYTHONPATH=src python benchmarks/bench_provider_query.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.api.client import TsubasaClient
from repro.api.service import run_specs
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.exact import TsubasaHistorical
from repro.core.sketch import build_sketch
from repro.data.synthetic import generate_station_dataset
from repro.engine.providers import (
    ChunkedBuildProvider,
    InMemoryProvider,
    MmapProvider,
    StoreProvider,
)
from repro.parallel.executor import parallel_query
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch
from repro.storage.sqlite_store import SqliteSketchStore

N_STATIONS = 60
N_POINTS = 3000
BASIC_WINDOW = 50
QUERY = (2999, 2000)  # aligned: 40 basic windows
ARBITRARY_QUERY = (2971, 1903)  # head/tail fragments at both ends
REPEATS = 5
PARALLEL_WORKERS = 4

#: n-stations scale axis: records grow as n^2, tracking where the backends'
#: cold-query ranking shifts as collections approach deployment size.
SCALE_STATIONS = (60, 150, 300, 500)
SCALE_POINTS = 2000
SCALE_QUERY = (1999, 1500)  # aligned: 30 basic windows

#: n-windows scale axis: the direct path reads every selected record, the
#: prefix path reads two table rows — this axis shows the flat-vs-linear
#: split. Small n keeps the 50k-window store (and its prefix tables) at a
#: CI-friendly size.
NS_SCALE_WINDOWS = (1_000, 5_000, 20_000, 50_000)
NS_SCALE_STATIONS = 12
NS_SCALE_BASIC_WINDOW = 8

#: Service throughput axis: concurrent clients multiplexed over one shared
#: provider by TsubasaService.
SERVICE_CONCURRENCY = (1, 8, 32)
SERVICE_QUERIES = 64


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(store_dir: Path) -> dict:
    dataset = generate_station_dataset(
        n_stations=N_STATIONS, n_points=N_POINTS, seed=42
    )
    data = dataset.values
    sketch = build_sketch(data, BASIC_WINDOW, names=dataset.names)
    store_path = store_dir / "bench_provider.db"
    mmap_path = store_dir / "bench_provider.mm"

    results = []

    def record(backend: str, seconds: float, query=None, extra=None):
        entry = {"backend": backend, "seconds": seconds}
        if query is not None:
            entry["query"] = {"end": query[0], "length": query[1]}
        if extra:
            entry.update(extra)
        results.append(entry)

    # Sketch -> store conversion (the ingestion-side write path, Fig. 6a's
    # write bars), one cold run per backend.
    with SqliteSketchStore(store_path) as store:
        start = time.perf_counter()
        save_sketch(store, sketch)
        record(
            "convert_sqlite",
            time.perf_counter() - start,
            extra={"store_bytes": store.size_bytes()},
        )
    with MmapStore(mmap_path) as store:
        start = time.perf_counter()
        save_sketch(store, sketch)
        record(
            "convert_mmap",
            time.perf_counter() - start,
            extra={"store_bytes": store.size_bytes()},
        )

    # In-memory reference (with raw data for the arbitrary query).
    memory_engine = TsubasaHistorical(
        provider=InMemoryProvider(sketch, data=data)
    )
    reference = memory_engine.correlation_matrix(QUERY).values
    record(
        "memory", _best_of(lambda: memory_engine.correlation_matrix(QUERY)), QUERY
    )
    record(
        "memory",
        _best_of(lambda: memory_engine.correlation_matrix(ARBITRARY_QUERY)),
        ARBITRARY_QUERY,
    )

    # Store-backed: cold means a fresh provider (empty cache) per repeat.
    with SqliteSketchStore(store_path) as store:

        def cold_query():
            provider = StoreProvider(store, cache_windows=64)
            return provider, TsubasaHistorical(provider=provider).correlation_matrix(QUERY)

        t_cold = _best_of(lambda: cold_query()[1])
        provider, matrix = cold_query()
        np.testing.assert_array_equal(matrix.values, reference)
        record(
            "store_cold", t_cold, QUERY, {"windows_read": provider.windows_read}
        )

        warm_engine = TsubasaHistorical(provider=provider)
        t_warm = _best_of(lambda: warm_engine.correlation_matrix(QUERY))
        record(
            "store_warm",
            t_warm,
            QUERY,
            {"cache_hits": provider.cache_hits, "cache_misses": provider.cache_misses},
        )

        arb_provider = StoreProvider(store, cache_windows=64, data=data)
        arb_engine = TsubasaHistorical(provider=arb_provider)
        arb_engine.correlation_matrix(ARBITRARY_QUERY)  # warm the cache
        record(
            "store_warm",
            _best_of(lambda: arb_engine.correlation_matrix(ARBITRARY_QUERY)),
            ARBITRARY_QUERY,
        )

    # Memory-mapped store: cold re-maps the arrays every repeat, warm reuses
    # the provider (and the already-faulted pages).
    def mmap_cold_query():
        provider = MmapProvider(mmap_path)
        return TsubasaHistorical(provider=provider).correlation_matrix(QUERY)

    np.testing.assert_array_equal(mmap_cold_query().values, reference)
    record("mmap_cold", _best_of(mmap_cold_query), QUERY)

    mmap_provider = MmapProvider(mmap_path, data=data)
    mmap_engine = TsubasaHistorical(provider=mmap_provider)
    record(
        "mmap_warm", _best_of(lambda: mmap_engine.correlation_matrix(QUERY)), QUERY
    )
    record(
        "mmap_warm",
        _best_of(lambda: mmap_engine.correlation_matrix(ARBITRARY_QUERY)),
        ARBITRARY_QUERY,
    )

    # Parallel fan-out over every backend (aligned query only). Each repeat
    # pays the full fork + handoff cost, which is the honest deployment shape.
    plan_windows = np.arange(
        (QUERY[0] + 1 - QUERY[1]) // BASIC_WINDOW, (QUERY[0] + 1) // BASIC_WINDOW
    )
    in_memory = InMemoryProvider(sketch)
    np.testing.assert_allclose(
        parallel_query(
            plan_windows, n_workers=PARALLEL_WORKERS, provider=in_memory
        ).matrix,
        reference,
        atol=1e-10,
    )
    record(
        "parallel_memory_shm",
        _best_of(
            lambda: parallel_query(
                plan_windows, n_workers=PARALLEL_WORKERS, provider=in_memory
            ),
            repeats=3,
        ),
        QUERY,
        {"n_workers": PARALLEL_WORKERS},
    )
    with SqliteSketchStore(store_path) as store:
        sqlite_provider = StoreProvider(store)
        record(
            "parallel_sqlite",
            _best_of(
                lambda: parallel_query(
                    plan_windows, n_workers=PARALLEL_WORKERS, provider=sqlite_provider
                ),
                repeats=3,
            ),
            QUERY,
            {"n_workers": PARALLEL_WORKERS},
        )
    record(
        "parallel_mmap",
        _best_of(
            lambda: parallel_query(
                plan_windows, n_workers=PARALLEL_WORKERS, provider=mmap_provider
            ),
            repeats=3,
        ),
        QUERY,
        {"n_workers": PARALLEL_WORKERS},
    )

    # Chunked on-demand build (cold per repeat: fresh provider, tiny cache).
    def chunked_query():
        provider = ChunkedBuildProvider(
            data, BASIC_WINDOW, chunk_rows=16, cache_windows=4
        )
        return TsubasaHistorical(provider=provider).correlation_matrix(QUERY)

    np.testing.assert_allclose(chunked_query().values, reference, atol=1e-10)
    record("chunked_build", _best_of(chunked_query, repeats=3), QUERY)

    return {
        "benchmark": "provider_query",
        "config": {
            "n_stations": N_STATIONS,
            "n_points": N_POINTS,
            "basic_window": BASIC_WINDOW,
            "repeats": REPEATS,
            "parallel_workers": PARALLEL_WORKERS,
            "scale_stations": list(SCALE_STATIONS),
            "scale_points": SCALE_POINTS,
            "ns_scale_windows": list(NS_SCALE_WINDOWS),
            "ns_scale_stations": NS_SCALE_STATIONS,
            "ns_scale_basic_window": NS_SCALE_BASIC_WINDOW,
            "service_concurrency": list(SERVICE_CONCURRENCY),
            "service_queries": SERVICE_QUERIES,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
        "scale": run_scale(store_dir),
        "ns_scale": run_ns_scale(store_dir),
        "service": run_service(store_dir),
    }


def run_scale(store_dir: Path) -> list[dict]:
    """The n-stations axis: one aligned query per backend per scale point."""
    rows: list[dict] = []
    for n_stations in SCALE_STATIONS:
        dataset = generate_station_dataset(
            n_stations=n_stations, n_points=SCALE_POINTS, seed=42
        )
        sketch = build_sketch(dataset.values, BASIC_WINDOW, names=dataset.names)
        store_path = store_dir / f"scale_{n_stations}.db"
        mmap_path = store_dir / f"scale_{n_stations}.mm"
        with SqliteSketchStore(store_path) as store:
            save_sketch(store, sketch)
            store_bytes = store.size_bytes()
        with MmapStore(mmap_path) as store:
            save_sketch(store, sketch)

        memory_engine = TsubasaHistorical(provider=InMemoryProvider(sketch))
        reference = memory_engine.correlation_matrix(SCALE_QUERY).values

        def timed(make_engine) -> float:
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                matrix = make_engine().correlation_matrix(SCALE_QUERY)
                best = min(best, time.perf_counter() - start)
            np.testing.assert_array_equal(matrix.values, reference)
            return best

        with SqliteSketchStore(store_path) as store:
            rows.append({
                "backend": "store_cold",
                "n_stations": n_stations,
                "seconds": timed(
                    lambda: TsubasaHistorical(
                        provider=StoreProvider(store, cache_windows=0)
                    )
                ),
                "store_bytes": store_bytes,
            })
        rows.append({
            "backend": "mmap_cold",
            "n_stations": n_stations,
            "seconds": timed(
                lambda: TsubasaHistorical(provider=MmapProvider(mmap_path))
            ),
        })
        rows.append({
            "backend": "memory",
            "n_stations": n_stations,
            "seconds": timed(
                lambda: TsubasaHistorical(provider=InMemoryProvider(sketch))
            ),
        })
    return rows


def run_ns_scale(store_dir: Path) -> list[dict]:
    """The n-windows axis: full-range query, prefix vs direct combination.

    Each scale point sketches ``ns`` basic windows into an mmap store with
    persisted prefix tables and times the same all-windows matrix query
    three ways: ``prefix_cold`` (fresh provider per repeat — open the store,
    map the tables, combine two rows), ``prefix_warm`` (provider reused),
    and ``direct`` (prefix serving disabled, the full streaming reduction).
    Results are cross-checked within the kernel's documented tolerance.
    """
    from repro.core.prefix import PREFIX_ATOL

    rng = np.random.default_rng(7)
    rows: list[dict] = []
    for n_windows in NS_SCALE_WINDOWS:
        data = rng.standard_normal(
            (NS_SCALE_STATIONS, n_windows * NS_SCALE_BASIC_WINDOW)
        )
        sketch = build_sketch(data, NS_SCALE_BASIC_WINDOW)
        mmap_path = store_dir / f"ns_{n_windows}.mm"
        with MmapStore(mmap_path) as store:
            save_sketch(store, sketch)
            store.build_prefix()
        del sketch, data
        spec = QuerySpec(
            op="matrix",
            window=WindowSpec(first_window=0, n_windows=n_windows),
        )

        direct_client = TsubasaClient(
            provider=MmapProvider(mmap_path, prefix=False)
        )
        warm_client = TsubasaClient(provider=MmapProvider(mmap_path))
        reference = direct_client.execute(spec)
        check = warm_client.execute(spec)
        assert reference.provenance.path == "direct"
        assert check.provenance.path == "prefix"
        np.testing.assert_allclose(
            check.value.values, reference.value.values,
            rtol=0.0, atol=PREFIX_ATOL,
        )

        def prefix_cold():
            client = TsubasaClient(provider=MmapProvider(mmap_path))
            assert client.execute(spec).provenance.path == "prefix"

        rows.append({
            "backend": "prefix_cold",
            "n_windows": n_windows,
            "seconds": _best_of(prefix_cold, repeats=3),
        })
        rows.append({
            "backend": "prefix_warm",
            "n_windows": n_windows,
            "seconds": _best_of(lambda: warm_client.execute(spec), repeats=3),
        })
        rows.append({
            "backend": "direct",
            "n_windows": n_windows,
            "seconds": _best_of(lambda: direct_client.execute(spec), repeats=3),
        })
    return rows


def _service_specs() -> list[QuerySpec]:
    """A dashboard-shaped workload: mixed ops over overlapping windows."""
    last = N_POINTS - 1
    windows = [
        WindowSpec(end=last, length=2000),
        WindowSpec(end=last, length=1000),
        WindowSpec(end=last - 500, length=1000),
        WindowSpec(end=last - 1000, length=1500),
    ]
    specs: list[QuerySpec] = []
    for i in range(SERVICE_QUERIES):
        window = windows[i % len(windows)]
        kind = i % 4
        if kind == 0:
            specs.append(QuerySpec(op="network", window=window, theta=0.75))
        elif kind == 1:
            specs.append(QuerySpec(op="top_k", window=window, k=10))
        elif kind == 2:
            specs.append(QuerySpec(op="degree", window=window, theta=0.75))
        else:
            specs.append(QuerySpec(op="matrix", window=window))
    return specs


def run_service(store_dir: Path) -> list[dict]:
    """TsubasaService throughput over one shared provider per backend."""
    store_path = store_dir / "bench_provider.db"
    mmap_path = store_dir / "bench_provider.mm"
    specs = _service_specs()
    rows: list[dict] = []
    for concurrency in SERVICE_CONCURRENCY:
        for name in ("service_store", "service_mmap"):
            if name == "service_store":
                store = SqliteSketchStore(store_path)
                client = TsubasaClient(provider=StoreProvider(store))
                max_workers = 1  # sqlite handles are not thread-safe
            else:
                store = None
                client = TsubasaClient(provider=MmapProvider(mmap_path))
                max_workers = 4  # read-only maps share safely
            start = time.perf_counter()
            try:
                _, stats = run_specs(
                    client, specs, max_workers=max_workers,
                    concurrency=concurrency,
                )
            finally:
                if store is not None:
                    store.close()
            elapsed = time.perf_counter() - start
            rows.append({
                "backend": name,
                "concurrency": concurrency,
                "queries": len(specs),
                "seconds": elapsed,
                "qps": len(specs) / elapsed,
                "coalesced": stats.coalesced,
                "coalesce_rate": round(stats.coalesce_rate, 4),
                "matrices_computed": stats.matrices_computed,
                "prefetched_windows": stats.prefetched_windows,
                "service_workers": max_workers,
            })
    rows.extend(run_service_remote(mmap_path, specs))
    rows.extend(run_service_workers(mmap_path, specs))
    return rows


def run_service_remote(mmap_path: Path, specs: list[QuerySpec]) -> list[dict]:
    """The same workload over a real socket: HTTP and WebSocket transports.

    One :class:`TsubasaServer` per transport row (mmap backend, 4 executor
    threads); ``concurrency`` remote clients on their own connections split
    the workload, so the row is comparable to the in-process ``service_mmap``
    row at the same concurrency — the delta is the wire protocol. Each
    transport runs twice: pinned to the JSON protocol
    (``service_http`` / ``service_ws``) and pinned to the binary columnar
    protocol v2 (``*_v2`` rows) — the delta between the pair is the
    encoding, measured on identical connections. CI gates on v2 beating v1
    at the highest concurrency (``benchmarks/check_wire_gate.py``).
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.api.remote import TsubasaRemoteClient
    from repro.api.server import serve_in_thread

    rows: list[dict] = []
    for transport in ("http", "ws"):
        for protocol, suffix in ((1, ""), (2, "_v2")):
            client = TsubasaClient(provider=MmapProvider(mmap_path))
            handle = serve_in_thread(
                client, service_kwargs={"max_workers": 4}
            )
            try:
                for concurrency in SERVICE_CONCURRENCY:
                    shares = [specs[i::concurrency] for i in range(concurrency)]

                    def worker(share: list[QuerySpec]) -> int:
                        if not share:
                            return 0
                        with TsubasaRemoteClient(
                            handle.address, transport=transport,
                            protocol=protocol,
                        ) as remote:
                            return len(remote.execute_many(share))
                    start = time.perf_counter()
                    with ThreadPoolExecutor(max_workers=concurrency) as pool:
                        answered = sum(pool.map(worker, shares))
                    elapsed = time.perf_counter() - start
                    assert answered == len(specs)
                    rows.append({
                        "backend": f"service_{transport}{suffix}",
                        "concurrency": concurrency,
                        "queries": len(specs),
                        "seconds": elapsed,
                        "qps": len(specs) / elapsed,
                        "service_workers": 4,
                        "protocol": protocol,
                    })
            finally:
                handle.stop()
    return rows


def run_service_workers(mmap_path: Path, specs: list[QuerySpec]) -> list[dict]:
    """v2 HTTP throughput against 1/2/4 ``SO_REUSEPORT`` acceptor processes.

    Each row starts an :class:`~repro.api.supervisor.AcceptorSupervisor`
    over the same mmap store (2 executor threads per worker) and drives the
    mixed workload at the highest service concurrency. On a multi-core
    machine throughput should scale near-linearly to ~4 workers; on a
    single core the rows document the (small) supervisor overhead instead.
    """
    import socket
    from concurrent.futures import ThreadPoolExecutor

    from repro.api.remote import TsubasaRemoteClient
    from repro.api.supervisor import AcceptorSupervisor, WorkerConfig

    if not hasattr(socket, "SO_REUSEPORT"):
        return []

    concurrency = max(SERVICE_CONCURRENCY)
    rows: list[dict] = []
    config = WorkerConfig(
        store=str(mmap_path),
        backend="mmap",
        service_kwargs={"max_workers": 2},
    )
    for workers in (1, 2, 4):
        with AcceptorSupervisor(config, workers=workers, port=0) as supervisor:
            shares = [specs[i::concurrency] for i in range(concurrency)]

            def worker(share: list[QuerySpec]) -> int:
                if not share:
                    return 0
                with TsubasaRemoteClient(
                    supervisor.address, protocol=2
                ) as remote:
                    return len(remote.execute_many(share))

            # One warm-up pass per worker count so every acceptor has
            # faulted its maps before the timed run.
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                sum(pool.map(worker, shares))
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                answered = sum(pool.map(worker, shares))
            elapsed = time.perf_counter() - start
            assert answered == len(specs)
            rows.append({
                "backend": "service_http_v2_workers",
                "workers": workers,
                "concurrency": concurrency,
                "queries": len(specs),
                "seconds": elapsed,
                "qps": len(specs) / elapsed,
                "service_workers": 2,
                "protocol": 2,
            })
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_provider.json"),
    )
    parser.add_argument("--store-dir", default=None,
                        help="directory for the throwaway stores "
                             "(default: a temporary directory)")
    args = parser.parse_args()

    import tempfile

    if args.store_dir is not None:
        payload = run(Path(args.store_dir))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            payload = run(Path(tmp))
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    by_backend = {}
    for entry in payload["results"]:
        q = entry.get("query")
        label = f"l={q['length']:<5}" if q else "build  "
        print(f"  {entry['backend']:<19} {label} "
              f"{entry['seconds'] * 1e3:8.2f} ms")
        if q and q["length"] == QUERY[1]:
            by_backend.setdefault(entry["backend"], entry["seconds"])
    if "mmap_cold" in by_backend and "store_cold" in by_backend:
        ratio = by_backend["store_cold"] / by_backend["mmap_cold"]
        print(f"  mmap_cold is {ratio:.1f}x faster than store_cold")
    print("scale (aligned query, 30 windows):")
    for entry in payload["scale"]:
        print(f"  {entry['backend']:<12} n={entry['n_stations']:<4} "
              f"{entry['seconds'] * 1e3:8.2f} ms")
    print("ns scale (full-range query, prefix vs direct):")
    for entry in payload["ns_scale"]:
        print(f"  {entry['backend']:<12} ns={entry['n_windows']:<6} "
              f"{entry['seconds'] * 1e3:8.2f} ms")
    print("service throughput (64 mixed queries, shared provider):")
    for entry in payload["service"]:
        coalesce = entry.get("coalesce_rate")
        if coalesce is not None:
            note = f"coalesce={coalesce:.2f}"
        elif "workers" in entry:
            note = f"workers={entry['workers']}"
        else:
            note = "remote"
        print(f"  {entry['backend']:<23} c={entry['concurrency']:<3} "
              f"{entry['qps']:8.1f} q/s  {note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
