"""Provider benchmark: in-memory vs store-backed (cold/warm) query latency.

Times the same Lemma 1 all-pairs query through each sketch backend:

* ``memory`` — :class:`~repro.engine.providers.InMemoryProvider` over a fully
  materialized sketch (the paper's in-memory configuration);
* ``store_cold`` — :class:`~repro.engine.providers.StoreProvider` over a
  SQLite store with an empty LRU cache (every window record read from disk);
* ``store_warm`` — the same provider immediately re-queried, so the LRU
  serves the window records;
* ``chunked_build`` — :class:`~repro.engine.providers.ChunkedBuildProvider`
  computing window covariances on demand from raw data.

Run as a script to emit ``BENCH_provider.json`` at the repository root, so
the provider-layer performance trajectory accumulates across revisions::

    PYTHONPATH=src python benchmarks/bench_provider_query.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.exact import TsubasaHistorical
from repro.core.sketch import build_sketch
from repro.data.synthetic import generate_station_dataset
from repro.engine.providers import (
    ChunkedBuildProvider,
    InMemoryProvider,
    StoreProvider,
)
from repro.storage.serialize import save_sketch
from repro.storage.sqlite_store import SqliteSketchStore

N_STATIONS = 60
N_POINTS = 3000
BASIC_WINDOW = 50
QUERY = (2999, 2000)  # aligned: 40 basic windows
ARBITRARY_QUERY = (2971, 1903)  # head/tail fragments at both ends
REPEATS = 5


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(store_dir: Path) -> dict:
    dataset = generate_station_dataset(
        n_stations=N_STATIONS, n_points=N_POINTS, seed=42
    )
    data = dataset.values
    sketch = build_sketch(data, BASIC_WINDOW, names=dataset.names)
    store_path = store_dir / "bench_provider.db"
    with SqliteSketchStore(store_path) as store:
        save_sketch(store, sketch)

    results = []

    def record(backend: str, query, seconds: float, extra=None):
        entry = {
            "backend": backend,
            "query": {"end": query[0], "length": query[1]},
            "seconds": seconds,
        }
        if extra:
            entry.update(extra)
        results.append(entry)

    # In-memory reference (with raw data for the arbitrary query).
    memory_engine = TsubasaHistorical(
        provider=InMemoryProvider(sketch, data=data)
    )
    reference = memory_engine.correlation_matrix(QUERY).values
    record("memory", QUERY, _best_of(lambda: memory_engine.correlation_matrix(QUERY)))
    record(
        "memory",
        ARBITRARY_QUERY,
        _best_of(lambda: memory_engine.correlation_matrix(ARBITRARY_QUERY)),
    )

    # Store-backed: cold means a fresh provider (empty cache) per repeat.
    with SqliteSketchStore(store_path) as store:

        def cold_query():
            provider = StoreProvider(store, cache_windows=64)
            return provider, TsubasaHistorical(provider=provider).correlation_matrix(QUERY)

        t_cold = _best_of(lambda: cold_query()[1])
        provider, matrix = cold_query()
        np.testing.assert_allclose(matrix.values, reference, atol=1e-10)
        record("store_cold", QUERY, t_cold, {"windows_read": provider.windows_read})

        warm_engine = TsubasaHistorical(provider=provider)
        t_warm = _best_of(lambda: warm_engine.correlation_matrix(QUERY))
        record(
            "store_warm",
            QUERY,
            t_warm,
            {"cache_hits": provider.cache_hits, "cache_misses": provider.cache_misses},
        )

        arb_provider = StoreProvider(store, cache_windows=64, data=data)
        arb_engine = TsubasaHistorical(provider=arb_provider)
        arb_engine.correlation_matrix(ARBITRARY_QUERY)  # warm the cache
        record(
            "store_warm",
            ARBITRARY_QUERY,
            _best_of(lambda: arb_engine.correlation_matrix(ARBITRARY_QUERY)),
        )

    # Chunked on-demand build (cold per repeat: fresh provider, tiny cache).
    def chunked_query():
        provider = ChunkedBuildProvider(
            data, BASIC_WINDOW, chunk_rows=16, cache_windows=4
        )
        return TsubasaHistorical(provider=provider).correlation_matrix(QUERY)

    np.testing.assert_allclose(chunked_query().values, reference, atol=1e-10)
    record("chunked_build", QUERY, _best_of(chunked_query, repeats=3))

    return {
        "benchmark": "provider_query",
        "config": {
            "n_stations": N_STATIONS,
            "n_points": N_POINTS,
            "basic_window": BASIC_WINDOW,
            "repeats": REPEATS,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_provider.json"),
    )
    parser.add_argument("--store-dir", default=None,
                        help="directory for the throwaway SQLite store "
                             "(default: a temporary directory)")
    args = parser.parse_args()

    import tempfile

    if args.store_dir is not None:
        payload = run(Path(args.store_dir))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            payload = run(Path(tmp))
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    for entry in payload["results"]:
        q = entry["query"]
        print(f"  {entry['backend']:<14} l={q['length']:<5} "
              f"{entry['seconds'] * 1e3:8.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
