"""Ablation — arbitrary query windows and the basic-window trade-off (§3.3).

TSUBASA's Lemma 1 supports query windows whose endpoints fall inside basic
windows, at the cost of sketching the partial head/tail fragments from raw
data at query time. §3.3's usability analysis predicts the generic query
cost is O((l/B + B) * N^2): growing B shrinks the sketch-scan term but grows
the worst-case fragment term, so arbitrary-window query time is minimized at
a moderate B (around sqrt(l)) — whereas aligned queries only benefit from
larger B.

This bench sweeps B for a fixed arbitrary query and prints aligned versus
arbitrary query times, asserting exactness throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.exact import TsubasaHistorical

BASIC_WINDOWS = (10, 25, 50, 100, 250, 500)
ARBITRARY_QUERY = (2969, 2000)  # endpoints straddle windows for every B
ALIGNED_QUERY = (2999, 2000)


@pytest.fixture(scope="module")
def engines(ncea_like):
    return {
        b: TsubasaHistorical(ncea_like.values, b) for b in BASIC_WINDOWS
    }


@pytest.mark.parametrize("window_size", BASIC_WINDOWS)
def test_arbitrary_query_time(benchmark, engines, ncea_like, window_size):
    engine = engines[window_size]
    matrix = benchmark(engine.correlation_matrix, ARBITRARY_QUERY)
    end, length = ARBITRARY_QUERY
    expected = np.corrcoef(ncea_like.values[:, end - length + 1 : end + 1])
    np.testing.assert_allclose(matrix.values, expected, atol=1e-9)


@pytest.mark.parametrize("window_size", BASIC_WINDOWS)
def test_aligned_query_time(benchmark, engines, window_size):
    engine = engines[window_size]
    benchmark(engine.correlation_matrix, ALIGNED_QUERY)


def test_ablation_arbitrary_report(benchmark, engines):
    """Print aligned vs arbitrary query times across B."""
    import time

    rows = []
    for window_size in BASIC_WINDOWS:
        engine = engines[window_size]

        def timed(query, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                engine.correlation_matrix(query)
                best = min(best, time.perf_counter() - start)
            return best

        t_aligned = timed(ALIGNED_QUERY)
        t_arbitrary = timed(ARBITRARY_QUERY)
        rows.append(
            (window_size, t_aligned, t_arbitrary, t_arbitrary / t_aligned)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Ablation: aligned vs arbitrary query time across basic window sizes "
        f"(l={ALIGNED_QUERY[1]})",
        ["B", "aligned_s", "arbitrary_s", "overhead"],
        rows,
    )
    # Shape: arbitrary queries pay a fragment-sketching overhead (>= aligned,
    # modulo timer noise on sub-millisecond measurements).
    assert all(r[2] >= r[1] * 0.5 for r in rows)
