"""Figure 5d — Network Update Time (real-time data).

Paper setting: query window of 3,000 points; after B new points arrive, both
algorithms update the correlation matrix incrementally — TSUBASA with
Lemma 2 (sketch the new window: O(B) per series + O(1) combination per pair)
and the DFT method with Eq. 6 (normalize + DFT the new window: O(B^2) per
series under the paper's cost model, 75% of coefficients).

Expected shape (paper): TSUBASA is at least an order of magnitude faster,
and the gap widens with the basic window size because of the DFT's O(B^2).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.approx.realtime import ApproxSlidingState
from repro.approx.sketch import build_approx_sketch
from repro.core.lemma2 import SlidingCorrelationState
from repro.core.sketch import build_sketch

BASIC_WINDOWS = (50, 100, 150, 200, 300)
QUERY_LENGTH = 3000


def _fresh_states(data, window_size):
    history = data[:, :QUERY_LENGTH]
    exact = SlidingCorrelationState(
        build_sketch(history, window_size), QUERY_LENGTH // window_size
    )
    approx = ApproxSlidingState(
        build_approx_sketch(history, window_size, coeff_fraction=0.75,
                            method="fft"),
        QUERY_LENGTH // window_size,
        dft_method="direct",
    )
    return exact, approx


@pytest.mark.parametrize("window_size", BASIC_WINDOWS)
def test_tsubasa_update_time(benchmark, ncea_like, window_size):
    exact, _ = _fresh_states(ncea_like.values, window_size)
    block = ncea_like.values[:, -window_size:]

    def update():
        exact.slide_raw(block)
        return exact.correlation_matrix()

    benchmark.pedantic(update, rounds=5, iterations=1)


@pytest.mark.parametrize("window_size", BASIC_WINDOWS)
def test_approx_update_time(benchmark, ncea_like, window_size):
    _, approx = _fresh_states(ncea_like.values, window_size)
    block = ncea_like.values[:, -window_size:]

    def update():
        approx.slide_raw(block)
        return approx.correlation_matrix()

    benchmark.pedantic(update, rounds=5, iterations=1)


def test_fig5d_report(benchmark, ncea_like):
    """Print the Figure 5d series and assert the paper's shape."""
    import time

    rows = []
    ratios = []
    for window_size in BASIC_WINDOWS:
        exact, approx = _fresh_states(ncea_like.values, window_size)
        block = ncea_like.values[:, -window_size:]

        def timed(state, repeats=10):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                state.slide_raw(block)
                state.correlation_matrix()
                best = min(best, time.perf_counter() - start)
            return best

        t_exact = timed(exact)
        t_approx = timed(approx)
        ratios.append(t_approx / t_exact)
        rows.append((window_size, t_exact, t_approx, t_approx / t_exact))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Figure 5d: network update time vs basic window size "
        f"(l={QUERY_LENGTH})",
        ["B", "tsubasa_s", "dft_75pct_s", "dft/tsubasa"],
        rows,
    )
    # Shape: the DFT update is slower everywhere, and the gap grows with B.
    assert all(r > 1.0 for r in ratios)
    assert ratios[-1] > ratios[0]
