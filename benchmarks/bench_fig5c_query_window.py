"""Figure 5c — Query Window Size Analysis (query time only).

Paper setting: basic window 50; vary the query window size and compare
query time of TSUBASA (Lemma 1 over pre-computed sketches), the DFT
approximation (Eq. 5 over pre-computed distances, 75% of coefficients — its
query time is independent of the coefficient count since the d_j are
sketched), and the baseline that computes Eq. 1 from raw data at query time.

Expected shape (paper): TSUBASA is on par with the approximation and
outperforms the baseline by about two orders of magnitude (it scans l/B
sketch entries instead of l raw points per pair).

Baseline note: the paper's Go baseline evaluates Eq. 1 pair by pair over raw
data; we report that literal per-pair loop (``loop`` column — this is where
the two-orders gap shows) alongside a fully vectorized BLAS baseline
(``vec`` column), which narrows the gap to roughly one order of magnitude
because a single large matrix product disproportionately favors the raw-data
scan. EXPERIMENTS.md discusses the mapping.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.approx.combine import eq5_correlation
from repro.approx.sketch import build_approx_sketch
from repro.baseline.naive import (
    baseline_correlation_matrix,
    baseline_pairwise_loop,
)
from repro.core.lemma1 import combine_matrix
from repro.core.sketch import build_sketch

BASIC_WINDOW = 50
QUERY_LENGTHS = (500, 1000, 1500, 2000, 2500, 3000)


@pytest.fixture(scope="module")
def sketches(ncea_like):
    data = ncea_like.values
    exact = build_sketch(data, BASIC_WINDOW)
    approx = build_approx_sketch(
        data, BASIC_WINDOW, coeff_fraction=0.75, method="fft"
    )
    return data, exact, approx


def _tsubasa_query(exact, n_windows):
    idx = np.arange(n_windows)
    return combine_matrix(
        exact.means[:, idx], exact.stds[:, idx], exact.covs[idx],
        exact.sizes[idx],
    )


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_tsubasa_query_time(benchmark, sketches, length):
    data, exact, _ = sketches
    result = benchmark(_tsubasa_query, exact, length // BASIC_WINDOW)
    np.testing.assert_allclose(
        result, np.corrcoef(data[:, :length]), atol=1e-9
    )


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_approx_query_time(benchmark, sketches, length):
    _, __, approx = sketches
    benchmark(eq5_correlation, approx, np.arange(length // BASIC_WINDOW))


@pytest.mark.parametrize("length", QUERY_LENGTHS)
def test_baseline_query_time(benchmark, sketches, length):
    data, _, __ = sketches
    benchmark(baseline_correlation_matrix, data[:, :length])


def test_fig5c_report(benchmark, sketches):
    """Print the Figure 5c series and assert the paper's ordering."""
    import time

    data, exact, approx = sketches
    rows = []
    for length in QUERY_LENGTHS:
        n_windows = length // BASIC_WINDOW

        def timed(f, *args, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                f(*args)
                best = min(best, time.perf_counter() - start)
            return best

        t_tsubasa = timed(_tsubasa_query, exact, n_windows)
        t_approx = timed(eq5_correlation, approx, np.arange(n_windows))
        t_vec = timed(baseline_correlation_matrix, data[:, :length])
        t_loop = timed(baseline_pairwise_loop, data[:, :length], repeats=1)
        rows.append((length, t_tsubasa, t_approx, t_vec, t_loop,
                     t_vec / t_tsubasa, t_loop / t_tsubasa))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Figure 5c: query time vs query window size (B={BASIC_WINDOW})",
        ["l", "tsubasa_s", "dft_75pct_s", "vec_baseline_s", "loop_baseline_s",
         "vec/tsubasa", "loop/tsubasa"],
        rows,
    )
    # Shape: the baseline pays per raw point; TSUBASA pays per basic window.
    vec_speedups = [r[5] for r in rows]
    loop_speedups = [r[6] for r in rows]
    assert all(s > 1.0 for s in vec_speedups)
    # The literal per-pair baseline (the paper's) is ~2 orders slower.
    assert loop_speedups[-1] > 30.0
    # The gap persists (or widens) as l grows.
    assert vec_speedups[-1] >= vec_speedups[0] * 0.5
