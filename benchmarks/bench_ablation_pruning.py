"""Ablation — threshold-matrix pruning (§3.5, Algorithm 5).

Not a paper figure (the paper lists threshold-based pruning as future work
and sketches the inference machinery in §3.5); this bench quantifies how much
of the boolean network matrix Eq. 7 inference decides without exact
correlation computation, as a function of the threshold and the anchor
budget.

Expected shape: higher thresholds are easier to decide (the blue/red regions
of Fig. 4 grow), so the pruning rate rises with theta; more anchors decide
more pairs; and the pruned matrix always equals exact thresholding.

Finding worth recording: on moderately correlated climate fields the Eq. 7
bounds almost never decide a pair (the anchor correlations are too far from
±1 — the white region of Fig. 4 dominates), so we report both the NCEA-like
field *and* a strongly clustered field where inference genuinely fires. This
is consistent with the paper deferring a practical pruning algorithm to
future work.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.baseline.naive import baseline_correlation_matrix
from repro.core.matrix import threshold_adjacency
from repro.core.pruning import prune_threshold_matrix

THETAS = (0.5, 0.7, 0.8, 0.9)
ANCHOR_BUDGETS = (1, 4, None)


@pytest.fixture(scope="module")
def corr(ncea_like):
    return baseline_correlation_matrix(ncea_like.values)


@pytest.fixture(scope="module")
def clustered_corr():
    """Strongly clustered field: 4 tight clusters of 15 series each."""
    rng = np.random.default_rng(99)
    signals = rng.normal(size=(4, 1500))
    rows = [
        signals[k] + 0.15 * rng.normal(size=1500)
        for k in range(4)
        for _ in range(15)
    ]
    return baseline_correlation_matrix(np.vstack(rows))


@pytest.mark.parametrize("theta", THETAS)
def test_pruning_time(benchmark, corr, theta):
    n = corr.shape[0]
    result = benchmark(
        prune_threshold_matrix, lambda i: corr[i], n, theta
    )
    np.testing.assert_array_equal(
        result.matrix, threshold_adjacency(corr, theta)
    )


def _sweep(matrix):
    n = matrix.shape[0]
    rows = []
    for theta in THETAS:
        for budget in ANCHOR_BUDGETS:
            result = prune_threshold_matrix(
                lambda i: matrix[i], n, theta, max_anchors=budget
            )
            np.testing.assert_array_equal(
                result.matrix, threshold_adjacency(matrix, theta)
            )
            rows.append(
                (theta, budget if budget is not None else "all",
                 result.decided_by_inference, result.computed_exactly,
                 result.rows_computed, result.pruning_rate)
            )
    return rows


def test_ablation_pruning_report(benchmark, corr, clustered_corr):
    """Print pruning rates across thresholds, anchors, and field types."""
    field_rows = _sweep(corr)
    cluster_rows = _sweep(clustered_corr)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Ablation: Eq. 7 pruning, NCEA-like field (N={corr.shape[0]})",
        ["theta", "anchors", "inferred_pairs", "computed_pairs", "rows",
         "pruning_rate"],
        field_rows,
    )
    print_table(
        f"Ablation: Eq. 7 pruning, clustered field (N={clustered_corr.shape[0]})",
        ["theta", "anchors", "inferred_pairs", "computed_pairs", "rows",
         "pruning_rate"],
        cluster_rows,
    )
    # Shape: on the clustered field, inference decides a meaningful share of
    # pairs and the strictest threshold prunes at least as well as the
    # loosest at the full anchor budget.
    cluster_full = [r[5] for r in cluster_rows if r[1] == "all"]
    assert cluster_full[0] > 0.1
    assert cluster_full[-1] >= cluster_full[0] * 0.5
    # On the moderate field the bounds rarely fire — record, don't require.
    field_full = [r[5] for r in field_rows if r[1] == "all"]
    assert all(0.0 <= r <= 1.0 for r in field_full)
