"""Figure 5b — Basic Window Size Analysis (sketch + query time).

Paper setting: query window of 3,000 points; vary the basic window size and
compare total (sketch + query) time of TSUBASA against the DFT approximation
with 100% and 75% of coefficients.

Expected shape (paper): TSUBASA's sketch time grows only gradually with B,
while the DFT sketch time *increases* with B because the per-window DFT is
O(B^2); TSUBASA's query time is on par with the approximation's.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.approx.combine import eq5_correlation
from repro.approx.sketch import build_approx_sketch
from repro.core.lemma1 import combine_matrix
from repro.core.sketch import build_sketch

BASIC_WINDOWS = (50, 100, 150, 200, 300)
QUERY_LENGTH = 3000


def _tsubasa_sketch_and_query(data, window_size):
    sketch = build_sketch(data, window_size)
    return combine_matrix(sketch.means, sketch.stds, sketch.covs, sketch.sizes)


def _approx_sketch_and_query(data, window_size, fraction):
    sketch = build_approx_sketch(
        data, window_size, coeff_fraction=fraction, method="direct"
    )
    return eq5_correlation(sketch, np.arange(sketch.n_windows))


@pytest.mark.parametrize("window_size", BASIC_WINDOWS)
def test_tsubasa_total_time(benchmark, ncea_like, window_size):
    data = ncea_like.values[:, :QUERY_LENGTH]
    result = benchmark.pedantic(
        _tsubasa_sketch_and_query, args=(data, window_size),
        rounds=3, iterations=1,
    )
    np.testing.assert_allclose(result, np.corrcoef(data), atol=1e-9)


@pytest.mark.parametrize("window_size", BASIC_WINDOWS)
@pytest.mark.parametrize("fraction", (1.0, 0.75))
def test_approx_total_time(benchmark, ncea_like, window_size, fraction):
    data = ncea_like.values[:, :QUERY_LENGTH]
    benchmark.pedantic(
        _approx_sketch_and_query, args=(data, window_size, fraction),
        rounds=3, iterations=1,
    )


def test_fig5b_report(benchmark, ncea_like):
    """Print the Figure 5b series and assert the paper's shape."""
    import time

    data = ncea_like.values[:, :QUERY_LENGTH]
    rows = []
    tsubasa_times, approx_times = [], []
    for window_size in BASIC_WINDOWS:
        start = time.perf_counter()
        _tsubasa_sketch_and_query(data, window_size)
        t_tsubasa = time.perf_counter() - start
        start = time.perf_counter()
        _approx_sketch_and_query(data, window_size, 1.0)
        t_full = time.perf_counter() - start
        start = time.perf_counter()
        _approx_sketch_and_query(data, window_size, 0.75)
        t_75 = time.perf_counter() - start
        tsubasa_times.append(t_tsubasa)
        approx_times.append(t_full)
        rows.append((window_size, t_tsubasa, t_full, t_75))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Figure 5b: sketch+query time vs basic window size (l={QUERY_LENGTH})",
        ["B", "tsubasa_s", "dft_all_s", "dft_75pct_s"],
        rows,
    )
    # Shape: TSUBASA beats the DFT method at every B, and the DFT method's
    # relative cost grows with B (its DFT is O(B^2) per window).
    assert all(t <= a for t, a in zip(tsubasa_times, approx_times))
    assert (approx_times[-1] / tsubasa_times[-1]) > (
        approx_times[0] / tsubasa_times[0]
    ) * 0.5  # ratio does not collapse as B grows
