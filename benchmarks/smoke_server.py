"""CI smoke test for the network server: serve, query remotely, drain.

Exercises the full deployment path as separate processes, the way an
operator runs it:

1. ``tsubasa generate`` + ``tsubasa sketch --store-backend mmap``
2. ``tsubasa serve --http 127.0.0.1:0 --auth-token ...`` as a child process
   (ephemeral port announced on stderr)
3. a :class:`~repro.api.remote.TsubasaRemoteClient` batch over HTTP and a
   pipelined batch over WebSockets — once pinned to JSON protocol 1 and
   once auto-negotiating binary columnar protocol v2 — every result checked
   bit-identical to in-process execution; a token-less request must be
   rejected with 401
4. SIGTERM → the server drains gracefully and exits 0
5. the same store served by ``--workers 2`` (``SO_REUSEPORT`` acceptor
   processes): both workers answer on the shared port; one worker is
   SIGKILLed in the middle of a retrying client's batches and not a single
   call fails (results stay bit-identical while the supervisor spawns a
   replacement); SIGTERM then drains both workers

Exits non-zero on any mismatch, so CI can gate on it::

    PYTHONPATH=src python benchmarks/smoke_server.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api.client import TsubasaClient
from repro.api.remote import TsubasaRemoteClient
from repro.api.resilience import RetryPolicy
from repro.api.spec import QuerySpec, WindowSpec
from repro.engine.providers import MmapProvider
from repro.exceptions import ServiceError
from repro.storage.mmap_store import MmapStore

CLI = [sys.executable, "-m", "repro.cli"]
TOKEN = "smoke-secret"


def check_results(remote, local) -> None:
    for got, want in zip(remote, local):
        if got.spec.op == "matrix":
            assert np.array_equal(
                got.value.values, want.value.values
            ), "matrix mismatch"
        elif got.spec.op == "network":
            assert got.value.edge_set() == want.value.edge_set()
        else:
            assert got.value == want.value, got.spec.op


def single_process(store: Path, specs, local) -> int:
    server = subprocess.Popen(
        [*CLI, "serve", "--store", str(store), "--backend", "mmap",
         "--http", "127.0.0.1:0", "--auth-token", TOKEN],
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stderr.readline()
        if "serving on http://" not in banner:
            print(f"unexpected banner: {banner!r}", file=sys.stderr)
            return 1
        address = banner.split("http://", 1)[1].split()[0]
        print(f"server up at {address}")
        try:
            TsubasaRemoteClient(address).execute(specs[0])
            print("token-less request was NOT rejected", file=sys.stderr)
            return 1
        except ServiceError:
            print("token-less request rejected (401)")
        for transport in ("http", "ws"):
            for protocol in (1, "auto"):
                with TsubasaRemoteClient(
                    address, transport=transport, protocol=protocol,
                    auth_token=TOKEN,
                ) as rc:
                    assert rc.health()["ok"] is True
                    remote = rc.execute_many(specs)
                    negotiated = rc.negotiated_protocol
                check_results(remote, local)
                print(
                    f"{transport} protocol={protocol}: {len(remote)} "
                    f"results bit-identical (negotiated {negotiated})"
                )
        server.send_signal(signal.SIGTERM)
        _, stderr = server.communicate(timeout=30)
        if server.returncode != 0:
            print(f"server exited {server.returncode}:\n{stderr}",
                  file=sys.stderr)
            return 1
        if "served 16 ok / 0 failed" not in stderr:
            print(f"unexpected drain summary:\n{stderr}", file=sys.stderr)
            return 1
        print("clean shutdown:", stderr.strip().splitlines()[-1])
    finally:
        if server.poll() is None:
            server.kill()
            try:
                # Surviving worker children inherit the stderr pipe, so an
                # unbounded communicate() can hang after a hard kill.
                server.communicate(timeout=10)
            except subprocess.TimeoutExpired:
                pass
    return 0


def multi_worker(store: Path, specs, local) -> int:
    server = subprocess.Popen(
        [*CLI, "serve", "--store", str(store), "--backend", "mmap",
         "--http", "127.0.0.1:0", "--workers", "2"],
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stderr.readline()
        if "2 SO_REUSEPORT workers" not in banner:
            print(f"unexpected banner: {banner!r}", file=sys.stderr)
            return 1
        address = banner.split("http://", 1)[1].split()[0]
        print(f"supervisor up at {address}")
        pids = set()
        for _ in range(40):
            with TsubasaRemoteClient(address, auth_token=TOKEN) as rc:
                pids.add(rc.health()["pid"])
                check_results(rc.execute_many(specs), local)
            if len(pids) >= 2:
                break
        if len(pids) != 2:
            print(f"expected 2 serving pids, saw {pids}", file=sys.stderr)
            return 1
        print(f"both workers answered: pids {sorted(pids)}")

        # Kill a worker in the middle of a retrying client's batches: not
        # a single call may fail (reconnects land on the survivor), and
        # the supervisor must bring a replacement up on the shared port.
        with TsubasaRemoteClient(
            address,
            retry=RetryPolicy(jitter=False, base_backoff=0.05),
        ) as rc:
            # health() pins the keep-alive connection to one worker, so
            # the batches after the kill are guaranteed to hit a dead
            # connection first and must transparently re-issue.
            victim = rc.health()["pid"]
            check_results(rc.execute_many(specs), local)
            os.kill(victim, signal.SIGKILL)
            for _ in range(2):
                check_results(rc.execute_many(specs), local)
        print(
            f"SIGKILLed worker {victim} mid-batch: "
            f"{3 * len(specs)} calls, 0 failed, all bit-identical"
        )
        survivors = set()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            try:
                with TsubasaRemoteClient(address) as probe:
                    survivors.add(probe.health()["pid"])
            except Exception:
                pass
            if len(survivors - {victim}) >= 2:
                break
            time.sleep(0.2)
        if len(survivors - {victim}) < 2:
            print(f"replacement worker never answered: saw {survivors}",
                  file=sys.stderr)
            return 1
        print(f"replacement up: pids {sorted(survivors - {victim})}")

        server.send_signal(signal.SIGTERM)
        _, stderr = server.communicate(timeout=60)
        if server.returncode != 0:
            print(f"supervisor exited {server.returncode}:\n{stderr}",
                  file=sys.stderr)
            return 1
        if "stopped 2 worker(s)" not in stderr:
            print(f"unexpected stop summary:\n{stderr}", file=sys.stderr)
            return 1
        if stderr.count("drained after") != 2:
            print(f"expected 2 worker drains:\n{stderr}", file=sys.stderr)
            return 1
        print("clean multi-worker shutdown:",
              stderr.strip().splitlines()[-1])
    finally:
        if server.poll() is None:
            server.kill()
            try:
                # Surviving worker children inherit the stderr pipe, so an
                # unbounded communicate() can hang after a hard kill.
                server.communicate(timeout=10)
            except subprocess.TimeoutExpired:
                pass
    return 0


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "data.npz"
        store = Path(tmp) / "sketch.mm"
        subprocess.run(
            [*CLI, "generate", "--stations", "20", "--points", "1000",
             "--seed", "1", "--out", str(data)],
            check=True,
        )
        subprocess.run(
            [*CLI, "sketch", "--data", str(data), "--window-size", "50",
             "--store", str(store), "--store-backend", "mmap"],
            check=True,
        )
        window = WindowSpec(end=999, length=600)
        specs = [
            QuerySpec(op="network", window=window, theta=0.5),
            QuerySpec(op="top_k", window=window, k=5),
            QuerySpec(op="matrix", window=window),
            QuerySpec(op="degree", window=window, theta=0.5),
        ]
        local = TsubasaClient(
            provider=MmapProvider(MmapStore(store, mode="r"))
        ).execute_many(specs)

        code = single_process(store, specs, local)
        if code:
            return code
        code = multi_worker(store, specs, local)
        if code:
            return code
    print("server smoke test passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
