"""Shared fixtures and helpers for the benchmark harness.

Every figure of the paper's evaluation (Figures 5a–5d in-memory, 6a–6d
parallel/disk-based) has a dedicated ``bench_fig*.py`` module. Workload sizes
are scaled down from the paper's testbed (64-core Xeon, 18k-node Berkeley
grid) to laptop scale; EXPERIMENTS.md records the mapping and compares the
measured *shapes* against the paper's claims.

Each bench module both:

* registers ``pytest-benchmark`` timings for the series the figure plots, and
* prints the figure's rows (``--benchmark-only -s`` shows them; the asserted
  qualitative shape guards against regressions either way).
"""

from __future__ import annotations

import os

import pytest

from repro.data.synthetic import generate_gridded_dataset, generate_station_dataset


def worker_count() -> int:
    """Computation workers: all cores minus one for the database worker."""
    return max(1, min((os.cpu_count() or 2) - 1, 8))


@pytest.fixture(scope="session")
def ncea_like():
    """NCEA-stand-in: 60 stations x 3000 hourly points (in-memory figures)."""
    return generate_station_dataset(n_stations=60, n_points=3000, seed=42)


@pytest.fixture(scope="session")
def berkeley_like():
    """Berkeley-Earth stand-in: gridded daily series, 1920 points (B=120 x 16).

    The paper uses 18,638 land nodes x 3,652 points; scalability sweeps here
    subset this grid (400 nodes) to stay laptop-sized.
    """
    return generate_gridded_dataset(
        lat_min=24.0, lat_max=49.0, lon_min=-124.0, lon_max=-69.0,
        resolution_deg=1.4, n_points=1920, seed=7,
    )


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print one figure's series as an aligned table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(f"{r[i]:.6g}" if isinstance(r[i], float) else str(r[i]))
                           for r in rows))
        for i, h in enumerate(headers)
    ]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = [
            (f"{c:.6g}" if isinstance(c, float) else str(c)).ljust(w)
            for c, w in zip(row, widths)
        ]
        print("  ".join(cells))
