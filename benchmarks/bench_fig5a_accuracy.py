"""Figure 5a — Network Accuracy Comparison.

Paper setting: NCEA data, basic window 200, threshold 0.75; the DFT-based
network's edge count and similarity ratio versus the number of DFT
coefficients (50..200). Exact TSUBASA (basic-window correlations) is the
solid reference line, independent of coefficient count.

Expected shape (paper): the DFT network has *extra* (false-positive) edges
that vanish only when all coefficients are used; similarity ratio rises with
the coefficient count and hits 1.0 at n = B.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.analysis.accuracy import compare_matrices
from repro.approx.combine import eq5_correlation
from repro.approx.sketch import build_approx_sketch
from repro.core.exact import TsubasaHistorical

BASIC_WINDOW = 200
THETA = 0.75
COEFF_COUNTS = (50, 100, 150, 200)


@pytest.fixture(scope="module")
def exact_matrix(ncea_like):
    engine = TsubasaHistorical(ncea_like.values, BASIC_WINDOW)
    return engine.correlation_matrix((ncea_like.n_points - 1,
                                      ncea_like.n_points)).values


def _approx_matrix(data, n_coeffs):
    sketch = build_approx_sketch(
        data, BASIC_WINDOW, n_coeffs=n_coeffs, method="fft"
    )
    return eq5_correlation(sketch, np.arange(sketch.n_windows))


@pytest.mark.parametrize("n_coeffs", COEFF_COUNTS)
def test_dft_network_accuracy(benchmark, ncea_like, exact_matrix, n_coeffs):
    approx = benchmark.pedantic(
        _approx_matrix, args=(ncea_like.values, n_coeffs),
        rounds=1, iterations=1,
    )
    comparison = compare_matrices(exact_matrix, approx, THETA)
    # Eq. 4: the approximate network never loses a true edge.
    assert comparison.false_negatives == 0
    if n_coeffs == BASIC_WINDOW:
        # All coefficients => identical to the exact network.
        assert comparison.similarity == 1.0
        assert comparison.approx_edges == comparison.exact_edges


def test_fig5a_report(benchmark, ncea_like, exact_matrix):
    """Print the full Figure 5a series and assert its qualitative shape."""
    rows = []
    similarities = []
    edge_counts = []
    for n_coeffs in COEFF_COUNTS:
        approx = _approx_matrix(ncea_like.values, n_coeffs)
        comparison = compare_matrices(exact_matrix, approx, THETA)
        similarities.append(comparison.similarity)
        edge_counts.append(comparison.approx_edges)
        rows.append(
            (n_coeffs, comparison.exact_edges, comparison.approx_edges,
             comparison.false_positives, comparison.false_negatives,
             comparison.similarity)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "Figure 5a: accuracy vs number of DFT coefficients "
        f"(B={BASIC_WINDOW}, theta={THETA})",
        ["n_coeffs", "exact_edges", "dft_edges", "false_pos", "false_neg",
         "similarity"],
        rows,
    )
    # Shape: similarity non-decreasing in coefficients, exact at n = B;
    # DFT edge count shrinks toward the exact count from above.
    assert similarities[-1] == 1.0
    assert all(a <= b + 1e-12 for a, b in zip(similarities, similarities[1:]))
    assert edge_counts[0] >= edge_counts[-1]
    assert rows[0][3] > 0  # few coefficients => spurious edges exist
