"""Figure 6d — Space Overhead of the sketch database.

Paper setting: 2,000 time-series; size of the database storing the sketches
as a function of the basic window size, for TSUBASA and the DFT method.

Expected shape (paper): both methods store the same-sized record per basic
window (two per-series stats plus one pairwise statistic per pair), so their
footprints coincide, and the total size shrinks as B grows (fewer windows).

Scaled-down setting: 200 grid nodes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.approx.sketch import build_approx_sketch
from repro.core.sketch import build_sketch
from repro.storage.serialize import save_approx_sketch, save_sketch
from repro.storage.sqlite_store import SqliteSketchStore

BASIC_WINDOWS = (60, 120, 240, 480)
N_SERIES = 200


def _store_sizes(data, window_size, tmp_path, tag):
    exact = build_sketch(data, window_size)
    with SqliteSketchStore(tmp_path / f"exact_{tag}.db") as store:
        save_sketch(store, exact)
        exact_bytes = store.size_bytes()
    approx = build_approx_sketch(
        data, window_size, coeff_fraction=0.75, method="fft"
    )
    with SqliteSketchStore(tmp_path / f"approx_{tag}.db") as store:
        save_approx_sketch(store, approx)
        approx_bytes = store.size_bytes()
    return exact_bytes, approx_bytes


@pytest.mark.parametrize("window_size", BASIC_WINDOWS)
def test_store_size(benchmark, berkeley_like, tmp_path, window_size):
    data = berkeley_like.subset(N_SERIES).values
    counter = [0]

    def run():
        counter[0] += 1
        return _store_sizes(
            data, window_size, tmp_path, f"{window_size}_{counter[0]}"
        )

    exact_bytes, approx_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exact_bytes > 0 and approx_bytes > 0


def test_fig6d_report(benchmark, berkeley_like, tmp_path):
    """Print the Figure 6d series and assert its shape."""
    data = berkeley_like.subset(N_SERIES).values
    rows = []
    exact_sizes = []
    for window_size in BASIC_WINDOWS:
        exact_bytes, approx_bytes = _store_sizes(
            data, window_size, tmp_path, str(window_size)
        )
        exact_sizes.append(exact_bytes)
        rows.append(
            (window_size, exact_bytes / 1e6, approx_bytes / 1e6,
             approx_bytes / exact_bytes)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Figure 6d: sketch store size vs basic window size (N={N_SERIES})",
        ["B", "tsubasa_MB", "dft_MB", "dft/tsubasa"],
        rows,
    )
    # Shape: size strictly shrinks as B grows; both methods coincide (same
    # per-window record layout) to within a few percent.
    assert all(a > b for a, b in zip(exact_sizes, exact_sizes[1:]))
    assert all(abs(r[3] - 1.0) < 0.05 for r in rows)
