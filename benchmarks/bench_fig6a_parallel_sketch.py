"""Figure 6a — Parallel/disk-based Sketch Time Breakdown.

Paper setting: Berkeley Earth data, basic window 120, 63 computation workers
plus one database worker; sketch-calculation time versus database write time
for growing numbers of time-series.

Expected shape (paper): TSUBASA's sketch calculation is cheap relative to the
database write (writes dominate), the DFT method's calculation is heavier
than TSUBASA's, and total time grows quadratically with N.

Scaled-down setting here: the grid subset goes up to 400 nodes and workers
are sized to the host (see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, worker_count
from repro.approx.sketch import build_approx_sketch
from repro.parallel.executor import parallel_sketch
from repro.storage.serialize import save_approx_sketch
from repro.storage.sqlite_store import SqliteSketchStore

BASIC_WINDOW = 120
SERIES_COUNTS = (100, 200, 400)


@pytest.mark.parametrize("n_series", SERIES_COUNTS)
def test_tsubasa_parallel_sketch(benchmark, berkeley_like, tmp_path, n_series):
    data = berkeley_like.subset(n_series).values
    counter = [0]

    def run():
        counter[0] += 1
        return parallel_sketch(
            data, BASIC_WINDOW, n_workers=worker_count(),
            store_path=tmp_path / f"sk{n_series}_{counter[0]}.db",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.sketch.n_series == n_series
    assert result.write_seconds > 0.0


@pytest.mark.parametrize("n_series", SERIES_COUNTS)
def test_approx_parallel_sketch(benchmark, berkeley_like, tmp_path, n_series):
    """DFT sketching (75% coefficients) plus the same database write."""
    data = berkeley_like.subset(n_series).values
    counter = [0]

    def run():
        counter[0] += 1
        sketch = build_approx_sketch(
            data, BASIC_WINDOW, coeff_fraction=0.75, method="direct"
        )
        with SqliteSketchStore(
            tmp_path / f"ap{n_series}_{counter[0]}.db"
        ) as store:
            save_approx_sketch(store, sketch)
        return sketch

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig6a_report(benchmark, berkeley_like, tmp_path):
    """Print the Figure 6a breakdown and assert its shape."""
    import time

    rows = []
    totals = []
    for n_series in SERIES_COUNTS:
        data = berkeley_like.subset(n_series).values
        result = parallel_sketch(
            data, BASIC_WINDOW, n_workers=worker_count(),
            store_path=tmp_path / f"rep{n_series}.db",
        )
        start = time.perf_counter()
        approx = build_approx_sketch(
            data, BASIC_WINDOW, coeff_fraction=0.75, method="direct"
        )
        approx_calc = time.perf_counter() - start
        start = time.perf_counter()
        with SqliteSketchStore(tmp_path / f"repa{n_series}.db") as store:
            save_approx_sketch(store, approx)
        approx_write = time.perf_counter() - start
        totals.append(result.total_seconds)
        rows.append(
            (n_series, result.calc_seconds, result.write_seconds,
             result.total_seconds, approx_calc, approx_write)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"Figure 6a: sketch time breakdown (B={BASIC_WINDOW}, "
        f"workers={worker_count()})",
        ["N", "tsubasa_calc_s", "tsubasa_write_s", "tsubasa_total_s",
         "dft_calc_s", "dft_write_s"],
        rows,
    )
    # Shape: total sketch time grows superlinearly with N (quadratic pairs),
    # and TSUBASA's calculation is cheaper than the DFT calculation.
    assert totals[-1] > totals[0]
    assert rows[-1][1] < rows[-1][4] * 4  # TSUBASA calc not slower than ~DFT
