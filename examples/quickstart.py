"""Quickstart: build a climate network from historical data in four steps.

1. Load (here: synthesize) a collection of geo-labeled time-series.
2. Sketch them once with a basic window size B.
3. Ask for the exact correlation matrix over any query window — including
   windows that are *not* aligned to basic windows.
4. Threshold into a climate network and look at its topology.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import QueryWindow, TsubasaHistorical, generate_station_dataset
from repro.analysis import hub_nodes, summarize_topology


def main() -> None:
    # 1. A year of hourly observations from 60 US weather stations
    #    (the paper's NCEA dataset has 157 stations x 8,760 points).
    dataset = generate_station_dataset(n_stations=60, n_points=8760, seed=7)
    print(f"dataset: {dataset.n_series} stations x {dataset.n_points} hours")

    # 2. Sketch once, at ingestion time. Everything after this step works
    #    from the sketch; raw data is only consulted for the partial
    #    head/tail fragments of non-aligned windows.
    engine = TsubasaHistorical(
        dataset.values,
        window_size=200,
        names=dataset.names,
        coordinates=dataset.coordinates,
    )
    print(f"sketched {engine.sketch.n_windows} basic windows of size 200")

    # 3. Query any window. The paper's running example: "the first six
    #    months of 2021" — here, the first half of the year.
    first_half = QueryWindow(end=4379, length=4380)
    matrix = engine.correlation_matrix(first_half)
    print(f"\nfirst-half correlation matrix: {matrix.n_series}x{matrix.n_series}")
    print(f"  corr({dataset.names[0]}, {dataset.names[1]}) = "
          f"{matrix.get(dataset.names[0], dataset.names[1]):+.4f}")

    # An arbitrary window (ends mid-window, odd length): still exact.
    odd_window = QueryWindow(end=5431, length=777)
    odd_matrix = engine.correlation_matrix(odd_window)
    raw_slice = dataset.values[:, odd_window.start : odd_window.stop]
    error = np.abs(odd_matrix.values - np.corrcoef(raw_slice)).max()
    print(f"\narbitrary window (end=5431, l=777) max error vs raw: {error:.2e}")

    # 4. Threshold into a network; any threshold works on the same matrix.
    for theta in (0.5, 0.75, 0.9):
        network = engine.network(first_half, theta=theta)
        print(f"\ntheta={theta}: {network.n_edges} edges")
        summary = summarize_topology(network)
        print(f"  density={summary.density:.4f} "
              f"components={summary.n_components} "
              f"clustering={summary.average_clustering:.3f}")

    network = engine.network(first_half, theta=0.75)
    print("\nhighest-degree stations (teleconnection hubs):")
    for name, degree in hub_nodes(network, top_k=5):
        lat, lon = dataset.coordinates[name]
        print(f"  {name} @ ({lat:.1f}, {lon:.1f}): degree {degree}")


if __name__ == "__main__":
    main()
