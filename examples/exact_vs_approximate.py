"""Exact vs DFT-approximate networks: the accuracy story of Figure 5a.

Builds the same climate network three ways — exact TSUBASA, StatStream-style
averaging, and the Eq. 5 combination — across coefficient budgets, and shows
where the approximation's false-positive edges come from and why TSUBASA's
exact sketches make the trade-off unnecessary.

Run:  python examples/exact_vs_approximate.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    TsubasaApproximate,
    TsubasaHistorical,
    build_approx_sketch,
    generate_station_dataset,
)
from repro.analysis import compare_matrices

BASIC_WINDOW = 200
THETA = 0.75


def main() -> None:
    dataset = generate_station_dataset(n_stations=80, n_points=4000, seed=13)
    data = dataset.values
    query = (3999, 4000)

    exact_engine = TsubasaHistorical(data, BASIC_WINDOW, names=dataset.names)
    exact = exact_engine.correlation_matrix(query)
    exact_edges = exact.n_edges(THETA)
    print(f"exact network (theta={THETA}): {exact_edges} edges")

    print(f"\n{'coeffs':>6} {'edges':>6} {'false_pos':>9} {'false_neg':>9} "
          f"{'similarity':>10}")
    for n_coeffs in (25, 50, 100, 150, 200):
        sketch = build_approx_sketch(
            data, BASIC_WINDOW, n_coeffs=n_coeffs, method="fft",
            names=dataset.names,
        )
        approx_engine = TsubasaApproximate(sketch)
        approx = approx_engine.correlation_matrix(query)
        comparison = compare_matrices(exact.values, approx.values, THETA)
        print(f"{n_coeffs:>6} {comparison.approx_edges:>6} "
              f"{comparison.false_positives:>9} "
              f"{comparison.false_negatives:>9} "
              f"{comparison.similarity:>10.4f}")

    print("\nnote: false negatives are always 0 (Eq. 4 guarantees a superset)"
          "\nand only n = B recovers the exact network — for climate data the"
          "\nmajority of coefficients are needed, which is the paper's case"
          "\nfor exact sketches.")

    # StatStream averaging vs Eq. 5 on drifting (uncooperative) series.
    drift = np.linspace(0.0, 4.0, data.shape[1]) * np.random.default_rng(5) \
        .normal(size=(data.shape[0], 1))
    drifting = data + drift
    exact_drift = np.corrcoef(drifting)
    sketch = build_approx_sketch(drifting, BASIC_WINDOW, method="fft")
    idx = np.arange(sketch.n_windows)
    from repro.approx import eq5_correlation, statstream_correlation

    avg_err = np.abs(statstream_correlation(sketch, idx) - exact_drift).max()
    eq5_err = np.abs(eq5_correlation(sketch, idx) - exact_drift).max()
    print(f"\nuncooperative series, all coefficients:")
    print(f"  StatStream averaging max error: {avg_err:.4f}")
    print(f"  Eq. 5 combination max error:    {eq5_err:.2e}")

    # And the cost side: sketching time, the paper's Figure 5b argument.
    start = time.perf_counter()
    TsubasaHistorical(data, BASIC_WINDOW)
    t_exact = time.perf_counter() - start
    start = time.perf_counter()
    build_approx_sketch(data, BASIC_WINDOW, coeff_fraction=0.75)
    t_approx = time.perf_counter() - start
    print(f"\nsketch time: TSUBASA {t_exact:.3f}s vs DFT(75%) {t_approx:.3f}s "
          f"({t_approx / t_exact:.1f}x)")


if __name__ == "__main__":
    main()
