"""Teleconnection analysis on gridded data: communities and seasonal change.

The climate-network use case that motivates the paper's introduction:
construct networks over a gridded temperature field (Berkeley-Earth-like),
find the regions whose anomalies move together (community detection), locate
teleconnection hubs (degree field), and contrast two seasons' networks —
which is exactly the "construct a network per hypothesized time-window and
compare" workflow the paper accelerates.

Run:  python examples/teleconnections.py
"""

from __future__ import annotations

import numpy as np

from repro import TsubasaHistorical, generate_gridded_dataset, similarity_ratio
from repro.analysis import detect_communities, hub_nodes, summarize_topology

BASIC_WINDOW = 30  # monthly basic windows over daily data
THETA = 0.7


def main() -> None:
    # A coarse CONUS grid with 2 years of daily anomalies.
    dataset = generate_gridded_dataset(
        lat_min=26.0, lat_max=48.0, lon_min=-123.0, lon_max=-69.0,
        resolution_deg=3.0, n_points=730, seed=4,
    )
    print(f"grid: {dataset.n_series} nodes x {dataset.n_points} days")

    engine = TsubasaHistorical(
        dataset.values, BASIC_WINDOW,
        names=dataset.names, coordinates=dataset.coordinates,
    )

    # Season windows: days 0-179 ("winter half") vs 180-359 ("summer half").
    winter = engine.network((179, 180), theta=THETA)
    summer = engine.network((359, 180), theta=THETA)

    for label, network in (("winter", winter), ("summer", summer)):
        summary = summarize_topology(network)
        print(f"\n{label} network: {summary.n_edges} edges, "
              f"{summary.n_components} components, "
              f"clustering {summary.average_clustering:.3f}")
        partition = detect_communities(network)
        print(f"  {partition.n_communities} communities, "
              f"modularity {partition.modularity:.3f}")
        largest = partition.communities[0]
        lats = [dataset.coordinates[n][0] for n in largest]
        lons = [dataset.coordinates[n][1] for n in largest]
        print(f"  largest community: {len(largest)} nodes centered near "
              f"({np.mean(lats):.1f}, {np.mean(lons):.1f})")
        print("  hubs:")
        for name, degree in hub_nodes(network, top_k=3):
            lat, lon = dataset.coordinates[name]
            print(f"    ({lat:.0f}, {lon:.0f}) degree {degree}")

    # How different are the two seasons' networks? (The paper's similarity
    # ratio, §4.1, over the two adjacency matrices.)
    ratio = similarity_ratio(winter.adjacency, summer.adjacency)
    stable = winter.edge_set() & summer.edge_set()
    print(f"\nwinter-vs-summer similarity ratio: {ratio:.4f}")
    print(f"edges present in both seasons: {len(stable)}")

    # The full-period network differs from both single-season networks —
    # the reason arbitrary, user-chosen windows matter.
    full = engine.network((729, 730), theta=THETA)
    print(f"full-period network: {full.n_edges} edges "
          f"(winter {winter.n_edges}, summer {summer.n_edges})")


if __name__ == "__main__":
    main()
