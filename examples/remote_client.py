"""Engines-as-a-service: query a TSUBASA server over HTTP and WebSockets.

1. Build a sketch and stand up a full service + server stack on a local
   socket (here on a background thread; in production, ``tsubasa serve
   --store sketch.mm --http 0.0.0.0:8787``).
2. Execute the same declarative QuerySpecs remotely over HTTP and over a
   WebSocket, once pinned to JSON protocol 1 and once auto-negotiating the
   binary columnar protocol v2 — results are bit-identical to in-process
   execution either way, and every request carries a bearer auth token.
3. Subscribe to live network updates: a replayed stream drives the
   real-time engine, and each completed basic window is pushed to the
   client as an ordered StreamEvent.

Every remote client here carries a RetryPolicy: connect failures, server
restarts, and overload sheds are retried with jittered exponential
backoff behind a per-endpoint circuit breaker, and the subscription
auto-resumes from its last seen sequence number if the connection drops.

Run:  python examples/remote_client.py
"""

from __future__ import annotations

import numpy as np

from repro.api.client import TsubasaClient
from repro.api.remote import TsubasaRemoteClient
from repro.api.resilience import RetryPolicy
from repro.api.server import serve_in_thread
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.realtime import TsubasaRealtime
from repro.core.sketch import build_sketch
from repro.data.synthetic import generate_station_dataset
from repro.engine.providers import InMemoryProvider
from repro.streams.ingestion import StreamIngestor
from repro.streams.sources import ReplaySource


TOKEN = "example-secret"


def main() -> None:
    dataset = generate_station_dataset(n_stations=24, n_points=1200, seed=7)
    sketch = build_sketch(dataset.values, 100, names=dataset.names)

    # The served half: any backend works (mmap in production); the realtime
    # engine replays the final 400 points as a live stream for subscribers.
    client = TsubasaClient(provider=InMemoryProvider(sketch))
    engine = TsubasaRealtime(dataset.values[:, :800], 100, names=dataset.names)
    ingestor = StreamIngestor(engine, theta=0.5)
    source = ReplaySource(dataset.values, 100, start=800)
    handle = serve_in_thread(
        client, ingestor=ingestor, source=source, pump_interval=0.3,
        server_kwargs={"auth_token": TOKEN},
    )
    print(f"server listening on http://{handle.address} (Bearer auth)")

    window = WindowSpec(end=1199, length=400)
    specs = [
        QuerySpec(op="network", window=window, theta=0.5),
        QuerySpec(op="top_k", window=window, k=5),
        QuerySpec(op="matrix", window=window),
    ]

    # Production client posture: retry idempotent queries on connection
    # failures and overload sheds (a circuit breaker is attached
    # automatically alongside the policy).
    retry = RetryPolicy(max_attempts=4, base_backoff=0.05)

    # In-process reference vs both remote transports, JSON v1 vs binary
    # columnar v2 ("auto" negotiates v2 here): all bit-identical.
    local = [TsubasaClient(provider=InMemoryProvider(sketch)).execute(s)
             for s in specs]
    for transport in ("http", "ws"):
        for protocol in (1, "auto"):
            with TsubasaRemoteClient(
                handle.address, transport=transport, protocol=protocol,
                auth_token=TOKEN, retry=retry,
            ) as remote:
                results = remote.execute_many(specs)
                if transport == "ws" and protocol == "auto":
                    # The hello exchange lands on binary columnar frames.
                    assert remote.negotiated_protocol == 2
            matrix_equal = np.array_equal(
                results[2].value.values, local[2].value.values
            )
            wire = "JSON v1" if protocol == 1 else "v2 frames"
            print(
                f"{transport:>4} protocol={protocol!s:>4} ({wire}): "
                f"network {results[0].value.n_edges} edges, "
                f"top pair {results[1].value[0][0]}--"
                f"{results[1].value[0][1]} "
                f"({results[1].value[0][2]:+.3f}), "
                f"matrix bit-identical={matrix_equal}"
            )

    # Live subscription: ordered snapshots pushed as basic windows
    # complete. With a retry policy attached the stream auto-resumes from
    # its last seen seq if the connection drops mid-stream.
    with TsubasaRemoteClient(
        handle.address, auth_token=TOKEN, retry=retry
    ) as remote:
        print("subscribing to live network updates (theta=0.5) ...")
        for event in remote.subscribe(
            theta=0.5, window_points=800, max_events=3
        ):
            data = event.event
            print(
                f"  event {event.seq}: t={data['timestamp']} "
                f"edges={data['n_edges']} "
                f"(+{len(data['appeared'])} / -{len(data['disappeared'])})"
            )
        stats = remote.stats()
    print(
        f"server stats: {stats['service']['completed']} queries completed, "
        f"{stats['server']['subscriptions_opened']} subscriptions, "
        f"coalesce rate {stats['service']['coalesce_rate']:.2f}"
    )
    handle.stop()
    print("server drained cleanly")


if __name__ == "__main__":
    main()
