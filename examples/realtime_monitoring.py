"""Real-time network monitoring: Algorithm 3 with blinking-link analysis.

Simulates the paper's real-time setting: a standing query
``w = ("now", m)`` over a feed that delivers observations in batches. Every
time a full basic window accumulates, the network is updated incrementally
with Lemma 2 — never recomputed — and the edge churn between snapshots is
tracked, the signal the climate literature calls "blinking links"
(Gozolchiani et al., cited in the paper's introduction).

Run:  python examples/realtime_monitoring.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import TsubasaRealtime, generate_station_dataset
from repro.analysis import summarize_dynamics
from repro.streams import ReplaySource, StreamIngestor

BASIC_WINDOW = 120
INITIAL_POINTS = 2400  # query window: the most recent 2,400 points
THETA = 0.6


def main() -> None:
    # Two years of hourly data; the first 2,400 points seed the window,
    # the rest arrives as a "live" feed in uneven batches.
    dataset = generate_station_dataset(n_stations=40, n_points=8760, seed=21)
    history = dataset.values[:, :INITIAL_POINTS]

    engine = TsubasaRealtime(
        history, BASIC_WINDOW, names=dataset.names,
        coordinates=dataset.coordinates,
    )
    print(f"initial network over the last {INITIAL_POINTS} points: "
          f"{engine.network(THETA).n_edges} edges (theta={THETA})")

    # NOAA uploads in 24-hour increments; replay the rest of the year in
    # batches of 24 points (the ingestor buffers until B accumulate).
    source = ReplaySource(dataset.values, batch_size=24, start=INITIAL_POINTS)
    ingestor = StreamIngestor(engine, theta=THETA)

    start = time.perf_counter()
    snapshots = ingestor.run(source, max_updates=30)
    elapsed = time.perf_counter() - start
    print(f"\nprocessed {len(snapshots)} window updates in {elapsed:.3f}s "
          f"({elapsed / len(snapshots) * 1e3:.2f} ms/update, Lemma 2)")

    print("\nupdate log (last 10):")
    for snap in snapshots[-10:]:
        print(f"  t={snap.timestamp}: {snap.network.n_edges:4d} edges "
              f"(+{len(snap.appeared)} / -{len(snap.disappeared)})")

    # Verify the incremental state never drifted from ground truth.
    now = engine.now
    truth = np.corrcoef(dataset.values[:, now - INITIAL_POINTS : now])
    drift = np.abs(engine.correlation_matrix().values - truth).max()
    print(f"\nmax drift vs recomputation after {len(snapshots)} slides: "
          f"{drift:.2e}")

    dynamics = summarize_dynamics([s.network for s in snapshots])
    print(f"\nnetwork dynamics over {dynamics.n_snapshots} snapshots:")
    print(f"  mean edges per snapshot: {dynamics.mean_edges:.1f}")
    print(f"  mean churn per update:   {dynamics.mean_churn:.1f}")
    print(f"  always-present edges:    {len(dynamics.stable_edges)}")
    print(f"  blinking links:          {len(dynamics.blinking_edges)}")
    for a, b in sorted(dynamics.blinking_edges)[:5]:
        print(f"    {a} <-> {b}")


if __name__ == "__main__":
    main()
