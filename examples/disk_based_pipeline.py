"""The disk-based, parallel deployment (§3.4) end to end.

Mirrors the paper's scalability setup: sketches are computed by partitioned
workers and written to a disk database by a dedicated writer; at query time
workers read the sketches they need straight from the database and emit
row-blocks of the correlation matrix. PostgreSQL is replaced by SQLite
(stdlib) behind the same store interface — DESIGN.md records the
substitution.

Run:  python examples/disk_based_pipeline.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import generate_gridded_dataset
from repro.parallel import parallel_query, parallel_sketch, partition_rows
from repro.storage import SqliteSketchStore, load_sketch

BASIC_WINDOW = 120
QUERY_WINDOWS = 8  # 960 points, as in the paper's Figure 6b
N_WORKERS = 4


def main() -> None:
    dataset = generate_gridded_dataset(
        lat_min=25.0, lat_max=49.0, lon_min=-124.0, lon_max=-70.0,
        resolution_deg=2.0, n_points=1920, seed=11,
    )
    data = dataset.values
    print(f"grid: {dataset.n_series} nodes x {dataset.n_points} days")

    parts = partition_rows(dataset.n_series, N_WORKERS)
    print(f"pair workload split into {len(parts)} balanced partitions "
          f"(rows per partition: {[len(p) for p in parts]})")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "sketches.db"

        # Ingestion: partitioned sketch computation + single database writer.
        result = parallel_sketch(
            data, BASIC_WINDOW, n_workers=N_WORKERS,
            store_path=store_path, names=dataset.names,
        )
        print(f"\nsketch phase: calc {result.calc_seconds:.3f}s, "
              f"db write {result.write_seconds:.3f}s")
        with SqliteSketchStore(store_path) as store:
            print(f"store: {store.window_count()} window records, "
                  f"{store.size_bytes() / 1e6:.2f} MB on disk")

        # Query: workers read from the database and compute row-blocks.
        query = parallel_query(
            np.arange(QUERY_WINDOWS), n_workers=N_WORKERS,
            store_path=store_path,
        )
        print(f"\nquery phase: db read {query.read_seconds:.3f}s, "
              f"matrix calc {query.calc_seconds:.3f}s")

        # Ground truth check against the raw slice.
        truth = np.corrcoef(data[:, : QUERY_WINDOWS * BASIC_WINDOW])
        print(f"max error vs raw recomputation: "
              f"{np.abs(query.matrix - truth).max():.2e}")

        # The store alone is enough to answer historical queries later —
        # e.g. a different analyst process loading only what it needs.
        start = time.perf_counter()
        with SqliteSketchStore(store_path) as store:
            suffix = load_sketch(store, indices=list(range(8, 16)))
        from repro.core.lemma1 import combine_matrix

        corr = combine_matrix(
            suffix.means, suffix.stds, suffix.covs, suffix.sizes
        )
        elapsed = time.perf_counter() - start
        truth = np.corrcoef(data[:, 8 * BASIC_WINDOW : 16 * BASIC_WINDOW])
        print(f"\nsecond process, different window: answered in "
              f"{elapsed * 1e3:.1f} ms from disk, "
              f"max error {np.abs(corr - truth).max():.2e}")


if __name__ == "__main__":
    main()
