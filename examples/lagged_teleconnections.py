"""Lagged teleconnections: directed lead/lag structure from sketches.

Extends the paper (its future work points toward unaligned series): climate
teleconnections often act with a delay — an anomaly at one location today
correlates with another location's anomaly days or weeks later. The lagged
sketch (:mod:`repro.core.lagged`) answers ``Corr(x_t, y_{t+L})`` exactly for
lags that are multiples of the basic window size, from one extra per-window
statistic.

This example builds a field where a "source" region drives a "downstream"
region with a known delay, then shows the lagged network recovering both the
direction and the lag.

Run:  python examples/lagged_teleconnections.py
"""

from __future__ import annotations

import numpy as np

from repro.core.lagged import build_lagged_sketch, lagged_correlation_matrix
from repro.core.queries import top_k_pairs
from repro.data.synthetic import ar1_series

BASIC_WINDOW = 30  # days
TRUE_LAG_WINDOWS = 2  # downstream follows source by 60 days
N_POINTS = 3000


def build_field(seed: int = 3) -> tuple[np.ndarray, list[str]]:
    """5 source series, 5 downstream series lagged by 60 days, 5 noise."""
    rng = np.random.default_rng(seed)
    driver = ar1_series(rng, 1, N_POINTS + 60, phi=0.97, scale=1.0)[0]
    lag = TRUE_LAG_WINDOWS * BASIC_WINDOW
    series, names = [], []
    for i in range(5):
        series.append(driver[lag:] + 0.3 * rng.normal(size=N_POINTS))
        names.append(f"source{i}")
    for i in range(5):
        series.append(driver[:-lag] + 0.3 * rng.normal(size=N_POINTS))
        names.append(f"downstream{i}")
    for i in range(5):
        series.append(ar1_series(rng, 1, N_POINTS, phi=0.8, scale=1.0)[0])
        names.append(f"noise{i}")
    return np.vstack(series), names


def main() -> None:
    data, names = build_field()
    sketch = build_lagged_sketch(
        data, BASIC_WINDOW, max_lag=4, names=names
    )
    print(f"sketched {sketch.n_windows} windows x lags 0..{sketch.max_lag} "
          f"for {sketch.n_series} series")

    # Mean source->downstream correlation at each lag: the true lag peaks.
    src = [i for i, n in enumerate(names) if n.startswith("source")]
    dst = [i for i, n in enumerate(names) if n.startswith("downstream")]
    print("\nlag (windows)  mean corr(source_t, downstream_{t+lag})")
    best_lag, best_value = 0, -2.0
    for lag in range(sketch.max_lag + 1):
        matrix = lagged_correlation_matrix(sketch, lag)
        value = float(np.mean(matrix.values[np.ix_(src, dst)]))
        marker = ""
        if value > best_value:
            best_lag, best_value = lag, value
            marker = "  <-- best so far"
        print(f"{lag:>13}  {value:+.4f}{marker}")
    print(f"\nrecovered lag: {best_lag} windows "
          f"(ground truth: {TRUE_LAG_WINDOWS})")

    # Direction: at the true lag, source leads downstream — the transpose
    # direction is much weaker.
    matrix = lagged_correlation_matrix(sketch, TRUE_LAG_WINDOWS)
    forward = float(np.mean(matrix.values[np.ix_(src, dst)]))
    backward = float(np.mean(matrix.values[np.ix_(dst, src)]))
    print(f"\nat lag {TRUE_LAG_WINDOWS}: source->downstream {forward:+.3f}, "
          f"downstream->source {backward:+.3f}")

    # The instantaneous (lag-0) network alone would miss the link strength.
    lag0 = lagged_correlation_matrix(sketch, 0)
    print("\nstrongest lag-0 pairs:")
    for a, b, c in top_k_pairs(lag0, 3):
        print(f"  {a} -- {b}: {c:+.3f}")
    print("strongest source/downstream pair at the true lag: "
          f"{matrix.values[np.ix_(src, dst)].max():+.3f} "
          f"(vs {lag0.values[np.ix_(src, dst)].max():+.3f} at lag 0)")


if __name__ == "__main__":
    main()
