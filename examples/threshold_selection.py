"""Choosing the threshold: fixed θ, significance levels, and the uncertain band.

The paper takes the correlation threshold as a user input and stresses that
the complete matrix lets you re-threshold at query time for free. This
example walks the threshold-selection workflow an analyst actually runs:

1. build the exact matrix once,
2. sweep fixed thresholds and watch the topology change,
3. derive θ from a statistical significance level instead (t-test with
   Bonferroni correction),
4. inspect the "uncertain band" of pairs near θ — the ones approximate
   methods and Eq. 7 inference are most likely to get wrong, and
5. render the chosen network as a terminal degree map.

Run:  python examples/threshold_selection.py
"""

from __future__ import annotations

from repro import TsubasaHistorical, generate_station_dataset
from repro.analysis import ascii_degree_map, topology_report
from repro.core.queries import pairs_in_range, top_k_pairs
from repro.core.significance import correlation_pvalues, critical_correlation

WINDOW = (8759, 4380)  # the most recent half year of hourly data


def main() -> None:
    dataset = generate_station_dataset(n_stations=80, n_points=8760, seed=29)
    engine = TsubasaHistorical(
        dataset.values, window_size=200, names=dataset.names,
        coordinates=dataset.coordinates,
    )
    matrix = engine.correlation_matrix(WINDOW)

    # 2. Fixed-threshold sweep: one matrix, many networks.
    print("theta   edges  density")
    for theta in (0.4, 0.5, 0.6, 0.7, 0.8, 0.9):
        edges = matrix.n_edges(theta)
        possible = 80 * 79 // 2
        print(f"{theta:>5}  {edges:>6}  {edges / possible:.4f}")

    # 3. Significance-derived threshold.
    n_pairs = 80 * 79 // 2
    theta_05 = critical_correlation(WINDOW[1], 0.05, n_comparisons=n_pairs)
    theta_001 = critical_correlation(WINDOW[1], 0.001, n_comparisons=n_pairs)
    print(f"\ntheta for alpha=0.05 (Bonferroni, {n_pairs} pairs): "
          f"{theta_05:.4f}")
    print(f"theta for alpha=0.001:                              "
          f"{theta_001:.4f}")
    pvals = correlation_pvalues(matrix.values, WINDOW[1])
    print(f"smallest off-diagonal p-value: {pvals[pvals > 0].min():.2e}"
          if (pvals > 0).any() else "all p-values are zero")

    # 4. The uncertain band around a working threshold.
    theta = 0.75
    band = pairs_in_range(matrix, theta - 0.05, theta + 0.05)
    print(f"\npairs within ±0.05 of theta={theta}: {len(band)}")
    for a, b, corr in band[:5]:
        print(f"  {a} -- {b}: {corr:+.4f}")
    print("strongest pairs overall:")
    for a, b, corr in top_k_pairs(matrix, 3):
        print(f"  {a} -- {b}: {corr:+.4f}")

    # 5. The chosen network, on a terminal map.
    network = engine.network(WINDOW, theta)
    print("\n" + topology_report(network))
    print("\ndegree map (north up; darker = higher degree):")
    print(ascii_degree_map(network, width=66, height=16))


if __name__ == "__main__":
    main()
