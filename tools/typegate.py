#!/usr/bin/env python3
"""Strict-typing ratchet gate: ``python tools/typegate.py``.

Runs ``mypy --strict`` over the typed surface of the package —
``src/repro/core/``, ``src/repro/storage/``, ``src/repro/exceptions.py``,
and the wire-facing API modules (``spec``/``protocol``/``resilience``/
``frames``) — and fails on any error in a module that is **not** listed in
the ratchet baseline (``tools/typing_baseline.txt``).

The baseline is the list of not-yet-strict modules. The gate *ratchets*:

* errors in a baselined module are reported but do not fail the gate;
* errors in any other module fail the gate (exit 1);
* a baselined module that comes back clean is reported so its entry can be
  deleted — shrinking the baseline is the only allowed direction. Use
  ``--strict-baseline`` (CI does) to also fail when a baseline entry no
  longer matches any file (stale entries hide typos).

When mypy is not installed (the bare dev container), the gate prints a
notice and exits 0 — CI installs mypy and enforces it on every push.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "typing_baseline.txt"

#: The strict target set. Paths are repo-root-relative.
STRICT_TARGETS = [
    "src/repro/exceptions.py",
    "src/repro/py.typed",  # marker, skipped by mypy; listed for visibility
    "src/repro/core",
    "src/repro/storage",
    "src/repro/api/spec.py",
    "src/repro/api/protocol.py",
    "src/repro/api/resilience.py",
    "src/repro/api/frames.py",
]


def load_baseline() -> list[str]:
    entries: list[str] = []
    if not BASELINE.exists():
        return entries
    for line in BASELINE.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.append(line)
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail on stale baseline entries that match no file (CI mode)",
    )
    args = parser.parse_args(argv)

    if shutil.which("mypy") is None:
        print(
            "typegate: mypy not installed; skipping locally "
            "(CI installs and enforces this gate)"
        )
        return 0

    baseline = load_baseline()
    stale = [
        entry
        for entry in baseline
        if not (REPO_ROOT / entry).exists()
    ]
    if stale:
        print(f"typegate: stale baseline entries (no such file): {stale}")
        if args.strict_baseline:
            return 1

    targets = [
        target
        for target in STRICT_TARGETS
        if not target.endswith("py.typed")
    ]
    proc = subprocess.run(
        ["mypy", "--strict", *targets],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    lines = proc.stdout.splitlines()
    gating: list[str] = []
    baselined: list[str] = []
    clean_baseline = set(baseline)
    for line in lines:
        if ": error:" not in line and ": note:" not in line:
            continue
        path = line.split(":", 1)[0].replace("\\", "/")
        entry = next((b for b in baseline if path.startswith(b)), None)
        if entry is not None:
            baselined.append(line)
            clean_baseline.discard(entry)
        elif ": error:" in line:
            gating.append(line)

    if baselined:
        print(
            f"typegate: {len(baselined)} error(s) in baselined "
            f"(not-yet-strict) modules — tolerated:"
        )
        for line in baselined:
            print(f"  [baseline] {line}")
    now_clean = sorted(
        entry for entry in clean_baseline if (REPO_ROOT / entry).exists()
    )
    if now_clean and proc.returncode in (0, 1):
        print(
            "typegate: these baseline entries are now strict-clean; "
            "ratchet by deleting them from tools/typing_baseline.txt:"
        )
        for entry in now_clean:
            print(f"  [ratchet] {entry}")
    if gating:
        print(f"typegate: {len(gating)} gating error(s) in strict modules:")
        for line in gating:
            print(f"  {line}")
        return 1
    if proc.returncode not in (0, 1):
        # mypy crashed or was misconfigured; surface everything.
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        return proc.returncode
    print(
        f"typegate: strict surface clean "
        f"({len(baseline)} module(s) still baselined)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
