"""``python -m tsulint`` — run the project-invariant linter.

Usage::

    PYTHONPATH=tools python -m tsulint src tests
    PYTHONPATH=tools python -m tsulint --list-rules
    PYTHONPATH=tools python -m tsulint --select TSU001,TSU004 src
    PYTHONPATH=tools python -m tsulint --require-reasons src tests   # CI mode

Exit status: 0 clean, 1 diagnostics found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from tsulint.engine import lint_files
from tsulint.rules import RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tsulint",
        description=(
            "AST linter for TSUBASA project invariants (blocking calls in "
            "async code, locks across await, seqlock discipline, the error "
            "taxonomy, zero-copy decode guards, spec field drift)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse over *.py)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--require-reasons",
        action="store_true",
        help=(
            "treat suppression comments without a `-- reason` justification "
            "as errors (CI mode)"
        ),
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.name}")
            print(f"        {rule.description}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("tsulint: error: no paths given", file=sys.stderr)
        return 2
    select: set[str] | None = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        known = {rule.code for rule in RULES}
        unknown = select - known
        if unknown:
            print(
                f"tsulint: error: unknown rule codes {sorted(unknown)}; "
                f"known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
    diagnostics, n_files = lint_files(
        args.paths,
        RULES,
        select=select,
        require_reasons=args.require_reasons,
    )
    for diag in diagnostics:
        print(diag.render())
    if not args.quiet:
        status = (
            f"{len(diagnostics)} finding(s)" if diagnostics else "clean"
        )
        print(
            f"tsulint: {n_files} file(s), {len(RULES)} rule(s): {status}",
            file=sys.stderr,
        )
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
