"""tsulint — project-invariant AST linter for the TSUBASA reproduction.

A tiny, dependency-free (stdlib ``ast``) linter that checks the invariants
this codebase's correctness actually rests on, at commit time instead of
minutes into CI: no blocking calls inside the asyncio serving stack, no
threading locks held across ``await``, seqlock discipline around
``MmapStore`` reads, a single total error-code taxonomy, read-only
zero-copy wire decodes, and no drift between the wire layer and the
``QuerySpec`` dataclasses.

Run it with ``python -m tsulint src tests`` (with ``tools/`` on
``PYTHONPATH``); see :mod:`tsulint.rules` for the rule table and
suppression syntax.
"""

from tsulint.engine import Diagnostic, lint_files
from tsulint.rules import RULES, Rule, rule_by_code

__all__ = ["Diagnostic", "lint_files", "RULES", "Rule", "rule_by_code"]

__version__ = "1.0.0"
