"""tsulint rules: the project invariants this codebase actually relies on.

Generic linters check style; these rules check *correctness contracts* that
PRs 1-7 established and that only tests (or production incidents) would
otherwise enforce:

========  ==============================================================
TSU001    No blocking calls (``time.sleep``, synchronous socket /
          subprocess / sqlite3 / file I/O) inside ``async def`` bodies
          under ``repro/api/`` and ``repro/streams/``. One blocked event
          loop stalls every connection the server is carrying.
TSU002    No ``threading.Lock``/``RLock`` held across an ``await``. The
          awaited task may need the same lock on the same loop - the
          classic single-threaded deadlock - and even when it does not,
          the lock is held for an unbounded suspension.
TSU003    No raw reads of ``MmapStore`` mapped arrays (``.arrays()``,
          ``._read_maps``/``._readable`` internals) outside
          generation-validated scopes. A concurrent writer commit can
          tear such reads; callers must sample ``read_generation()``
          (seqlock discipline) or use ``read_windows_consistent``.
TSU004    Library code under ``src/repro/`` raises only
          ``TsubasaError`` subclasses (so the error-code taxonomy shared
          by the CLI, wire protocol, and remote client stays total), and
          every subclass declared in ``exceptions.py`` is registered in
          ``_ERROR_CODES`` with a unique code. Protocol dunders
          (``__getattr__`` -> AttributeError, ``__next__`` ->
          StopIteration, ...) are exempt.
TSU005    Every ``np.frombuffer`` over wire payloads under ``repro/api/``
          is accompanied by a read-only guard (``.setflags(write=False)``
          or ``.flags.writeable = False``) in the same function. Decoded
          frames are zero-copy views handed to callers; a writable view
          over a ``bytearray`` would let result mutation corrupt the
          receive buffer (and vice versa).
TSU006    No ``QuerySpec`` field drift: attribute access on spec-typed
          values in the wire layer must name real ``QuerySpec``
          attributes, and the ``_REQUIRED``/``_OPTIONAL`` per-op field
          tables in ``spec.py`` must reference real dataclass fields and
          real ops.
========  ==============================================================

Suppress a finding with a justified trailing comment::

    time.sleep(0.1)  # tsulint: disable=TSU001 -- startup probe, pre-loop

CI runs with ``--require-reasons``, so a suppression without the
``-- reason`` tail is itself an error. Add new rules by subclassing
:class:`Rule` and appending to :data:`RULES`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tsulint.engine import (
    Diagnostic,
    FileContext,
    ProjectIndex,
    dotted_name,
    iter_async_functions,
    terminal_name,
    walk_without_functions,
)

__all__ = ["Rule", "RULES", "rule_by_code"]


class Rule:
    """Base class: per-file AST check, optionally path-scoped."""

    code: str = "TSU000"
    name: str = "base"
    description: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(
        self, index: ProjectIndex
    ) -> Iterator[Diagnostic]:
        return iter(())

    def diag(
        self, ctx_path: str, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.code,
            path=ctx_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _in_library(path: str) -> bool:
    return "src/repro/" in path or path.startswith("repro/")


class BlockingCallInAsync(Rule):
    """TSU001: blocking calls inside ``async def`` bodies stall the loop."""

    code = "TSU001"
    name = "blocking-call-in-async"
    description = (
        "no time.sleep / sync socket / subprocess / sqlite3 / file I/O "
        "inside async def bodies in repro.api and repro.streams"
    )

    #: Fully dotted call names that block the calling thread.
    BLOCKING_DOTTED = {
        "time.sleep",
        "sqlite3.connect",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.gethostbyaddr",
        "socket.getfqdn",
        "urllib.request.urlopen",
    }
    #: Method names that are synchronous file/DB I/O no matter the object.
    BLOCKING_METHODS = {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "executescript",
    }
    #: Bare builtins that open synchronous file handles.
    BLOCKING_BUILTINS = {"open"}

    def applies_to(self, path: str) -> bool:
        return "repro/api/" in path or "repro/streams/" in path

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in iter_async_functions(ctx.tree):
            for node in walk_without_functions(func.body):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func)
                name = terminal_name(node.func)
                blocked: str | None = None
                if dotted in self.BLOCKING_DOTTED:
                    blocked = dotted
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self.BLOCKING_BUILTINS
                ):
                    blocked = node.func.id
                elif (
                    isinstance(node.func, ast.Attribute)
                    and name in self.BLOCKING_METHODS
                ):
                    blocked = f"{name}()"
                if blocked is not None:
                    yield self.diag(
                        ctx.path,
                        node,
                        f"blocking call {blocked!r} inside async def "
                        f"{func.name!r}; use the asyncio equivalent or "
                        f"run_in_executor",
                    )


def _is_lockish(node: ast.AST) -> bool:
    """Whether an expression looks like a ``threading`` lock object."""
    name = terminal_name(node)
    if name is None and isinstance(node, ast.Call):
        # with threading.Lock(): ... (constructed inline)
        name = terminal_name(node.func)
    if name is None:
        return False
    lowered = name.lower().lstrip("_")
    return (
        lowered in ("lock", "rlock", "mutex")
        or lowered.endswith("_lock")
        or lowered.endswith("lock") and name in ("Lock", "RLock")
    )


class LockAcrossAwait(Rule):
    """TSU002: a threading lock held across an ``await`` suspension."""

    code = "TSU002"
    name = "lock-across-await"
    description = (
        "threading.Lock/RLock must not be held across an await; "
        "the suspended task holds the lock for an unbounded time"
    )

    def applies_to(self, path: str) -> bool:
        return _in_library(path)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in iter_async_functions(ctx.tree):
            for node in walk_without_functions(func.body):
                if not isinstance(node, ast.With):
                    continue
                if not any(
                    _is_lockish(item.context_expr) for item in node.items
                ):
                    continue
                for inner in walk_without_functions(node.body):
                    if isinstance(inner, ast.Await):
                        held = next(
                            terminal_name(item.context_expr) or "lock"
                            for item in node.items
                            if _is_lockish(item.context_expr)
                        )
                        yield self.diag(
                            ctx.path,
                            node,
                            f"lock {held!r} is held across an await at "
                            f"line {inner.lineno}; release it before "
                            f"suspending (or use asyncio.Lock)",
                        )
                        break


class RawMmapRead(Rule):
    """TSU003: MmapStore mapped arrays read outside seqlock discipline."""

    code = "TSU003"
    name = "raw-mmap-read"
    description = (
        "MmapStore.arrays()/._read_maps reads outside mmap_store.py must "
        "sit in a scope that samples read_generation() or uses "
        "read_windows_consistent (torn-read protection)"
    )

    PRIVATE_MAPS = {"_read_maps", "_write_maps", "_readable", "_writable"}
    VALIDATORS = {"read_generation", "read_windows_consistent"}

    def applies_to(self, path: str) -> bool:
        return _in_library(path) and not path.endswith(
            "storage/mmap_store.py"
        )

    def _scope_validated(self, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.Attribute) and node.attr in self.VALIDATORS:
                return True
            if isinstance(node, ast.Name) and node.id in self.VALIDATORS:
                return True
            if (
                isinstance(node, ast.FunctionDef)
                and node.name in self.VALIDATORS
            ):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        # Walk top-level scopes (classes and functions); a raw read is fine
        # when its enclosing class or function also carries the seqlock
        # validation (read_generation / read_windows_consistent).
        scopes: list[tuple[ast.AST, ast.AST]] = []  # (node, enclosing scope)

        def visit(node: ast.AST, scope: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                child_scope = scope
                if isinstance(
                    child,
                    (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
                ):
                    child_scope = child if isinstance(child, ast.ClassDef) else (
                        scope if isinstance(scope, ast.ClassDef) else child
                    )
                    # Functions inside a class are judged by the class scope
                    # (the seqlock helper usually lives on the same class);
                    # module-level functions stand alone.
                scopes.append((child, child_scope))
                visit(child, child_scope)

        visit(ctx.tree, ctx.tree)
        validated_cache: dict[int, bool] = {}
        for node, scope in scopes:
            flagged: str | None = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "arrays"
                and not node.args
                and not node.keywords
            ):
                flagged = "arrays()"
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in self.PRIVATE_MAPS
            ):
                flagged = node.attr
            if flagged is None:
                continue
            key = id(scope)
            if key not in validated_cache:
                validated_cache[key] = self._scope_validated(scope)
            if not validated_cache[key]:
                yield self.diag(
                    ctx.path,
                    node,
                    f"raw mmap read {flagged!r} outside a generation-"
                    f"validated scope; sample read_generation() around the "
                    f"read or use read_windows_consistent()",
                )


#: Built-in exceptions legal in specific protocol dunders.
_DUNDER_ALLOWANCES = {
    "AttributeError": {"__getattr__", "__getattribute__", "__delattr__"},
    "StopIteration": {"__next__"},
    "StopAsyncIteration": {"__anext__"},
    "KeyError": {"__getitem__", "__delitem__", "pop", "__missing__"},
    "IndexError": {"__getitem__"},
}

#: Names that read as exception constructors when raised.
_EXCEPTIONISH_SUFFIXES = ("Error", "Exception", "Exit", "Interrupt", "Warning")


class ExceptionTaxonomy(Rule):
    """TSU004: one error taxonomy — raise TsubasaError subclasses only."""

    code = "TSU004"
    name = "exception-taxonomy"
    description = (
        "library code raises TsubasaError subclasses (stable error codes "
        "across CLI exit codes and wire envelopes); every subclass in "
        "exceptions.py is registered in _ERROR_CODES with a unique code"
    )

    def applies_to(self, path: str) -> bool:
        return _in_library(path)

    def _raised_class(self, exc: ast.expr) -> str | None:
        """The class name being raised, when statically resolvable."""
        node: ast.AST = exc
        if isinstance(node, ast.Call):
            node = node.func
        name = terminal_name(node)
        if name is None:
            return None
        if not name.lstrip("_")[:1].isupper():
            return None  # helper call like mark_retryable(...)
        return name

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        derived = set(ctx.index.tsubasa_subclasses())
        # Names imported from the taxonomy module count as members even
        # when exceptions.py itself is outside the linted file set.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and (
                node.module or ""
            ).endswith("exceptions"):
                for alias in node.names:
                    derived.add(alias.asname or alias.name)
        # Map each raise to its innermost enclosing function name.
        func_stack: list[str] = []

        def visit(node: ast.AST) -> Iterator[Diagnostic]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_stack.append(node.name)
            if isinstance(node, ast.Raise) and node.exc is not None:
                name = self._raised_class(node.exc)
                if name is not None and name not in derived:
                    enclosing = func_stack[-1] if func_stack else "<module>"
                    allowed_in = _DUNDER_ALLOWANCES.get(name, set())
                    known_exceptionish = (
                        name.endswith(_EXCEPTIONISH_SUFFIXES)
                        or name
                        in (
                            "StopIteration",
                            "StopAsyncIteration",
                            "SystemExit",
                            "KeyboardInterrupt",
                        )
                        # Any project-defined class being raised is an
                        # exception class, whatever it is named.
                        or name in ctx.index.class_bases
                    )
                    if known_exceptionish and enclosing not in allowed_in:
                        yield self.diag(
                            ctx.path,
                            node,
                            f"raise of non-TsubasaError {name!r} in library "
                            f"code; use a TsubasaError subclass so the "
                            f"error-code taxonomy (exceptions.error_code_for) "
                            f"stays total",
                        )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_stack.pop()

        yield from visit(ctx.tree)

    def check_project(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        taxonomy = index.taxonomy
        if not taxonomy.path:
            return
        # Every TsubasaError subclass declared in exceptions.py must be
        # registered, and codes must be unique.
        derived = index.tsubasa_subclasses()
        seen_codes: dict[int, str] = {}
        for name, code in taxonomy.codes.items():
            line = taxonomy.code_lines.get(name, 1)
            if code in seen_codes:
                yield Diagnostic(
                    rule=self.code,
                    path=taxonomy.path,
                    line=line,
                    col=0,
                    message=(
                        f"error code {code} assigned to both "
                        f"{seen_codes[code]!r} and {name!r}; codes must be "
                        f"unique (they double as CLI exit codes)"
                    ),
                )
            else:
                seen_codes[code] = name
        for name, line in taxonomy.declared.items():
            if name not in derived:
                continue  # unrelated helper class
            if name not in taxonomy.codes:
                yield Diagnostic(
                    rule=self.code,
                    path=taxonomy.path,
                    line=line,
                    col=0,
                    message=(
                        f"TsubasaError subclass {name!r} is not registered "
                        f"in _ERROR_CODES; every subclass needs a stable "
                        f"failure code"
                    ),
                )


class FrombufferGuard(Rule):
    """TSU005: zero-copy wire decodes must be frozen read-only."""

    code = "TSU005"
    name = "frombuffer-readonly"
    description = (
        "np.frombuffer over wire payloads in repro.api must pair with a "
        "read-only guard (.setflags(write=False) / .flags.writeable = "
        "False) in the same function"
    )

    def applies_to(self, path: str) -> bool:
        return "repro/api/" in path

    def _has_guard(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setflags"
            ):
                for kw in node.keywords:
                    if kw.arg == "write" and isinstance(
                        kw.value, ast.Constant
                    ):
                        if kw.value.value is False:
                            return True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "flags"
                        and isinstance(node.value, ast.Constant)
                        and node.value.value is False
                    ):
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in ast.walk(ctx.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            calls = [
                node
                for node in walk_without_functions(func.body)
                if isinstance(node, ast.Call)
                and terminal_name(node.func) == "frombuffer"
            ]
            if calls and not self._has_guard(func):
                for call in calls:
                    yield self.diag(
                        ctx.path,
                        call,
                        f"np.frombuffer in {func.name!r} without a read-only "
                        f"guard; call .setflags(write=False) on the view "
                        f"before handing it out",
                    )


class SpecFieldDrift(Rule):
    """TSU006: wire layer and spec dataclasses must agree on field names."""

    code = "TSU006"
    name = "spec-field-drift"
    description = (
        "attribute access on QuerySpec values in repro.api must name real "
        "spec attributes; _REQUIRED/_OPTIONAL tables must reference real "
        "dataclass fields and ops"
    )

    #: Expression shapes treated as QuerySpec-typed: a local named `spec`,
    #: `self.spec`, `request.spec`, `result.spec`, `self._spec`.
    SPEC_NAMES = {"spec", "_spec"}

    def applies_to(self, path: str) -> bool:
        return "src/repro/api/" in path

    def _is_spec_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.SPEC_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self.SPEC_NAMES
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        spec = ctx.index.spec
        surface = spec.surface.get("QuerySpec")
        if not surface:
            return
        allowed = (
            surface
            | {"windows"}  # property
            | {name for name in dir(object)}
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not self._is_spec_expr(node.value):
                continue
            if node.attr.startswith("__") or node.attr in allowed:
                continue
            yield self.diag(
                ctx.path,
                node,
                f"QuerySpec has no attribute {node.attr!r}; the wire layer "
                f"drifted from the spec dataclass (see api/spec.py)",
            )

    def check_project(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        spec = index.spec
        if not spec.path:
            return
        fields = spec.fields.get("QuerySpec", set())
        if not fields:
            return
        for name, op, line in spec.op_fields:
            if name not in fields:
                yield Diagnostic(
                    rule=self.code,
                    path=spec.path,
                    line=line,
                    col=0,
                    message=(
                        f"op table for {op!r} names {name!r}, which is not "
                        f"a QuerySpec dataclass field"
                    ),
                )
        for op, line in spec.op_keys:
            if spec.ops and op not in spec.ops:
                yield Diagnostic(
                    rule=self.code,
                    path=spec.path,
                    line=line,
                    col=0,
                    message=f"op table key {op!r} is not in OPS",
                )


#: Registered rules, in code order. The CLI and the test suite iterate this.
RULES: tuple[Rule, ...] = (
    BlockingCallInAsync(),
    LockAcrossAwait(),
    RawMmapRead(),
    ExceptionTaxonomy(),
    FrombufferGuard(),
    SpecFieldDrift(),
)


def rule_by_code(code: str) -> Rule:
    for rule in RULES:
        if rule.code == code:
            return rule
    raise KeyError(code)
