"""Entry point: ``python -m tsulint <paths>``."""

import sys

from tsulint.cli import main

sys.exit(main())
