"""tsulint engine: file walking, suppression comments, the project index.

The linter is two passes over stdlib-``ast`` trees:

1. **Index pass** — every file is parsed once and cross-file facts are
   collected into a :class:`ProjectIndex`: the project exception class
   hierarchy (who transitively derives from ``TsubasaError``), the
   ``_ERROR_CODES`` registration map from ``exceptions.py``, and the
   ``QuerySpec`` surface (dataclass fields, methods, properties) plus the
   ``_REQUIRED``/``_OPTIONAL``/``OPS`` literals from ``api/spec.py``.
2. **Rule pass** — each registered rule walks each file (or, for project
   rules, the index) and yields :class:`Diagnostic` records.

Suppression: a trailing comment ``# tsulint: disable=TSU001`` (optionally
``disable=TSU001,TSU004`` or ``disable=all``, optionally followed by
``-- reason``) on the flagged line, on the first line of the flagged
statement, or on the immediately preceding comment-only line, silences the
diagnostic. Suppressions are expected to carry a reason; the CLI's
``--require-reasons`` flag (used by CI) turns a bare suppression into its
own diagnostic.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Diagnostic",
    "FileContext",
    "ProjectIndex",
    "Suppressions",
    "collect_files",
    "dotted_name",
    "iter_async_functions",
    "walk_without_functions",
    "build_index",
    "lint_files",
]

#: Matches one suppression comment. Group 1 is the rule list, group 2 the
#: optional justification after ``--``.
_SUPPRESS_RE = re.compile(
    r"#\s*tsulint:\s*disable=([A-Za-z0-9_,]+|all)\s*(?:--\s*(.*))?\s*$"
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a file/line/column."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# tsulint: disable=...`` comment."""

    line: int
    rules: frozenset[str]  # empty set means "all"
    reason: str

    def covers(self, rule: str) -> bool:
        return not self.rules or rule in self.rules


class Suppressions:
    """Per-file suppression comments, looked up by diagnostic line."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, Suppression] = {}
        self._comment_only: set[int] = set()
        try:
            tokens = list(
                tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = []
        code_lines: set[int] = set()
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.match(tok.string)
                if match:
                    rules_text = match.group(1)
                    rules = (
                        frozenset()
                        if rules_text == "all"
                        else frozenset(
                            r.strip().upper()
                            for r in rules_text.split(",")
                            if r.strip()
                        )
                    )
                    self._by_line[tok.start[0]] = Suppression(
                        line=tok.start[0],
                        rules=rules,
                        reason=(match.group(2) or "").strip(),
                    )
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                code_lines.add(tok.start[0])
        self._comment_only = set(self._by_line) - code_lines

    def all(self) -> list[Suppression]:
        return sorted(self._by_line.values(), key=lambda s: s.line)

    def active_for(self, rule: str, *lines: int) -> Suppression | None:
        """The suppression covering ``rule`` at any of the candidate lines.

        Candidates are the diagnostic's own line(s); additionally a
        comment-only line directly above the first candidate counts
        (black-style standalone suppression).
        """
        candidates = set(lines)
        if lines:
            first = min(lines)
            if first - 1 in self._comment_only:
                candidates.add(first - 1)
        for line in candidates:
            suppression = self._by_line.get(line)
            if suppression is not None and suppression.covers(rule):
                return suppression
        return None


@dataclass
class SpecSurface:
    """What ``api/spec.py`` declares, for the drift rule (TSU006)."""

    path: str = ""
    #: dataclass field names per class (QuerySpec, WindowSpec, ...).
    fields: dict[str, set[str]] = field(default_factory=dict)
    #: every attribute a class exposes: fields + methods + properties.
    surface: dict[str, set[str]] = field(default_factory=dict)
    #: the OPS tuple literal.
    ops: set[str] = field(default_factory=set)
    #: op -> field-name tuple literals from _REQUIRED / _OPTIONAL, with
    #: the line each string constant sits on.
    op_fields: list[tuple[str, str, int]] = field(default_factory=list)
    #: op keys of _REQUIRED / _OPTIONAL with their lines.
    op_keys: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ExceptionTaxonomy:
    """What ``exceptions.py`` declares, for the taxonomy rule (TSU004)."""

    path: str = ""
    #: class name -> error code, straight from the _ERROR_CODES literal.
    codes: dict[str, int] = field(default_factory=dict)
    #: line of each _ERROR_CODES entry.
    code_lines: dict[str, int] = field(default_factory=dict)
    #: classes defined in exceptions.py deriving from TsubasaError.
    declared: dict[str, int] = field(default_factory=dict)


@dataclass
class ProjectIndex:
    """Cross-file facts shared by every rule."""

    #: class name -> set of base-class terminal names, across all files.
    class_bases: dict[str, set[str]] = field(default_factory=dict)
    #: class name -> (path, line) where defined.
    class_sites: dict[str, tuple[str, int]] = field(default_factory=dict)
    spec: SpecSurface = field(default_factory=SpecSurface)
    taxonomy: ExceptionTaxonomy = field(default_factory=ExceptionTaxonomy)

    def tsubasa_subclasses(self) -> set[str]:
        """Every class name transitively deriving from ``TsubasaError``."""
        derived = {"TsubasaError"}
        changed = True
        while changed:
            changed = False
            for name, bases in self.class_bases.items():
                if name not in derived and bases & derived:
                    derived.add(name)
                    changed = True
        return derived


@dataclass
class FileContext:
    """Everything a per-file rule sees for one source file."""

    path: str  # posix-relative display path
    tree: ast.Module
    source: str
    suppressions: Suppressions
    index: ProjectIndex


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last component of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_without_functions(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Yield every node under ``body`` without entering nested functions.

    Used to scope "inside this async def" checks to the function's own
    frame: a synchronous helper defined inside it runs on its own call
    stack and is judged separately.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_async_functions(
    tree: ast.Module,
) -> Iterator[ast.AsyncFunctionDef]:
    """Every ``async def`` in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _string_elts(node: ast.AST) -> list[tuple[str, int]]:
    """String constants (with lines) inside a tuple/list/set literal."""
    out: list[tuple[str, int]] = []
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append((elt.value, elt.lineno))
    return out


def _index_spec(index: ProjectIndex, path: str, tree: ast.Module) -> None:
    spec = index.spec
    spec.path = path
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            fields: set[str] = set()
            surface: set[str] = set()
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    fields.add(item.target.id)
                    surface.add(item.target.id)
                elif isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    surface.add(item.name)
            spec.fields[node.name] = fields
            spec.surface[node.name] = surface
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == "OPS":
                spec.ops = {name for name, _ in _string_elts(node.value)}
            elif target.id in ("_REQUIRED", "_OPTIONAL") and isinstance(
                node.value, ast.Dict
            ):
                for key, value in zip(node.value.keys, node.value.values):
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        spec.op_keys.append((key.value, key.lineno))
                        for name, line in _string_elts(value):
                            spec.op_fields.append((name, key.value, line))


def _index_exceptions(
    index: ProjectIndex, path: str, tree: ast.Module
) -> None:
    taxonomy = index.taxonomy
    taxonomy.path = path
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            taxonomy.declared[node.name] = node.lineno
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "_ERROR_CODES"
            and isinstance(node.value, ast.Dict)
        ) or (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "_ERROR_CODES"
            and isinstance(node.value, ast.Dict)
        ):
            assert isinstance(node.value, ast.Dict)
            for key, value in zip(node.value.keys, node.value.values):
                name = terminal_name(key) if key is not None else None
                if name is None:
                    continue
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, int
                ):
                    taxonomy.codes[name] = value.value
                    taxonomy.code_lines[name] = key.lineno


def build_index(files: dict[str, ast.Module]) -> ProjectIndex:
    """First pass: collect cross-file facts from every parsed file."""
    index = ProjectIndex()
    for path, tree in files.items():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = {
                    name
                    for name in (terminal_name(b) for b in node.bases)
                    if name is not None
                }
                index.class_bases[node.name] = bases
                index.class_sites.setdefault(node.name, (path, node.lineno))
        posix = path.replace("\\", "/")
        if posix.endswith("repro/api/spec.py"):
            _index_spec(index, path, tree)
        elif posix.endswith("repro/exceptions.py"):
            _index_exceptions(index, path, tree)
    return index


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand path arguments into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.parts
                ):
                    continue
                out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def lint_files(
    paths: Iterable[str | Path],
    rules: Iterable[object],
    select: set[str] | None = None,
    require_reasons: bool = False,
) -> tuple[list[Diagnostic], int]:
    """Lint the given files with the given rules.

    Returns ``(diagnostics, n_files)``. Unparseable files produce a
    ``TSU000`` diagnostic instead of crashing the run. A suppression
    without a ``-- reason`` justification produces a ``TSU900``
    diagnostic when ``require_reasons`` is set (CI mode).
    """
    rules = list(rules)
    files = collect_files(paths)
    sources: dict[str, str] = {}
    trees: dict[str, ast.Module] = {}
    diagnostics: list[Diagnostic] = []
    for file_path in files:
        display = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            trees[display] = ast.parse(source, filename=display)
            sources[display] = source
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            diagnostics.append(
                Diagnostic(
                    rule="TSU000",
                    path=display,
                    line=line,
                    col=0,
                    message=f"could not parse file: {exc}",
                )
            )
    index = build_index(trees)
    suppression_cache: dict[str, Suppressions] = {
        display: Suppressions(source) for display, source in sources.items()
    }

    def admit(diag: Diagnostic) -> None:
        suppressions = suppression_cache.get(diag.path)
        if suppressions is not None and suppressions.active_for(
            diag.rule, diag.line
        ):
            return
        diagnostics.append(diag)

    for display, tree in trees.items():
        ctx = FileContext(
            path=display,
            tree=tree,
            source=sources[display],
            suppressions=suppression_cache[display],
            index=index,
        )
        for rule in rules:
            if select is not None and rule.code not in select:
                continue
            if not rule.applies_to(display):
                continue
            for diag in rule.check(ctx):
                admit(diag)
        if require_reasons:
            for suppression in suppression_cache[display].all():
                if not suppression.reason:
                    diagnostics.append(
                        Diagnostic(
                            rule="TSU900",
                            path=display,
                            line=suppression.line,
                            col=0,
                            message=(
                                "suppression without a justification; "
                                "append `-- <reason>`"
                            ),
                        )
                    )
    # Project-wide rules run once over the cross-file index.
    for rule in rules:
        if select is not None and rule.code not in select:
            continue
        for diag in rule.check_project(index):
            admit(diag)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return diagnostics, len(files)
