"""Tests for the resilience layer (repro.api.resilience + deadlines).

Unit-level coverage: retry policy backoff/budget math, the circuit
breaker state machine under an injected clock, retryable-error
classification and its wire round trip, per-request deadlines validated
in the spec and enforced (shed) by the service, and the hub's
resume/replay bookkeeping surfaced through QuerySpec.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api.client import TsubasaClient
from repro.api.protocol import ErrorEnvelope, parse_frame
from repro.api.resilience import (
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
    is_retryable,
    mark_retryable,
)
from repro.api.service import TsubasaService
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.sketch import build_sketch
from repro.engine.providers import InMemoryProvider
from repro.exceptions import (
    CircuitOpenError,
    DataError,
    DeadlineExceeded,
    ServiceError,
    error_code_for,
)

WINDOW = WindowSpec(end=599, length=200)


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.budget > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff": -1.0},
            {"multiplier": 0.5},
            {"budget": -1.0},
            {"budget_refill": -0.1},
        ],
    )
    def test_rejects_bad_args(self, kwargs):
        with pytest.raises(DataError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            base_backoff=0.1, multiplier=2.0, max_backoff=0.5, jitter=False
        )
        assert [policy.backoff(i) for i in range(4)] == [
            0.1, 0.2, 0.4, 0.5  # capped at max_backoff
        ]

    def test_full_jitter_stays_within_cap(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, jitter=True)
        import random

        rng = random.Random(7)
        for retry_index in range(5):
            cap = min(2.0, 0.1 * 2.0**retry_index)
            for _ in range(50):
                delay = policy.backoff(retry_index, rng=rng)
                assert 0.0 <= delay <= cap


class TestRetryBudget:
    def test_spend_and_refund(self):
        budget = RetryBudget(RetryPolicy(budget=2.0, budget_refill=0.5))
        assert budget.spend() and budget.spend()
        assert not budget.spend()  # empty
        budget.refund()
        budget.refund()  # 2 successes = 1 full token
        assert budget.spend()

    def test_refund_clamps_at_cap(self):
        budget = RetryBudget(RetryPolicy(budget=1.0, budget_refill=5.0))
        budget.refund()
        assert budget.tokens == 1.0

    def test_zero_budget_disables_accounting(self):
        budget = RetryBudget(RetryPolicy(budget=0.0))
        assert all(budget.spend() for _ in range(100))


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(clock=lambda: clock["now"], **kwargs)
        return breaker, clock

    def test_opens_after_threshold_and_fails_fast(self):
        breaker, _clock = self._breaker(failure_threshold=3, reset_timeout=5.0)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.fast_failures == 1

    def test_half_open_single_probe_then_close(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 6.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_full_timeout(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        clock["now"] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        clock["now"] = 10.0  # < 6 + 5: still open
        assert not breaker.allow()
        clock["now"] = 11.5
        assert breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _clock = self._breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_rejects_bad_args(self):
        with pytest.raises(DataError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(DataError):
            CircuitBreaker(reset_timeout=-1.0)


class TestRetryableClassification:
    def test_connection_errors_are_retryable(self):
        assert is_retryable(ConnectionRefusedError("refused"))
        assert is_retryable(TimeoutError("timed out"))
        assert is_retryable(OSError("reset"))

    def test_library_errors_are_not_unless_marked(self):
        assert not is_retryable(DataError("bad spec"))
        assert not is_retryable(ServiceError("no"))
        assert not is_retryable(DeadlineExceeded("expired"))
        assert is_retryable(mark_retryable(ServiceError("shed")))

    def test_plain_application_errors_are_not(self):
        assert not is_retryable(ValueError("nope"))

    def test_retryable_survives_the_wire(self):
        """Server-marked-shed errors round-trip retryability end to end."""
        envelope = ErrorEnvelope.from_exception(
            ServiceError("budget spent"), request_id=7, retryable=True
        )
        payload = envelope.to_dict()
        assert payload["error"]["retryable"] is True
        rebuilt = parse_frame(payload)
        exc = rebuilt.to_exception()
        assert isinstance(exc, ServiceError)
        assert is_retryable(exc)

    def test_unmarked_errors_serialize_without_the_flag(self):
        payload = ErrorEnvelope.from_exception(DataError("bad")).to_dict()
        assert "retryable" not in payload["error"]
        exc = parse_frame(payload).to_exception()
        assert not is_retryable(exc)


class TestErrorCodes:
    def test_new_exception_codes_are_stable(self):
        assert error_code_for(DeadlineExceeded("x")) == 8
        assert error_code_for(CircuitOpenError("x")) == 9


class TestDeadlineSpec:
    def test_deadline_ms_round_trips(self):
        spec = QuerySpec(op="matrix", window=WINDOW, deadline_ms=250)
        payload = spec.to_dict()
        assert payload["deadline_ms"] == 250
        assert QuerySpec.from_dict(payload) == spec

    def test_omitted_when_unset(self):
        assert "deadline_ms" not in QuerySpec(op="matrix", window=WINDOW).to_dict()

    @pytest.mark.parametrize("bad", [0, -5, 1.5, "100"])
    def test_rejects_bad_deadlines(self, bad):
        with pytest.raises(DataError):
            QuerySpec(op="matrix", window=WINDOW, deadline_ms=bad)

    def test_resume_from_only_on_subscribe(self):
        spec = QuerySpec(
            op="subscribe", window=WINDOW, theta=0.4, resume_from=11
        )
        assert QuerySpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(DataError):
            QuerySpec(op="matrix", window=WINDOW, resume_from=3)
        with pytest.raises(DataError):
            QuerySpec(op="subscribe", window=WINDOW, theta=0.4, resume_from=-1)


class _SlowClient(TsubasaClient):
    """A client whose matrix computation takes a configurable nap."""

    compute_delay = 0.0

    def compute_matrix(self, spec, window):
        time.sleep(self.compute_delay)
        return super().compute_matrix(spec, window)


class TestServiceDeadlines:
    @pytest.fixture()
    def slow_client(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        return _SlowClient(provider=InMemoryProvider(sketch))

    def test_mid_compute_deadline_is_shed(self, slow_client):
        slow_client.compute_delay = 0.5

        async def run():
            async with TsubasaService(slow_client, max_workers=1) as service:
                with pytest.raises(DeadlineExceeded):
                    await service.submit(
                        QuerySpec(op="matrix", window=WINDOW, deadline_ms=50)
                    )
                return service.stats()

        stats = asyncio.run(run())
        assert stats.deadline_shed == 1
        assert stats.to_dict()["deadline_shed"] == 1

    def test_queue_expired_work_is_shed_before_compute(self, slow_client):
        slow_client.compute_delay = 0.4

        async def run():
            async with TsubasaService(slow_client, max_workers=1) as service:
                # Occupy the single worker, then queue a request whose
                # deadline expires while it waits its turn.
                blocker = asyncio.ensure_future(
                    service.submit(QuerySpec(op="matrix", window=WINDOW))
                )
                await asyncio.sleep(0.05)
                with pytest.raises(DeadlineExceeded) as excinfo:
                    await service.submit(
                        QuerySpec(
                            op="matrix",
                            window=WindowSpec(end=599, length=400),
                            deadline_ms=100,
                        )
                    )
                assert "in queue" in str(excinfo.value) or "expired" in str(
                    excinfo.value
                )
                await blocker
                return service.stats()

        stats = asyncio.run(run())
        assert stats.deadline_shed >= 1

    def test_generous_deadline_does_not_interfere(self, slow_client):
        slow_client.compute_delay = 0.0

        async def run():
            async with TsubasaService(slow_client) as service:
                spec = QuerySpec(op="matrix", window=WINDOW, deadline_ms=30_000)
                result = await service.submit(spec)
                baseline = await service.submit(
                    QuerySpec(op="matrix", window=WINDOW)
                )
                return result, baseline, service.stats()

        result, baseline, stats = asyncio.run(run())
        assert stats.deadline_shed == 0
        import numpy as np

        np.testing.assert_array_equal(
            result.value.values, baseline.value.values
        )

    def test_deadline_is_not_part_of_coalescing_identity(self, slow_client):
        """Two specs differing only in deadline coalesce to one compute."""
        slow_client.compute_delay = 0.05

        async def run():
            async with TsubasaService(slow_client, max_workers=4) as service:
                a = service.submit(
                    QuerySpec(op="matrix", window=WINDOW, deadline_ms=30_000)
                )
                b = service.submit(QuerySpec(op="matrix", window=WINDOW))
                ra, rb = await asyncio.gather(a, b)
                return ra, rb, service.stats()

        ra, rb, stats = asyncio.run(run())
        import numpy as np

        np.testing.assert_array_equal(ra.value.values, rb.value.values)
        assert stats.coalesced >= 1


class TestRemoteClientValidation:
    def test_rejects_non_policy_retry(self):
        from repro.api.remote import TsubasaRemoteClient

        with pytest.raises(DataError):
            TsubasaRemoteClient("127.0.0.1:1", retry=3)
        with pytest.raises(DataError):
            TsubasaRemoteClient("127.0.0.1:1", circuit_breaker=object())

    def test_breaker_defaults_with_retry(self):
        from repro.api.remote import TsubasaRemoteClient

        client = TsubasaRemoteClient("127.0.0.1:1", retry=RetryPolicy())
        assert isinstance(client.circuit_breaker, CircuitBreaker)
        assert client.retry_policy.max_attempts == 4
        plain = TsubasaRemoteClient("127.0.0.1:1")
        assert plain.circuit_breaker is None
        assert plain.retry_policy is None

    def test_open_breaker_fails_fast_without_touching_the_socket(self):
        from repro.api.remote import TsubasaRemoteClient

        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure()
        client = TsubasaRemoteClient(
            "127.0.0.1:1", retry=RetryPolicy(max_attempts=1),
            circuit_breaker=breaker,
        )
        started = time.monotonic()
        with pytest.raises(CircuitOpenError):
            client.execute(QuerySpec(op="matrix", window=WINDOW))
        assert time.monotonic() - started < 0.5  # no connect timeout burned
