"""Tests for repro.core.lagged (lagged correlation networks extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lagged import (
    build_lagged_sketch,
    lagged_correlation_matrix,
    lagged_network,
)
from repro.exceptions import DataError, SketchError


def _direct_lagged_corr(data, lag_points, start, length):
    """Ground truth: corr(x[t], y[t + lag]) over the given x-range."""
    n = data.shape[0]
    out = np.empty((n, n))
    x_slice = slice(start, start + length)
    y_slice = slice(start + lag_points, start + lag_points + length)
    for a in range(n):
        for b in range(n):
            out[a, b] = np.corrcoef(data[a, x_slice], data[b, y_slice])[0, 1]
    return out


class TestBuildLaggedSketch:
    def test_shapes(self, rng):
        data = rng.normal(size=(5, 200))
        sketch = build_lagged_sketch(data, window_size=25, max_lag=3)
        assert sketch.n_windows == 8
        assert sketch.max_lag == 3
        assert len(sketch.cross_covs) == 4
        assert sketch.cross_covs[0].shape == (8, 5, 5)
        assert sketch.cross_covs[3].shape == (5, 5, 5)

    def test_lag_zero_matches_standard_sketch(self, rng):
        from repro.core.sketch import build_sketch

        data = rng.normal(size=(4, 120))
        lagged = build_lagged_sketch(data, window_size=30, max_lag=2)
        standard = build_sketch(data, window_size=30)
        np.testing.assert_allclose(lagged.cross_covs[0], standard.covs,
                                   atol=1e-12)
        np.testing.assert_allclose(lagged.means, standard.means)

    def test_trailing_remainder_dropped(self, rng):
        data = rng.normal(size=(3, 110))
        sketch = build_lagged_sketch(data, window_size=25, max_lag=1)
        assert sketch.n_windows == 4  # 110 // 25

    def test_rejects_bad_args(self, rng):
        data = rng.normal(size=(3, 100))
        with pytest.raises(DataError):
            build_lagged_sketch(data, window_size=25, max_lag=-1)
        with pytest.raises(DataError):
            build_lagged_sketch(data, window_size=25, max_lag=4)
        with pytest.raises(DataError):
            build_lagged_sketch(rng.normal(size=100), 25, 1)
        with pytest.raises(DataError):
            build_lagged_sketch(data[:, :10], window_size=25, max_lag=0)


class TestLaggedCorrelation:
    def test_lag_zero_is_standard_correlation(self, rng):
        data = rng.normal(size=(4, 200))
        sketch = build_lagged_sketch(data, window_size=50, max_lag=0)
        matrix = lagged_correlation_matrix(sketch, lag=0)
        np.testing.assert_allclose(matrix.values, np.corrcoef(data),
                                   atol=1e-10)

    @pytest.mark.parametrize("lag", [1, 2, 3])
    def test_lagged_exactness(self, rng, lag):
        window = 25
        data = rng.normal(size=(4, 250))
        sketch = build_lagged_sketch(data, window_size=window, max_lag=3)
        matrix = lagged_correlation_matrix(sketch, lag=lag)
        n_windows = sketch.n_windows - lag
        expected = _direct_lagged_corr(
            data, lag * window, 0, n_windows * window
        )
        np.testing.assert_allclose(matrix.values, expected, atol=1e-9)

    def test_window_subrange(self, rng):
        window = 20
        data = rng.normal(size=(3, 240))
        sketch = build_lagged_sketch(data, window_size=window, max_lag=2)
        matrix = lagged_correlation_matrix(
            sketch, lag=2, first_window=3, n_windows=5
        )
        expected = _direct_lagged_corr(data, 40, 60, 100)
        np.testing.assert_allclose(matrix.values, expected, atol=1e-9)

    def test_asymmetric_for_positive_lag(self, rng):
        data = rng.normal(size=(3, 200))
        # Make series 1 a delayed copy of series 0.
        data[1, 50:] = data[0, :-50] + 0.01 * rng.normal(size=150)
        sketch = build_lagged_sketch(data, window_size=50, max_lag=1)
        matrix = lagged_correlation_matrix(sketch, lag=1)
        # x=series0 leading y=series1 by 50 points: near-perfect correlation.
        assert matrix.get("s0000", "s0001") > 0.95
        # The opposite direction should be much weaker.
        assert matrix.get("s0001", "s0000") < 0.5

    def test_autocorrelation_on_diagonal(self, rng):
        """Diagonal of a lag>0 matrix is each series' lagged autocorrelation."""
        from repro.data.synthetic import ar1_series

        data = ar1_series(rng, n=3, length=400, phi=0.9, scale=1.0)
        sketch = build_lagged_sketch(data, window_size=10, max_lag=1)
        matrix = lagged_correlation_matrix(sketch, lag=1)
        length = (sketch.n_windows - 1) * 10
        for i in range(3):
            expected = np.corrcoef(data[i, :length], data[i, 10 : 10 + length])[0, 1]
            assert matrix.values[i, i] == pytest.approx(expected, abs=1e-9)

    def test_rejects_bad_ranges(self, rng):
        sketch = build_lagged_sketch(rng.normal(size=(3, 100)), 25, 1)
        with pytest.raises(SketchError):
            lagged_correlation_matrix(sketch, lag=2)
        with pytest.raises(SketchError):
            lagged_correlation_matrix(sketch, lag=1, first_window=3,
                                      n_windows=2)

    @given(seed=st.integers(0, 2**31 - 1), lag=st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_property_exact_for_random_data(self, seed, lag):
        rng = np.random.default_rng(seed)
        window = 10
        data = rng.normal(size=(3, 80))
        sketch = build_lagged_sketch(data, window_size=window, max_lag=2)
        matrix = lagged_correlation_matrix(sketch, lag=lag)
        n_windows = sketch.n_windows - lag
        expected = _direct_lagged_corr(data, lag * window, 0,
                                       n_windows * window)
        np.testing.assert_allclose(matrix.values, expected, atol=1e-8)


class TestLaggedNetwork:
    def test_edge_uses_stronger_direction(self, rng):
        data = rng.normal(size=(3, 200))
        data[1, 50:] = data[0, :-50] + 0.01 * rng.normal(size=150)
        sketch = build_lagged_sketch(data, window_size=50, max_lag=1)
        network = lagged_network(sketch, lag=1, theta=0.9)
        assert network.has_edge("s0000", "s0001")

    def test_lag_zero_network_matches_engine(self, rng):
        from repro.core.exact import TsubasaHistorical

        data = rng.normal(size=(5, 200))
        sketch = build_lagged_sketch(data, window_size=50, max_lag=0)
        lagged = lagged_network(sketch, lag=0, theta=0.3)
        direct = TsubasaHistorical(data, 50).network((199, 200), 0.3)
        assert lagged.edge_set() == direct.edge_set()
