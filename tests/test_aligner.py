"""Tests for repro.streams.aligner (§2.1 synchronization layer)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError, StreamError
from repro.streams.aligner import StreamAligner, align_to_grid


class TestAlignToGrid:
    def test_exact_ticks_pass_through(self):
        out = align_to_grid(
            np.array([0.0, 1.0, 2.0]), np.array([10.0, 11.0, 12.0]),
            grid_start=0.0, resolution=1.0, n_ticks=3,
        )
        np.testing.assert_allclose(out, [10, 11, 12])

    def test_duplicates_averaged(self):
        out = align_to_grid(
            np.array([0.1, 0.9, 1.5]), np.array([10.0, 20.0, 7.0]),
            grid_start=0.0, resolution=1.0, n_ticks=2,
        )
        np.testing.assert_allclose(out, [15.0, 7.0])

    def test_gaps_interpolated(self):
        out = align_to_grid(
            np.array([0.0, 3.0]), np.array([0.0, 9.0]),
            grid_start=0.0, resolution=1.0, n_ticks=4,
        )
        np.testing.assert_allclose(out, [0, 3, 6, 9])

    def test_edge_gaps_carry_nearest(self):
        out = align_to_grid(
            np.array([1.5]), np.array([5.0]),
            grid_start=0.0, resolution=1.0, n_ticks=3,
        )
        np.testing.assert_allclose(out, [5, 5, 5])

    def test_out_of_range_observations_ignored(self):
        out = align_to_grid(
            np.array([-5.0, 0.5, 99.0]), np.array([1.0, 2.0, 3.0]),
            grid_start=0.0, resolution=1.0, n_ticks=2,
        )
        np.testing.assert_allclose(out, [2.0, 2.0])

    def test_unordered_input(self, rng):
        stamps = np.arange(10.0)
        values = rng.normal(size=10)
        order = rng.permutation(10)
        out = align_to_grid(stamps[order], values[order], 0.0, 1.0, 10)
        np.testing.assert_allclose(out, values)

    def test_rejects_bad_args(self):
        with pytest.raises(DataError):
            align_to_grid(np.zeros(2), np.zeros(3), 0.0, 1.0, 2)
        with pytest.raises(DataError):
            align_to_grid(np.zeros(2), np.zeros(2), 0.0, 0.0, 2)
        with pytest.raises(DataError):
            align_to_grid(np.zeros(2), np.zeros(2), 0.0, 1.0, 0)
        with pytest.raises(DataError):
            align_to_grid(np.array([99.0]), np.array([1.0]), 0.0, 1.0, 2)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_output_within_observed_range(self, seed):
        rng = np.random.default_rng(seed)
        n_obs = int(rng.integers(1, 30))
        stamps = rng.uniform(0, 10, size=n_obs)
        values = rng.uniform(-5, 5, size=n_obs)
        out = align_to_grid(stamps, values, 0.0, 1.0, 10)
        assert out.shape == (10,)
        assert np.all(out >= values.min() - 1e-9)
        assert np.all(out <= values.max() + 1e-9)


class TestStreamAligner:
    def test_in_order_flow(self):
        aligner = StreamAligner(n_series=2, grid_start=0.0, resolution=1.0,
                                lateness=1)
        for t in range(3):
            aligner.push(0, float(t), 10.0 + t)
            aligner.push(1, float(t), 20.0 + t)
        # Watermark at tick 2, lateness 1 -> ticks 0..1 frozen.
        assert aligner.ready_ticks() == 2
        block = aligner.drain()
        np.testing.assert_allclose(block, [[10, 11], [20, 21]])
        assert aligner.next_tick == 2

    def test_out_of_order_within_lateness(self):
        aligner = StreamAligner(2, 0.0, 1.0, lateness=2)
        aligner.push(0, 2.0, 1.0)
        aligner.push(1, 2.0, 2.0)
        aligner.push(0, 0.0, 3.0)  # late but within watermark
        aligner.push(1, 0.0, 4.0)
        aligner.push(0, 1.0, 5.0)
        aligner.push(1, 1.0, 6.0)
        assert aligner.ready_ticks() == 1
        block = aligner.drain()
        np.testing.assert_allclose(block, [[3.0], [4.0]])

    def test_gap_fill_carries_last_value(self):
        aligner = StreamAligner(2, 0.0, 1.0, lateness=0)
        aligner.push(0, 0.0, 1.0)
        aligner.push(1, 0.0, 2.0)
        aligner.push(0, 1.0, 3.0)  # series 1 missing at tick 1
        block = aligner.drain()
        np.testing.assert_allclose(block, [[1, 3], [2, 2]])

    def test_duplicates_averaged(self):
        aligner = StreamAligner(1, 0.0, 1.0, lateness=0)
        aligner.push(0, 0.1, 10.0)
        aligner.push(0, 0.9, 20.0)
        block = aligner.flush()
        np.testing.assert_allclose(block, [[15.0]])

    def test_first_tick_without_observation_fails(self):
        aligner = StreamAligner(2, 0.0, 1.0, lateness=0)
        aligner.push(0, 0.0, 1.0)  # series 1 never reported
        with pytest.raises(StreamError):
            aligner.drain()

    def test_too_late_observation_rejected(self):
        aligner = StreamAligner(1, 0.0, 1.0, lateness=0)
        aligner.push(0, 0.0, 1.0)
        aligner.push(0, 1.0, 2.0)
        aligner.drain()
        with pytest.raises(StreamError):
            aligner.push(0, 0.5, 9.0)

    def test_flush_ignores_watermark(self):
        aligner = StreamAligner(1, 0.0, 1.0, lateness=5)
        aligner.push(0, 0.0, 1.0)
        aligner.push(0, 1.0, 2.0)
        assert aligner.ready_ticks() == 0
        block = aligner.flush()
        np.testing.assert_allclose(block, [[1.0, 2.0]])

    def test_feeds_realtime_engine(self, rng):
        """End-to-end: irregular feed -> aligner -> exact sliding network."""
        from repro.core.realtime import TsubasaRealtime

        data = rng.normal(size=(3, 160))
        engine = TsubasaRealtime(data[:, :100], window_size=20)
        aligner = StreamAligner(3, grid_start=100.0, resolution=1.0,
                                lateness=0)
        # Observations arrive jittered inside their ticks.
        for t in range(60):
            for series in range(3):
                aligner.push(series, 100.0 + t + 0.3, data[series, 100 + t])
        engine.ingest(aligner.flush())
        ref = np.corrcoef(data[:, 60:160])
        np.testing.assert_allclose(
            engine.correlation_matrix().values, ref, atol=1e-9
        )

    def test_rejects_bad_args(self):
        with pytest.raises(StreamError):
            StreamAligner(0, 0.0, 1.0)
        with pytest.raises(StreamError):
            StreamAligner(1, 0.0, 0.0)
        with pytest.raises(StreamError):
            StreamAligner(1, 0.0, 1.0, lateness=-1)
        aligner = StreamAligner(1, 0.0, 1.0)
        with pytest.raises(StreamError):
            aligner.push(5, 0.0, 1.0)
        with pytest.raises(DataError):
            aligner.push(0, 0.0, float("nan"))
