"""Smoke tests: every example script runs cleanly as a subprocess.

Examples are user-facing documentation; a refactor that breaks one should
fail the suite, not a reader.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLES, f"no example scripts under {EXAMPLES_DIR}"
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
