"""Tests for the pruned network construction wired into the engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import TsubasaHistorical, query_correlation_row
from repro.core.matrix import threshold_adjacency
from repro.core.sketch import build_sketch
from repro.exceptions import SketchError


class TestQueryCorrelationRow:
    def test_matches_full_matrix_row(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        idx = np.arange(12)
        full = np.corrcoef(small_matrix)
        for row in (0, 7, 19):
            computed = query_correlation_row(sketch, idx, row)
            np.testing.assert_allclose(computed, full[row], atol=1e-10)
            assert computed[row] == 1.0

    def test_window_subset(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        idx = np.arange(6, 12)
        expected = np.corrcoef(small_matrix[:, 300:])
        computed = query_correlation_row(sketch, idx, 3)
        np.testing.assert_allclose(computed, expected[3], atol=1e-10)

    def test_rejects_bad_inputs(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        with pytest.raises(SketchError):
            query_correlation_row(sketch, np.array([], dtype=np.int64), 0)
        with pytest.raises(SketchError):
            query_correlation_row(sketch, np.arange(12), 99)


class TestNetworkPruned:
    def test_equals_exact_network(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        theta = 0.6
        result = engine.network_pruned((599, 600), theta)
        exact = engine.correlation_matrix((599, 600))
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(exact.values, theta)
        )

    def test_interior_window(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        result = engine.network_pruned((399, 200), 0.5, max_anchors=3)
        exact = engine.correlation_matrix((399, 200))
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(exact.values, 0.5)
        )
        assert len(result.anchors_used) <= 3

    def test_rejects_non_aligned_window(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        with pytest.raises(SketchError):
            engine.network_pruned((599, 123), 0.5)

    def test_accounting_sums_to_pairs(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        result = engine.network_pruned((599, 600), 0.7)
        n = small_matrix.shape[0]
        assert (
            result.decided_by_inference + result.computed_exactly
            == n * (n - 1) // 2
        )
        assert result.rows_computed <= n


class TestPrefixAnchorRows:
    """Algorithm 5 anchor rows served from prefix tables (O(n) each)."""

    def _forbid_streaming(self, provider):
        """Wrap a provider so any selection re-stream fails the test."""

        def boom(*args, **kwargs):
            raise AssertionError(
                "pruning touched the streaming path despite prefix tables"
            )

        provider.materialize = boom
        provider.cov_rows = boom
        provider.covs = boom
        provider.iter_cov_chunks = boom
        return provider

    def test_prefix_provider_matches_direct(self, small_matrix):
        from repro.engine.providers import InMemoryProvider, PrefixProvider

        sketch = build_sketch(small_matrix, window_size=50)
        direct = TsubasaHistorical(provider=InMemoryProvider(sketch))
        prefixed = TsubasaHistorical(provider=PrefixProvider(InMemoryProvider(sketch)))
        for theta in (0.4, 0.6):
            want = direct.network_pruned((599, 600), theta)
            got = prefixed.network_pruned((599, 600), theta)
            np.testing.assert_array_equal(got.matrix, want.matrix)
            assert got.anchors_used == want.anchors_used

    def test_anchor_rows_never_restream(self, small_matrix):
        from repro.engine.providers import InMemoryProvider, PrefixProvider

        sketch = build_sketch(small_matrix, window_size=50)
        provider = PrefixProvider(InMemoryProvider(sketch))
        provider.prefix_matrix(0, sketch.n_windows)  # tables fully built
        self._forbid_streaming(provider)
        engine = TsubasaHistorical(provider=provider)
        result = engine.network_pruned((599, 600), 0.5)
        exact = np.corrcoef(small_matrix)
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(exact, 0.5)
        )

    def test_mmap_persisted_tables_serve_anchor_rows(self, small_matrix, tmp_path):
        from repro.engine.providers import MmapProvider
        from repro.storage.mmap_store import MmapStore
        from repro.storage.serialize import save_sketch

        sketch = build_sketch(small_matrix, window_size=50)
        with MmapStore(tmp_path / "st") as store:
            save_sketch(store, sketch)
            store.build_prefix()
        provider = self._forbid_streaming(MmapProvider(MmapStore(tmp_path / "st")))
        engine = TsubasaHistorical(provider=provider)
        result = engine.network_pruned((599, 600), 0.5, max_anchors=5)
        exact = np.corrcoef(small_matrix)
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(exact, 0.5)
        )
        assert len(result.anchors_used) <= 5

    def test_interior_range_via_prefix(self, small_matrix):
        from repro.engine.providers import InMemoryProvider, PrefixProvider

        sketch = build_sketch(small_matrix, window_size=50)
        engine = TsubasaHistorical(provider=PrefixProvider(InMemoryProvider(sketch)))
        result = engine.network_pruned((399, 200), 0.5)
        exact = np.corrcoef(small_matrix[:, 200:400])
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(exact, 0.5)
        )
