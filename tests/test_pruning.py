"""Tests for repro.core.pruning (Eq. 7 bounds and Algorithm 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.naive import baseline_correlation_matrix
from repro.core.matrix import threshold_adjacency
from repro.core.pruning import (
    correlation_bounds,
    prune_threshold_matrix,
)
from repro.exceptions import DataError


class TestCorrelationBounds:
    def test_anchor_perfectly_correlated(self):
        """c_xz = 1 forces c_xy = c_yz exactly."""
        lower, upper = correlation_bounds(1.0, 0.6)
        assert lower == pytest.approx(0.6)
        assert upper == pytest.approx(0.6)

    def test_uncorrelated_anchor_is_uninformative(self):
        lower, upper = correlation_bounds(0.0, 0.0)
        assert lower == pytest.approx(-1.0)
        assert upper == pytest.approx(1.0)

    def test_bounds_are_ordered(self, rng):
        c1 = rng.uniform(-1, 1, size=50)
        c2 = rng.uniform(-1, 1, size=50)
        lower, upper = correlation_bounds(c1, c2)
        assert np.all(lower <= upper + 1e-12)

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            correlation_bounds(1.5, 0.0)

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(3, 12))
    @settings(max_examples=80, deadline=None)
    def test_property_true_correlation_within_bounds(self, seed, n):
        """Eq. 7 must hold for any real correlation matrix."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 50))
        corr = baseline_correlation_matrix(data)
        for z in range(n):
            lower, upper = correlation_bounds(
                corr[:, z][:, None], corr[:, z][None, :]
            )
            assert np.all(corr >= lower - 1e-9)
            assert np.all(corr <= upper + 1e-9)


class TestPruneThresholdMatrix:
    def _make_compute_row(self, corr):
        calls = []

        def compute_row(i):
            calls.append(i)
            return corr[i]

        return compute_row, calls

    def _correlated_data(self, rng, n=12, length=80):
        base = rng.normal(size=(2, length))
        mix = rng.normal(size=(n, 2))
        return mix @ base + 0.3 * rng.normal(size=(n, length))

    def test_matrix_matches_exact_thresholding(self, rng):
        data = self._correlated_data(rng)
        corr = baseline_correlation_matrix(data)
        compute_row, _ = self._make_compute_row(corr)
        result = prune_threshold_matrix(compute_row, corr.shape[0], theta=0.7)
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(corr, 0.7)
        )

    def test_absolute_rule_matches_abs_thresholding(self, rng):
        data = self._correlated_data(rng)
        corr = baseline_correlation_matrix(data)
        compute_row, _ = self._make_compute_row(corr)
        result = prune_threshold_matrix(
            compute_row, corr.shape[0], theta=0.7, edge_rule="absolute"
        )
        expected = np.abs(corr) >= 0.7
        off_diag = ~np.eye(corr.shape[0], dtype=bool)
        np.testing.assert_array_equal(
            result.matrix[off_diag], expected[off_diag]
        )

    def test_inference_happens_with_strong_anchor(self, rng):
        """Highly clustered data lets the anchor decide many pairs."""
        base = rng.normal(size=80)
        data = base[None, :] + 0.05 * rng.normal(size=(10, 80))
        corr = baseline_correlation_matrix(data)
        compute_row, _ = self._make_compute_row(corr)
        result = prune_threshold_matrix(compute_row, 10, theta=0.6, max_anchors=1)
        assert result.decided_by_inference > 0
        assert result.pruning_rate > 0.0
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(corr, 0.6)
        )

    def test_max_anchors_limits_row_computations(self, rng):
        data = self._correlated_data(rng, n=8)
        corr = baseline_correlation_matrix(data)
        compute_row, calls = self._make_compute_row(corr)
        result = prune_threshold_matrix(compute_row, 8, theta=0.7, max_anchors=2)
        assert len(result.anchors_used) <= 2
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(corr, 0.7)
        )

    def test_accounting_covers_all_pairs(self, rng):
        data = self._correlated_data(rng, n=9)
        corr = baseline_correlation_matrix(data)
        compute_row, _ = self._make_compute_row(corr)
        result = prune_threshold_matrix(compute_row, 9, theta=0.75, max_anchors=3)
        assert (
            result.decided_by_inference + result.computed_exactly
            == 9 * 8 // 2
        )

    def test_rejects_bad_parameters(self, rng):
        corr = np.eye(3)
        compute_row, _ = self._make_compute_row(corr)
        with pytest.raises(DataError):
            prune_threshold_matrix(compute_row, 0, theta=0.5)
        with pytest.raises(DataError):
            prune_threshold_matrix(compute_row, 3, theta=1.5)
        with pytest.raises(DataError):
            prune_threshold_matrix(compute_row, 3, theta=0.5, edge_rule="huh")

    def test_rejects_bad_row_shape(self):
        def bad_row(i):
            return np.zeros(5)

        with pytest.raises(DataError):
            prune_threshold_matrix(bad_row, 3, theta=0.5)

    @given(seed=st.integers(0, 2**31 - 1), theta=st.floats(0.2, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_property_never_contradicts_exact(self, seed, theta):
        rng = np.random.default_rng(seed)
        data = self._correlated_data(rng, n=7, length=60)
        corr = baseline_correlation_matrix(data)
        compute_row, _ = self._make_compute_row(corr)
        result = prune_threshold_matrix(
            compute_row, 7, theta=float(theta), max_anchors=2
        )
        np.testing.assert_array_equal(
            result.matrix, threshold_adjacency(corr, float(theta))
        )
