"""Tests for repro.analysis (topology, communities, dynamics, accuracy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import compare_matrices, compare_networks
from repro.analysis.communities import detect_communities, partition_modularity
from repro.analysis.dynamics import (
    blinking_links,
    churn_series,
    edge_presence,
    edge_stability,
    summarize_dynamics,
)
from repro.analysis.topology import (
    connected_components,
    degree_distribution,
    hub_nodes,
    summarize_topology,
)
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.exceptions import DataError


def _network_from_edges(names, edges, theta=0.5):
    n = len(names)
    values = np.eye(n)
    index = {name: i for i, name in enumerate(names)}
    for a, b in edges:
        values[index[a], index[b]] = values[index[b], index[a]] = 0.9
    matrix = CorrelationMatrix(names=list(names), values=values)
    return ClimateNetwork.from_matrix(matrix, theta)


@pytest.fixture()
def two_cluster_network():
    """Two K3 cliques joined by nothing: {a,b,c} and {d,e,f}."""
    names = ["a", "b", "c", "d", "e", "f"]
    edges = [("a", "b"), ("b", "c"), ("a", "c"),
             ("d", "e"), ("e", "f"), ("d", "f")]
    return _network_from_edges(names, edges)


class TestTopology:
    def test_summary(self, two_cluster_network):
        summary = summarize_topology(two_cluster_network)
        assert summary.n_nodes == 6
        assert summary.n_edges == 6
        assert summary.n_components == 2
        assert summary.largest_component == 3
        assert summary.mean_degree == 2.0
        assert summary.max_degree == 2
        assert summary.average_clustering == pytest.approx(1.0)
        assert summary.density == pytest.approx(6 / 15)

    def test_degree_distribution(self, two_cluster_network):
        assert degree_distribution(two_cluster_network) == {2: 6}

    def test_connected_components_sorted(self):
        net = _network_from_edges(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c")]
        )
        components = connected_components(net)
        assert components[0] == {"a", "b", "c"}
        assert components[1] == {"d"}

    def test_hub_nodes(self):
        net = _network_from_edges(
            ["a", "b", "c", "d"], [("a", "b"), ("a", "c"), ("a", "d")]
        )
        hubs = hub_nodes(net, top_k=2)
        assert hubs[0] == ("a", 3)
        assert hubs[1][1] == 1

    def test_empty_network_summary(self):
        net = _network_from_edges(["a", "b"], [])
        summary = summarize_topology(net)
        assert summary.n_edges == 0
        assert summary.average_clustering == 0.0


class TestCommunities:
    def test_two_cliques_found(self, two_cluster_network):
        partition = detect_communities(two_cluster_network)
        assert partition.n_communities == 2
        assert frozenset({"a", "b", "c"}) in partition.communities
        assert partition.modularity > 0.3

    def test_community_of(self, two_cluster_network):
        partition = detect_communities(two_cluster_network)
        assert partition.community_of("a") == partition.community_of("b")
        assert partition.community_of("a") != partition.community_of("d")
        assert partition.community_of("zzz") == -1

    def test_label_propagation_runs(self, two_cluster_network):
        partition = detect_communities(
            two_cluster_network, method="label_propagation", seed=4
        )
        assert partition.n_communities >= 2

    def test_unknown_method(self, two_cluster_network):
        with pytest.raises(DataError):
            detect_communities(two_cluster_network, method="nope")

    def test_modularity_empty_network(self):
        net = _network_from_edges(["a", "b"], [])
        assert partition_modularity(net, [frozenset({"a", "b"})]) == 0.0


class TestDynamics:
    def _snapshots(self):
        names = ["a", "b", "c"]
        return [
            _network_from_edges(names, [("a", "b")]),
            _network_from_edges(names, [("a", "b"), ("b", "c")]),
            _network_from_edges(names, [("a", "b")]),
            _network_from_edges(names, [("a", "b"), ("b", "c")]),
        ]

    def test_edge_presence(self):
        counts = edge_presence(self._snapshots())
        assert counts[("a", "b")] == 4
        assert counts[("b", "c")] == 2

    def test_edge_stability(self):
        stability = edge_stability(self._snapshots())
        assert stability[("a", "b")] == 1.0
        assert stability[("b", "c")] == 0.5

    def test_churn_series(self):
        assert churn_series(self._snapshots()) == [1, 1, 1]

    def test_blinking_links(self):
        blinking = blinking_links(self._snapshots())
        assert ("b", "c") in blinking
        assert ("a", "b") not in blinking

    def test_summary(self):
        summary = summarize_dynamics(self._snapshots())
        assert summary.n_snapshots == 4
        assert summary.mean_edges == 1.5
        assert summary.mean_churn == 1.0
        assert summary.stable_edges == frozenset({("a", "b")})
        assert summary.blinking_edges == frozenset({("b", "c")})

    def test_rejects_mismatched_nodes(self):
        nets = [
            _network_from_edges(["a", "b"], []),
            _network_from_edges(["a", "c"], []),
        ]
        with pytest.raises(DataError):
            churn_series(nets)

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            summarize_dynamics([])


class TestAccuracy:
    def test_superset_detection(self):
        exact = np.zeros((4, 4), dtype=bool)
        exact[0, 1] = exact[1, 0] = True
        approx = exact.copy()
        approx[2, 3] = approx[3, 2] = True  # one false positive
        comparison = compare_networks(exact, approx)
        assert comparison.exact_edges == 1
        assert comparison.approx_edges == 2
        assert comparison.false_positives == 1
        assert comparison.false_negatives == 0
        assert comparison.is_superset

    def test_false_negative_detection(self):
        exact = np.zeros((3, 3), dtype=bool)
        exact[0, 1] = exact[1, 0] = True
        approx = np.zeros((3, 3), dtype=bool)
        comparison = compare_networks(exact, approx)
        assert comparison.false_negatives == 1
        assert not comparison.is_superset

    def test_similarity_matches_core(self):
        exact = np.zeros((4, 4), dtype=bool)
        approx = np.zeros((4, 4), dtype=bool)
        approx[0, 1] = approx[1, 0] = True
        comparison = compare_networks(exact, approx)
        assert comparison.similarity == pytest.approx(1.0 - 1.0 / 6.0)

    def test_compare_matrices(self, rng):
        exact = np.corrcoef(rng.normal(size=(5, 60)))
        noisy = np.clip(exact + 0.05, -1, 1)
        comparison = compare_matrices(exact, noisy, theta=0.3)
        assert comparison.false_negatives == 0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            compare_networks(np.zeros((2, 2)), np.zeros((3, 3)))
