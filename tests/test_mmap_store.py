"""Tests for repro.storage.mmap_store (zero-copy memory-mapped store)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.sketch import build_sketch
from repro.exceptions import StorageError
from repro.storage.base import StoreMetadata, WindowRecord
from repro.storage.mmap_store import MmapStore, is_mmap_store
from repro.storage.serialize import convert_store, load_sketch, save_sketch
from repro.storage.sqlite_store import SqliteSketchStore


def _record(index, n=4, size=10, seed=0):
    rng = np.random.default_rng(seed + index)
    pairs = rng.normal(size=(n, n))
    pairs = 0.5 * (pairs + pairs.T)
    return WindowRecord(
        index=index,
        means=rng.normal(size=n),
        stds=np.abs(rng.normal(size=n)),
        pairs=pairs,
        size=size,
    )


class TestLayout:
    def test_directory_files(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            save_sketch(store, build_sketch(np.random.default_rng(0).normal(
                size=(3, 100)), 20))
        names = {p.name for p in (tmp_path / "st").iterdir()}
        assert names == {"meta.json", "means.f64", "stds.f64",
                         "pairs.f64", "sizes.i64"}
        payload = json.loads((tmp_path / "st" / "meta.json").read_text())
        assert payload["n_series"] == 3
        assert payload["collection"]["window_size"] == 20

    def test_array_sizes_match_records(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i, n=5) for i in range(7)])
        assert (tmp_path / "st" / "pairs.f64").stat().st_size == 7 * 5 * 5 * 8
        assert (tmp_path / "st" / "means.f64").stat().st_size == 7 * 5 * 8
        assert (tmp_path / "st" / "sizes.i64").stat().st_size == 7 * 8

    def test_is_mmap_store_detection(self, tmp_path):
        assert not is_mmap_store(tmp_path / "nothing")
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=("a",), window_size=5))
        assert is_mmap_store(tmp_path / "st")


class TestPersistence:
    def test_records_survive_reopen(self, tmp_path):
        records = [_record(i) for i in range(6)]
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=tuple("abcd"), window_size=10))
            store.write_windows(records)
        with MmapStore(tmp_path / "st") as store:
            assert store.window_count() == 6
            loaded = store.read_windows([4, 1])
            assert [r.index for r in loaded] == [4, 1]
            np.testing.assert_array_equal(loaded[0].pairs, records[4].pairs)
            np.testing.assert_array_equal(loaded[1].means, records[1].means)

    def test_readonly_mode(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=tuple("abcd"), window_size=10))
            store.write_windows([_record(0)])
        with MmapStore(tmp_path / "st", mode="r") as store:
            assert store.window_count() == 1
            with pytest.raises(StorageError, match="read-only"):
                store.write_windows([_record(1)])
            with pytest.raises(StorageError, match="read-only"):
                store.write_metadata(
                    StoreMetadata(names=tuple("abcd"), window_size=10)
                )

    def test_readonly_requires_existing_store(self, tmp_path):
        with pytest.raises(StorageError, match="not an mmap sketch store"):
            MmapStore(tmp_path / "missing", mode="r")

    def test_out_of_order_writes_leave_holes(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(3)])
            assert store.window_count() == 1
            with pytest.raises(StorageError, match="missing"):
                store.read_windows([1])
            store.write_windows([_record(i) for i in range(3)])
            assert store.window_count() == 4
            assert [r.index for r in store.read_windows([0, 1, 2, 3])] == [0, 1, 2, 3]


class TestZeroCopy:
    def test_read_windows_returns_mapped_views(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(3)])
            record = store.read_windows([1])[0]
            # The record's arrays are read-only views over the mapping, not
            # deserialized copies.
            assert not record.pairs.flags.owndata
            assert not record.pairs.flags.writeable
            assert not record.means.flags.owndata

    def test_arrays_are_shared_across_reads(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(3)])
            a = store.read_windows([2])[0]
            b = store.read_windows([2])[0]
            assert np.shares_memory(a.pairs, b.pairs)


class TestInvalidInput:
    def test_rejects_bad_mode(self, tmp_path):
        with pytest.raises(StorageError):
            MmapStore(tmp_path / "st", mode="w")

    def test_rejects_mismatched_series_count(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(0, n=4)])
            with pytest.raises(StorageError, match="4-series"):
                store.write_windows([_record(1, n=5)])

    def test_rejects_mismatched_stds_length(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="stds shape"):
                store.write_windows(
                    [WindowRecord(index=0, means=np.zeros(4),
                                  stds=np.ones(3), pairs=np.eye(4), size=10)]
                )
            # The rejected record must not have been half-committed.
            assert store.window_count() == 0

    def test_rejects_mismatched_pairs_shape(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="pairs shape"):
                store.write_windows(
                    [WindowRecord(index=0, means=np.zeros(4),
                                  stds=np.ones(4), pairs=np.eye(3), size=10)]
                )
            assert store.window_count() == 0

    def test_rejects_nonpositive_window_size(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="non-positive"):
                store.write_windows(
                    [WindowRecord(index=0, means=np.zeros(2),
                                  stds=np.zeros(2), pairs=np.zeros((2, 2)),
                                  size=0)]
                )

    def test_rejects_corrupt_version(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=("a",), window_size=5))
        meta = tmp_path / "st" / "meta.json"
        payload = json.loads(meta.read_text())
        payload["version"] = 99
        meta.write_text(json.dumps(payload))
        with pytest.raises(StorageError, match="version"):
            MmapStore(tmp_path / "st")

    def test_rejects_truncated_array_file(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(4)])
        pairs = tmp_path / "st" / "pairs.f64"
        pairs.write_bytes(pairs.read_bytes()[:100])
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="wrong size"):
                store.read_windows([0])


class TestConvert:
    def test_sqlite_to_mmap_roundtrip(self, small_sketch, tmp_path):
        with SqliteSketchStore(tmp_path / "src.db") as src:
            save_sketch(src, small_sketch)
            with MmapStore(tmp_path / "dst") as dst:
                count = convert_store(src, dst, batch_size=5)
                assert count == 12
                loaded = load_sketch(dst)
        np.testing.assert_array_equal(loaded.covs, small_sketch.covs)
        np.testing.assert_array_equal(loaded.means, small_sketch.means)
        np.testing.assert_array_equal(loaded.sizes, small_sketch.sizes)
        assert loaded.names == small_sketch.names

    def test_mmap_to_sqlite_roundtrip(self, small_sketch, tmp_path):
        with MmapStore(tmp_path / "src") as src:
            save_sketch(src, small_sketch)
            with SqliteSketchStore(tmp_path / "dst.db") as dst:
                convert_store(src, dst)
                loaded = load_sketch(dst)
        np.testing.assert_array_equal(loaded.covs, small_sketch.covs)

    def test_rejects_bad_batch_size(self, small_sketch, tmp_path):
        with MmapStore(tmp_path / "src") as src:
            save_sketch(src, small_sketch)
            with pytest.raises(StorageError):
                convert_store(src, MmapStore(tmp_path / "dst"), batch_size=0)

    def test_rejects_nonempty_destination(self, small_sketch, tmp_path):
        """Neither backend deletes records, so converting over an existing
        store would leave stale windows mixed with the new sketch."""
        with MmapStore(tmp_path / "dst") as dst:
            save_sketch(dst, small_sketch)
        with SqliteSketchStore(tmp_path / "src.db") as src:
            save_sketch(src, small_sketch)
            with MmapStore(tmp_path / "dst") as dst:
                with pytest.raises(StorageError, match="already holds"):
                    convert_store(src, dst)
