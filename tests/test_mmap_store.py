"""Tests for repro.storage.mmap_store (zero-copy memory-mapped store)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.sketch import build_sketch
from repro.exceptions import StorageError
from repro.storage.base import StoreMetadata, WindowRecord
from repro.storage.mmap_store import MmapStore, is_mmap_store
from repro.storage.serialize import convert_store, load_sketch, save_sketch
from repro.storage.sqlite_store import SqliteSketchStore


def _record(index, n=4, size=10, seed=0):
    rng = np.random.default_rng(seed + index)
    pairs = rng.normal(size=(n, n))
    pairs = 0.5 * (pairs + pairs.T)
    return WindowRecord(
        index=index,
        means=rng.normal(size=n),
        stds=np.abs(rng.normal(size=n)),
        pairs=pairs,
        size=size,
    )


class TestLayout:
    def test_directory_files(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            save_sketch(store, build_sketch(np.random.default_rng(0).normal(
                size=(3, 100)), 20))
        names = {p.name for p in (tmp_path / "st").iterdir()}
        assert names == {"meta.json", "means.f64", "stds.f64",
                         "pairs.f64", "sizes.i64"}
        payload = json.loads((tmp_path / "st" / "meta.json").read_text())
        assert payload["n_series"] == 3
        assert payload["collection"]["window_size"] == 20

    def test_array_sizes_match_records(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i, n=5) for i in range(7)])
        assert (tmp_path / "st" / "pairs.f64").stat().st_size == 7 * 5 * 5 * 8
        assert (tmp_path / "st" / "means.f64").stat().st_size == 7 * 5 * 8
        assert (tmp_path / "st" / "sizes.i64").stat().st_size == 7 * 8

    def test_is_mmap_store_detection(self, tmp_path):
        assert not is_mmap_store(tmp_path / "nothing")
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=("a",), window_size=5))
        assert is_mmap_store(tmp_path / "st")


class TestPersistence:
    def test_records_survive_reopen(self, tmp_path):
        records = [_record(i) for i in range(6)]
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=tuple("abcd"), window_size=10))
            store.write_windows(records)
        with MmapStore(tmp_path / "st") as store:
            assert store.window_count() == 6
            loaded = store.read_windows([4, 1])
            assert [r.index for r in loaded] == [4, 1]
            np.testing.assert_array_equal(loaded[0].pairs, records[4].pairs)
            np.testing.assert_array_equal(loaded[1].means, records[1].means)

    def test_readonly_mode(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=tuple("abcd"), window_size=10))
            store.write_windows([_record(0)])
        with MmapStore(tmp_path / "st", mode="r") as store:
            assert store.window_count() == 1
            with pytest.raises(StorageError, match="read-only"):
                store.write_windows([_record(1)])
            with pytest.raises(StorageError, match="read-only"):
                store.write_metadata(
                    StoreMetadata(names=tuple("abcd"), window_size=10)
                )

    def test_readonly_requires_existing_store(self, tmp_path):
        with pytest.raises(StorageError, match="not an mmap sketch store"):
            MmapStore(tmp_path / "missing", mode="r")

    def test_out_of_order_writes_leave_holes(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(3)])
            assert store.window_count() == 1
            with pytest.raises(StorageError, match="missing"):
                store.read_windows([1])
            store.write_windows([_record(i) for i in range(3)])
            assert store.window_count() == 4
            assert [r.index for r in store.read_windows([0, 1, 2, 3])] == [0, 1, 2, 3]


class TestZeroCopy:
    def test_read_windows_returns_mapped_views(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(3)])
            record = store.read_windows([1])[0]
            # The record's arrays are read-only views over the mapping, not
            # deserialized copies.
            assert not record.pairs.flags.owndata
            assert not record.pairs.flags.writeable
            assert not record.means.flags.owndata

    def test_arrays_are_shared_across_reads(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(3)])
            a = store.read_windows([2])[0]
            b = store.read_windows([2])[0]
            assert np.shares_memory(a.pairs, b.pairs)


class TestInvalidInput:
    def test_rejects_bad_mode(self, tmp_path):
        with pytest.raises(StorageError):
            MmapStore(tmp_path / "st", mode="w")

    def test_rejects_mismatched_series_count(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(0, n=4)])
            with pytest.raises(StorageError, match="4-series"):
                store.write_windows([_record(1, n=5)])

    def test_rejects_mismatched_stds_length(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="stds shape"):
                store.write_windows(
                    [WindowRecord(index=0, means=np.zeros(4),
                                  stds=np.ones(3), pairs=np.eye(4), size=10)]
                )
            # The rejected record must not have been half-committed.
            assert store.window_count() == 0

    def test_rejects_mismatched_pairs_shape(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="pairs shape"):
                store.write_windows(
                    [WindowRecord(index=0, means=np.zeros(4),
                                  stds=np.ones(4), pairs=np.eye(3), size=10)]
                )
            assert store.window_count() == 0

    def test_rejects_nonpositive_window_size(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="non-positive"):
                store.write_windows(
                    [WindowRecord(index=0, means=np.zeros(2),
                                  stds=np.zeros(2), pairs=np.zeros((2, 2)),
                                  size=0)]
                )

    def test_rejects_corrupt_version(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=("a",), window_size=5))
        meta = tmp_path / "st" / "meta.json"
        payload = json.loads(meta.read_text())
        payload["version"] = 99
        meta.write_text(json.dumps(payload))
        with pytest.raises(StorageError, match="version"):
            MmapStore(tmp_path / "st")

    def test_rejects_truncated_array_file(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(4)])
        pairs = tmp_path / "st" / "pairs.f64"
        pairs.write_bytes(pairs.read_bytes()[:100])
        with MmapStore(tmp_path / "st") as store:
            with pytest.raises(StorageError, match="wrong size"):
                store.read_windows([0])


class TestConvert:
    def test_sqlite_to_mmap_roundtrip(self, small_sketch, tmp_path):
        with SqliteSketchStore(tmp_path / "src.db") as src:
            save_sketch(src, small_sketch)
            with MmapStore(tmp_path / "dst") as dst:
                count = convert_store(src, dst, batch_size=5)
                assert count == 12
                loaded = load_sketch(dst)
        np.testing.assert_array_equal(loaded.covs, small_sketch.covs)
        np.testing.assert_array_equal(loaded.means, small_sketch.means)
        np.testing.assert_array_equal(loaded.sizes, small_sketch.sizes)
        assert loaded.names == small_sketch.names

    def test_mmap_to_sqlite_roundtrip(self, small_sketch, tmp_path):
        with MmapStore(tmp_path / "src") as src:
            save_sketch(src, small_sketch)
            with SqliteSketchStore(tmp_path / "dst.db") as dst:
                convert_store(src, dst)
                loaded = load_sketch(dst)
        np.testing.assert_array_equal(loaded.covs, small_sketch.covs)

    def test_rejects_bad_batch_size(self, small_sketch, tmp_path):
        with MmapStore(tmp_path / "src") as src:
            save_sketch(src, small_sketch)
            with pytest.raises(StorageError):
                convert_store(src, MmapStore(tmp_path / "dst"), batch_size=0)

    def test_rejects_nonempty_destination(self, small_sketch, tmp_path):
        """Neither backend deletes records, so converting over an existing
        store would leave stale windows mixed with the new sketch."""
        with MmapStore(tmp_path / "dst") as dst:
            save_sketch(dst, small_sketch)
        with SqliteSketchStore(tmp_path / "src.db") as src:
            save_sketch(src, small_sketch)
            with MmapStore(tmp_path / "dst") as dst:
                with pytest.raises(StorageError, match="already holds"):
                    convert_store(src, dst)


class TestGenerationCounter:
    """Commit generation counter + fsync barrier (concurrent-reader support)."""

    def test_fresh_store_starts_at_zero(self, tmp_path):
        store = MmapStore(tmp_path / "st")
        assert store.generation == 0

    def test_metadata_write_bumps_generation(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=("a", "b"), window_size=5))
            assert store.generation == 2
            assert store.read_generation() == 2

    def test_each_batch_commit_bumps_generation(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(
                StoreMetadata(names=tuple("abcd"), window_size=10)
            )
            g0 = store.generation
            store.write_windows([_record(0), _record(1)])
            assert store.generation == g0 + 2
            store.write_windows([_record(2)])
            assert store.generation == g0 + 4

    def test_quiescent_generation_is_even(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_metadata(StoreMetadata(names=tuple("abcd"),
                                               window_size=10))
            store.write_windows([_record(0)])
            assert store.generation % 2 == 0
            assert store.read_generation() % 2 == 0

    def test_reader_handle_detects_concurrent_commit(self, tmp_path):
        """The documented reader pattern: sample read_generation() around
        reads; a change means a writer committed in between."""
        writer = MmapStore(tmp_path / "st")
        writer.write_windows([_record(i) for i in range(4)])
        reader = MmapStore(tmp_path / "st", mode="r")
        g0 = reader.read_generation()
        reader.read_windows([0, 1])
        assert reader.read_generation() == g0  # quiescent store: no retry
        writer.write_windows([_record(4)])
        assert reader.read_generation() == g0 + 2  # mid-read commit detected

    def test_in_progress_overwrite_reads_odd(self, tmp_path):
        """The seqlock half of the pattern: a reader sampling *during* a
        rewrite of an existing record sees an odd generation — the
        sizes-last sentinel cannot flag overwrites, the parity does."""
        writer = MmapStore(tmp_path / "st")
        writer.write_windows([_record(i) for i in range(3)])
        reader = MmapStore(tmp_path / "st", mode="r")
        quiescent = reader.read_generation()
        assert quiescent % 2 == 0
        observed = []
        original = MmapStore._flush_records

        class SpyStore(MmapStore):
            def _flush_records(self, mem, lo, hi):  # mid-write observation
                observed.append(reader.read_generation())
                original(mem, lo, hi)

        spy = SpyStore(tmp_path / "st")
        spy.write_windows([_record(0, seed=99)])  # overwrite record 0
        assert observed  # flushed at least once mid-write
        assert all(g == quiescent + 1 for g in observed)  # odd: in progress
        assert all(g % 2 == 1 for g in observed)
        assert reader.read_generation() == quiescent + 2  # committed, even

    def test_generation_persists_across_reopen(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(0)])
            store.write_windows([_record(1)])
            expected = store.generation
        assert MmapStore(tmp_path / "st").generation == expected

    def test_pre_generation_store_reads_as_zero(self, tmp_path):
        """Stores written before the counter existed stay readable."""
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(0)])
        meta_path = tmp_path / "st" / "meta.json"
        payload = json.loads(meta_path.read_text())
        del payload["generation"]
        meta_path.write_text(json.dumps(payload))
        reopened = MmapStore(tmp_path / "st", mode="r")
        assert reopened.generation == 0
        assert reopened.read_generation() == 0
        assert reopened.read_windows([0])[0].size == 10

    def test_meta_replace_is_atomic(self, tmp_path):
        """No temp sidecar survives a commit (write + fsync + rename)."""
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(3)])
        names = {p.name for p in (tmp_path / "st").iterdir()}
        assert "meta.json.tmp" not in names
        assert "meta.json" in names

    def test_sizes_still_committed_last(self, tmp_path):
        """The generation counter rides on, not instead of, the sizes-last
        commit: a record is visible only once its size is nonzero."""
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(0), _record(2)])
            with pytest.raises(StorageError, match="missing"):
                store.read_windows([1])

    def test_failed_commit_does_not_invert_parity(self, tmp_path):
        """A commit that dies between begin and finish leaves the store
        flagged odd (possibly torn); the NEXT successful batch must still
        open odd and close even — the parity is computed, not accumulated."""
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i) for i in range(3)])
            quiescent = store.generation
        assert quiescent % 2 == 0

        class FailingStore(MmapStore):
            def _ensure_capacity(self, needed):  # simulate ENOSPC
                raise StorageError("disk full")

        broken = FailingStore(tmp_path / "st")
        with pytest.raises(StorageError, match="disk full"):
            broken.write_windows([_record(0, seed=1)])
        # Interrupted commit: odd at rest, correctly flagging suspect data.
        recovered = MmapStore(tmp_path / "st")
        assert recovered.read_generation() % 2 == 1

        reader = MmapStore(tmp_path / "st", mode="r")
        observed = []
        original = MmapStore._flush_records

        class SpyStore(MmapStore):
            def _flush_records(self, mem, lo, hi):
                observed.append(reader.read_generation())
                original(mem, lo, hi)

        SpyStore(tmp_path / "st").write_windows([_record(0, seed=2)])
        assert observed and all(g % 2 == 1 for g in observed)  # still odd mid-write
        assert reader.read_generation() % 2 == 0  # healed: even once durable

    def test_metadata_write_preserves_torn_flag(self, tmp_path):
        """Only a completed record batch may clear the odd torn-data flag."""
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(0)])

        class FailingStore(MmapStore):
            def _ensure_capacity(self, needed):
                raise StorageError("disk full")

        with pytest.raises(StorageError):
            FailingStore(tmp_path / "st").write_windows([_record(1)])
        store = MmapStore(tmp_path / "st")
        assert store.generation % 2 == 1
        store.write_metadata(StoreMetadata(names=tuple("abcd"), window_size=10))
        assert store.generation % 2 == 1  # metadata alone cannot declare clean
        store.write_windows([_record(1)])
        assert store.generation % 2 == 0

    def test_second_writer_handle_never_regresses_generation(self, tmp_path):
        """A writer handle opened before another writer's commits must fold
        the on-disk generation into its own before publishing, or its next
        commit would regress the counter and mask the interleaved writes
        from readers."""
        a = MmapStore(tmp_path / "st")
        a.write_windows([_record(0)])
        b = MmapStore(tmp_path / "st")  # loads generation now
        a.write_windows([_record(1)])
        a.write_windows([_record(2)])
        g_disk = b.read_generation()
        assert g_disk > b.generation  # b's in-memory view is stale
        b.write_windows([_record(0, seed=7)])  # overwrite through stale handle
        g_after = b.read_generation()
        assert g_after > g_disk  # advanced, never regressed
        assert g_after % 2 == 0

    def test_stale_handle_does_not_clobber_metadata(self, tmp_path):
        """A handle opened before another handle wrote collection metadata
        must fold the on-disk sidecar in before rewriting it — not publish
        its stale (collection-less, generation-0) view over it."""
        stale = MmapStore(tmp_path / "st")  # opened first: no metadata yet
        fresh = MmapStore(tmp_path / "st")
        fresh.write_metadata(StoreMetadata(names=tuple("abcd"), window_size=10))
        g_meta = fresh.read_generation()
        stale.write_windows([_record(0)])  # must not clobber the sidecar
        reader = MmapStore(tmp_path / "st", mode="r")
        meta = reader.read_metadata()
        assert meta.names == tuple("abcd")
        assert meta.window_size == 10
        assert reader.read_generation() > g_meta  # advanced, never regressed
        assert reader.read_generation() % 2 == 0

    def test_reader_remaps_after_writer_grows_store(self, tmp_path):
        """The documented retry pattern must work when the detected commit
        *grew* the store: the reader's cached maps are remapped to the new
        capacity instead of raising IndexError on a fresh index."""
        writer = MmapStore(tmp_path / "st")
        writer.write_windows([_record(i) for i in range(4)])
        reader = MmapStore(tmp_path / "st", mode="r")
        g0 = reader.read_generation()
        old = reader.read_windows([0, 1])  # maps cached at capacity 4
        writer.write_windows([_record(10)])  # grows files to capacity 11
        assert reader.read_generation() != g0  # pattern: change detected
        fresh = reader.read_windows([10])[0]  # retry must succeed
        assert fresh.index == 10
        np.testing.assert_array_equal(fresh.pairs, _record(10).pairs)
        # Views taken before the growth stay valid (old mapping kept alive).
        np.testing.assert_array_equal(old[0].pairs, _record(0).pairs)
        assert reader.window_count() == 5


class TestTrim:
    """Compaction of trailing capacity left by out-of-order writes."""

    def _sketch(self, n=6, points=300, window=50):
        rng = np.random.default_rng(42)
        return build_sketch(rng.normal(size=(n, points)), window)

    def test_compact_store_is_a_noop(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            save_sketch(store, self._sketch())
            generation = store.read_generation()
            assert store.trim() == 0
            assert store.read_generation() == generation

    def test_reclaims_trailing_unwritten_capacity(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i, n=5) for i in range(4)])
            # An out-of-order batch grew capacity, then never committed
            # (crash simulation: capacity exists, sizes stay zero).
            store._ensure_capacity(32)
            oversized = store.size_bytes()
            reclaimed = store.trim()
            assert reclaimed > 0
            assert store.size_bytes() == oversized - reclaimed
            assert store.window_count() == 4
            records = store.read_windows([0, 3])
            assert [r.index for r in records] == [0, 3]
            assert (tmp_path / "st" / "sizes.i64").stat().st_size == 4 * 8
            # Generation advanced to an even (committed) value.
            assert store.read_generation() % 2 == 0

    def test_interior_holes_are_preserved(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i, n=4) for i in (0, 1, 5)])
            store._ensure_capacity(20)
            store.trim()
            # Capacity shrank to the last committed record...
            assert (tmp_path / "st" / "sizes.i64").stat().st_size == 6 * 8
            # ... but the interior hole stays a hole (indices are semantic).
            with pytest.raises(StorageError, match="missing"):
                store.read_windows([3])
            assert store.read_windows([5])[0].index == 5

    def test_trim_preserves_prefix_tables(self, tmp_path):
        sketch = self._sketch()
        with MmapStore(tmp_path / "st") as store:
            save_sketch(store, sketch)
            covered = store.build_prefix()
            assert covered == sketch.n_windows
            store._ensure_capacity(sketch.n_windows + 16)
            assert store.trim() > 0
            assert store.prefix_rows == sketch.n_windows + 1
            aggregates = store.read_prefix()
            assert aggregates is not None
            assert aggregates.covered == sketch.n_windows
        # Reopen from disk: the sidecar and tables agree after the trim.
        with MmapStore(tmp_path / "st", mode="r") as reopened:
            assert reopened.read_prefix().covered == sketch.n_windows

    def test_trim_requires_writable_store_with_records(self, tmp_path):
        with MmapStore(tmp_path / "st") as store:
            save_sketch(store, self._sketch())
        with MmapStore(tmp_path / "st", mode="r") as readonly:
            with pytest.raises(StorageError, match="read-only"):
                readonly.trim()
        with MmapStore(tmp_path / "empty") as empty:
            with pytest.raises(StorageError, match="no window records"):
                empty.trim()

    def test_reader_detects_concurrent_trim(self, tmp_path):
        """trim runs behind the generation barrier like any commit."""
        with MmapStore(tmp_path / "st") as store:
            store.write_windows([_record(i, n=4) for i in range(3)])
            store._ensure_capacity(10)
        reader = MmapStore(tmp_path / "st", mode="r")
        g0 = reader.read_generation()
        with MmapStore(tmp_path / "st") as writer:
            writer.trim()
        assert reader.read_generation() != g0
        assert reader.read_generation() % 2 == 0
        reader.close()
