"""Shared fixtures for the TSUBASA reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sketch import build_sketch
from repro.data.synthetic import generate_station_dataset


@pytest.fixture(scope="session")
def small_dataset():
    """20 correlated stations x 600 hourly points (deterministic)."""
    return generate_station_dataset(n_stations=20, n_points=600, seed=11)


@pytest.fixture(scope="session")
def medium_dataset():
    """40 correlated stations x 1500 points for integration tests."""
    return generate_station_dataset(n_stations=40, n_points=1500, seed=23)


@pytest.fixture(scope="session")
def small_matrix(small_dataset):
    """The (20, 600) value matrix of the small dataset."""
    return small_dataset.values


@pytest.fixture()
def small_sketch(small_matrix):
    """Exact sketch of the small dataset with B=50 (12 windows)."""
    return build_sketch(small_matrix, window_size=50)


@pytest.fixture(scope="session")
def rng():
    """A deterministic random generator for ad-hoc test data."""
    return np.random.default_rng(1234)
