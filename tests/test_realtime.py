"""Tests for repro.core.realtime (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.realtime import TsubasaRealtime
from repro.exceptions import DataError, StreamError


@pytest.fixture()
def stream_data(rng):
    """12 correlated series x 900 points (300 initial + 600 streamed)."""
    base = rng.normal(size=(3, 900))
    mix = rng.normal(size=(12, 3))
    return mix @ base + 0.5 * rng.normal(size=(12, 900))


class TestConstruction:
    def test_initial_matrix_matches_numpy(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        ref = np.corrcoef(stream_data[:, :300])
        np.testing.assert_allclose(
            engine.correlation_matrix().values, ref, atol=1e-10
        )

    def test_rejects_non_multiple_initial_window(self, stream_data):
        with pytest.raises(StreamError):
            TsubasaRealtime(stream_data[:, :310], window_size=50)

    def test_rejects_1d(self, rng):
        with pytest.raises(DataError):
            TsubasaRealtime(rng.normal(size=100), window_size=10)


class TestIngest:
    def test_exact_after_each_window(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        for step in range(6):
            lo = 300 + step * 50
            slides = engine.ingest(stream_data[:, lo : lo + 50])
            assert slides == 1
            ref = np.corrcoef(stream_data[:, lo + 50 - 300 : lo + 50])
            np.testing.assert_allclose(
                engine.correlation_matrix().values, ref, atol=1e-9
            )

    def test_partial_batches_buffer(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        assert engine.ingest(stream_data[:, 300:330]) == 0
        assert engine.pending == 30
        assert engine.ingest(stream_data[:, 330:350]) == 1
        assert engine.pending == 0
        ref = np.corrcoef(stream_data[:, 50:350])
        np.testing.assert_allclose(
            engine.correlation_matrix().values, ref, atol=1e-9
        )

    def test_large_batch_multiple_windows(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        slides = engine.ingest(stream_data[:, 300:470])
        assert slides == 3
        assert engine.pending == 20
        assert engine.windows_processed == 3
        ref = np.corrcoef(stream_data[:, 150:450])
        np.testing.assert_allclose(
            engine.correlation_matrix().values, ref, atol=1e-9
        )

    def test_single_tick_vector(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        engine.ingest(stream_data[:, 300])
        assert engine.pending == 1

    def test_now_advances_per_window(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        assert engine.now == 300
        engine.ingest(stream_data[:, 300:360])
        assert engine.now == 350  # one full window folded, 10 pending

    def test_rejects_wrong_series_count(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        with pytest.raises(StreamError):
            engine.ingest(np.zeros((5, 10)))

    def test_rejects_nan(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        batch = np.full((12, 5), np.nan)
        with pytest.raises(DataError):
            engine.ingest(batch)


class TestNetworkUpdates:
    def test_network_matches_matrix(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        engine.ingest(stream_data[:, 300:400])
        matrix = engine.correlation_matrix()
        network = engine.network(theta=0.4)
        assert network.n_edges == matrix.n_edges(0.4)

    def test_diff_network(self, stream_data):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        before = engine.network(theta=0.4)
        engine.ingest(stream_data[:, 300:600])
        appeared, disappeared = engine.diff_network(before, theta=0.4)
        after_edges = engine.network(theta=0.4).edge_set()
        assert appeared == after_edges - before.edge_set()
        assert disappeared == before.edge_set() - after_edges

    def test_diff_rejects_different_nodes(self, stream_data, rng):
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        other = TsubasaRealtime(
            rng.normal(size=(3, 100)), window_size=50
        ).network(theta=0.5)
        with pytest.raises(StreamError):
            engine.diff_network(other, theta=0.5)


class TestLongStream:
    def test_equivalence_with_historical_engine(self, stream_data):
        """After draining the stream, real-time == batch over the suffix."""
        engine = TsubasaRealtime(stream_data[:, :300], window_size=50)
        engine.ingest(stream_data[:, 300:900])
        ref = np.corrcoef(stream_data[:, 600:900])
        np.testing.assert_allclose(
            engine.correlation_matrix().values, ref, atol=1e-9
        )
        assert engine.windows_processed == 12
