"""Tests for repro.streams (sources and the ingestion loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.realtime import TsubasaRealtime
from repro.exceptions import StreamError
from repro.streams.ingestion import StreamIngestor
from repro.streams.sources import ReplaySource, SyntheticSource


class TestReplaySource:
    def test_replays_everything_in_order(self, rng):
        data = rng.normal(size=(3, 100))
        source = ReplaySource(data, batch_size=30)
        batches = list(source)
        assert [b.shape[1] for b in batches] == [30, 30, 30, 10]
        np.testing.assert_array_equal(np.concatenate(batches, axis=1), data)
        assert source.exhausted

    def test_start_offset(self, rng):
        data = rng.normal(size=(2, 50))
        source = ReplaySource(data, batch_size=25, start=25)
        batches = list(source)
        assert len(batches) == 1
        np.testing.assert_array_equal(batches[0], data[:, 25:])

    def test_rejects_bad_args(self, rng):
        data = rng.normal(size=(2, 50))
        with pytest.raises(StreamError):
            ReplaySource(data, batch_size=0)
        with pytest.raises(StreamError):
            ReplaySource(data, batch_size=10, start=60)
        with pytest.raises(StreamError):
            ReplaySource(rng.normal(size=10), batch_size=5)


class TestSyntheticSource:
    def test_emits_correct_shapes(self, rng):
        loadings = rng.normal(size=(6, 2))
        source = SyntheticSource(loadings, batch_size=17, seed=5)
        batch = next(source)
        assert batch.shape == (6, 17)
        assert np.all(np.isfinite(batch))

    def test_deterministic_given_seed(self, rng):
        loadings = rng.normal(size=(4, 2))
        a = next(SyntheticSource(loadings, batch_size=10, seed=9))
        b = next(SyntheticSource(loadings, batch_size=10, seed=9))
        np.testing.assert_array_equal(a, b)

    def test_shared_loadings_induce_correlation(self, rng):
        """Sites with identical loadings must correlate strongly."""
        loadings = np.ones((2, 3))
        source = SyntheticSource(loadings, batch_size=2000, seed=3,
                                 noise_scale=0.1)
        batch = next(source)
        assert np.corrcoef(batch)[0, 1] > 0.9

    def test_rejects_bad_args(self, rng):
        with pytest.raises(StreamError):
            SyntheticSource(rng.normal(size=(3, 2)), batch_size=0)
        with pytest.raises(StreamError):
            SyntheticSource(rng.normal(size=(3, 2)), batch_size=5, factor_phi=1.0)
        with pytest.raises(StreamError):
            SyntheticSource(rng.normal(size=3), batch_size=5)


class TestStreamIngestor:
    @pytest.fixture()
    def engine_and_data(self, rng):
        base = rng.normal(size=(2, 800))
        mix = rng.normal(size=(8, 2))
        data = mix @ base + 0.4 * rng.normal(size=(8, 800))
        engine = TsubasaRealtime(data[:, :300], window_size=50)
        return engine, data

    def test_snapshot_per_completed_window(self, engine_and_data):
        engine, data = engine_and_data
        ingestor = StreamIngestor(engine, theta=0.5)
        snapshots = ingestor.run(ReplaySource(data, 70, start=300))
        # 500 streamed points = 10 full basic windows.
        assert len(snapshots) == 10
        assert snapshots[-1].timestamp == 800
        assert ingestor.history == snapshots

    def test_snapshots_are_exact(self, engine_and_data):
        engine, data = engine_and_data
        ingestor = StreamIngestor(engine, theta=0.5)
        snapshots = ingestor.run(ReplaySource(data, 50, start=300))
        for snap in snapshots:
            lo = snap.timestamp - 300
            ref = np.corrcoef(data[:, lo : snap.timestamp])
            expected_edges = int(
                np.triu(ref > 0.5, k=1).sum()
            )
            assert snap.network.n_edges == expected_edges

    def test_churn_bookkeeping_consistent(self, engine_and_data):
        engine, data = engine_and_data
        ingestor = StreamIngestor(engine, theta=0.4)
        snapshots = ingestor.run(ReplaySource(data, 50, start=300))
        previous = None
        for snap in snapshots:
            if previous is not None:
                edges_prev = previous.network.edge_set()
                edges_now = snap.network.edge_set()
                assert snap.appeared == frozenset(edges_now - edges_prev)
                assert snap.disappeared == frozenset(edges_prev - edges_now)
            previous = snap

    def test_callback_invoked(self, engine_and_data):
        engine, data = engine_and_data
        seen = []
        ingestor = StreamIngestor(engine, theta=0.5, on_update=seen.append)
        ingestor.run(ReplaySource(data, 50, start=300), max_updates=3)
        assert len(seen) == 3

    def test_max_updates_stops_early(self, engine_and_data):
        engine, data = engine_and_data
        ingestor = StreamIngestor(engine, theta=0.5)
        snapshots = ingestor.run(ReplaySource(data, 50, start=300), max_updates=4)
        assert len(snapshots) == 4

    def test_history_disabled(self, engine_and_data):
        engine, data = engine_and_data
        ingestor = StreamIngestor(engine, theta=0.5, keep_history=False)
        ingestor.run(ReplaySource(data, 50, start=300), max_updates=2)
        assert ingestor.history == []

    def test_rejects_bad_max_updates(self, engine_and_data):
        engine, data = engine_and_data
        ingestor = StreamIngestor(engine, theta=0.5)
        with pytest.raises(StreamError):
            ingestor.run(ReplaySource(data, 50, start=300), max_updates=0)

    def test_endless_source_with_cap(self, rng):
        loadings = rng.normal(size=(5, 2))
        initial = next(SyntheticSource(loadings, batch_size=200, seed=1))
        engine = TsubasaRealtime(initial, window_size=50)
        ingestor = StreamIngestor(engine, theta=0.5)
        source = SyntheticSource(loadings, batch_size=60, seed=2)
        snapshots = ingestor.run(source, max_updates=5)
        assert len(snapshots) == 5


class TestSnapshotHub:
    """The bounded fan-out bridging ingestion to push subscribers."""

    def _hub(self, matrix, theta=0.4, **kwargs):
        from repro.streams.hub import SnapshotHub

        engine = TsubasaRealtime(matrix[:, :300], 50)
        ingestor = StreamIngestor(engine, theta=theta)
        return SnapshotHub(ingestor, **kwargs), matrix

    def test_pump_publishes_every_snapshot(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix)
        source = ReplaySource(matrix, 50, start=300)

        async def run():
            subscription = hub.subscribe()
            pump = asyncio.get_running_loop().create_task(hub.pump(source))
            received = []
            async for snapshot in subscription:
                received.append(snapshot)
                if len(received) == 6:
                    break
            await pump
            return received

        received = asyncio.run(run())
        assert [s.timestamp for s in received] == [350, 400, 450, 500, 550, 600]
        assert hub.published == 6

    def test_close_ends_subscriptions_cleanly(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix)

        async def run():
            subscription = hub.subscribe()
            hub.publish(hub.ingestor.push(matrix[:, 300:350])[0])
            hub.close()
            received = [snapshot async for snapshot in subscription]
            return received

        received = asyncio.run(run())
        assert len(received) == 1
        assert hub.closed

    def test_lagged_subscriber_is_dropped(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix, max_pending=2)

        async def run():
            subscription = hub.subscribe()
            healthy = hub.subscribe()
            snapshots = hub.ingestor.push(matrix[:, 300:600])
            assert len(snapshots) == 6
            for snapshot in snapshots:
                hub.publish(snapshot)
            # The healthy subscriber (bound 2) lagged too -- use a fresh one
            # to show delivery still works after drops.
            assert subscription.lagged and healthy.lagged
            assert hub.dropped_subscriptions == 2
            assert hub.n_subscriptions == 0
            with pytest.raises(StreamError, match="lagged"):
                async for _ in subscription:
                    pass
            late = hub.subscribe()
            hub.publish(snapshots[-1])
            hub.close()
            return [snapshot async for snapshot in late]

        received = asyncio.run(run())
        assert len(received) == 1

    def test_per_subscription_theta(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix, theta=0.2)

        async def run():
            strict = hub.subscribe(theta=0.7)
            base = hub.subscribe()
            snapshot = hub.ingestor.push(matrix[:, 300:350])[0]
            hub.publish(snapshot)
            hub.close()
            strict_events = [s async for s in strict]
            base_events = [s async for s in base]
            return strict_events[0], base_events[0]

        strict_snapshot, base_snapshot = asyncio.run(run())
        assert strict_snapshot.network.threshold == 0.7
        strict_edges = strict_snapshot.network.edge_set()
        base_edges = base_snapshot.network.edge_set()
        assert strict_edges <= base_edges
        for a, b in strict_edges:
            assert strict_snapshot.network.edge_weight(a, b) > 0.7
        # First event reports the standing network as appeared.
        assert strict_snapshot.appeared == frozenset(strict_edges)

    def test_subscribe_validation(self, small_matrix):
        hub, _ = self._hub(small_matrix, theta=0.5)
        with pytest.raises(StreamError, match=">="):
            hub.subscribe(theta=0.2)
        with pytest.raises(StreamError):
            hub.subscribe(max_pending=0)
        hub.close()
        with pytest.raises(StreamError, match="closed"):
            hub.subscribe()

    def test_close_with_full_queue_still_ends(self, small_matrix):
        """Closing the hub while a subscription's queue is exactly full must
        not strand the consumer (the END sentinel has no queue slot; the
        closed flag is the durable signal)."""
        import asyncio

        hub, matrix = self._hub(small_matrix, max_pending=2)

        async def run():
            subscription = hub.subscribe()
            snapshots = hub.ingestor.push(matrix[:, 300:400])  # 2 slides
            for snapshot in snapshots:
                hub.publish(snapshot)
            assert not subscription.lagged  # exactly full, not overflowed
            hub.close()
            received = []

            async def consume():
                async for snapshot in subscription:
                    received.append(snapshot)

            await asyncio.wait_for(consume(), timeout=5.0)
            return received

        received = asyncio.run(run())
        assert len(received) == 2


class TestSubscriptionResume:
    """Hub-global sequence numbers, the replay ring, and gap signalling."""

    def _hub(self, matrix, theta=0.4, **kwargs):
        from repro.streams.hub import SnapshotHub

        engine = TsubasaRealtime(matrix[:, :300], 50)
        ingestor = StreamIngestor(engine, theta=theta)
        return SnapshotHub(ingestor, **kwargs), matrix

    def _publish(self, hub, matrix, start, stop):
        snapshots = hub.ingestor.push(matrix[:, start:stop])
        for snapshot in snapshots:
            hub.publish(snapshot)
        return snapshots

    def test_seq_is_global_and_contiguous(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix)

        async def run():
            early = hub.subscribe()
            self._publish(hub, matrix, 300, 400)  # seqs 0, 1
            late = hub.subscribe()
            self._publish(hub, matrix, 400, 500)  # seqs 2, 3
            hub.close()
            await _drain(early)
            await _drain(late)
            return early, late

        early, late = asyncio.run(run())
        assert early.last_seq == 3
        assert late.last_seq == 3
        assert hub.last_seq == 3

    def test_resume_replays_from_the_ring(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix)

        async def run():
            published = self._publish(hub, matrix, 300, 600)  # seqs 0..5
            resumed = hub.subscribe(resume_from=2)
            hub.close()
            replayed = await _collect(resumed)
            return published, resumed, replayed

        published, resumed, replayed = asyncio.run(run())
        assert resumed.pending_gap is None
        assert [s.timestamp for s in replayed] == [
            s.timestamp for s in published[3:]
        ]
        assert resumed.last_seq == 5
        assert hub.resumed_subscriptions == 1
        assert hub.gapped_resumes == 0

    def test_resume_past_the_ring_signals_a_gap(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix, replay=2)

        async def run():
            self._publish(hub, matrix, 300, 600)  # seqs 0..5, ring holds 4, 5
            resumed = hub.subscribe(resume_from=0)
            hub.close()
            replayed = await _collect(resumed)
            return resumed, replayed

        resumed, replayed = asyncio.run(run())
        assert resumed.pending_gap is not None
        assert resumed.pending_gap["missed"] == 3  # seqs 1, 2, 3 aged out
        assert resumed.pending_gap["next_seq"] == 4
        assert len(replayed) == 2  # seqs 4, 5 from the ring
        assert hub.gapped_resumes == 1

    def test_resume_beyond_live_seq_means_restart(self, small_matrix):
        """A resume token from a previous hub life yields a restart gap."""
        import asyncio

        hub, matrix = self._hub(small_matrix)

        async def run():
            self._publish(hub, matrix, 300, 400)  # seqs 0, 1
            resumed = hub.subscribe(resume_from=57)
            hub.close()
            replayed = await _collect(resumed)
            return resumed, replayed

        resumed, replayed = asyncio.run(run())
        assert resumed.pending_gap is not None
        assert resumed.pending_gap["missed"] is None
        assert "restarted" in resumed.pending_gap["reason"]
        assert replayed == []

    def test_resume_at_the_live_edge_replays_nothing(self, small_matrix):
        import asyncio

        hub, matrix = self._hub(small_matrix)

        async def run():
            self._publish(hub, matrix, 300, 400)  # seqs 0, 1
            resumed = hub.subscribe(resume_from=1)
            more = self._publish(hub, matrix, 400, 450)  # seq 2
            hub.close()
            replayed = await _collect(resumed)
            return more, resumed, replayed

        more, resumed, replayed = asyncio.run(run())
        assert resumed.pending_gap is None
        assert [s.timestamp for s in replayed] == [more[0].timestamp]
        assert resumed.last_seq == 2

    def test_replay_capacity_and_validation(self, small_matrix):
        from repro.exceptions import DataError

        hub, _ = self._hub(small_matrix, replay=16)
        assert hub.replay_capacity == 16
        assert hub.last_seq == -1
        with pytest.raises((StreamError, DataError)):
            hub.subscribe(resume_from=-1)


async def _collect(subscription):
    return [snapshot async for snapshot in subscription]


async def _drain(subscription):
    async for _snapshot in subscription:
        pass
