"""Tests for repro.storage.live (durable real-time operation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.realtime import TsubasaRealtime
from repro.exceptions import StreamError
from repro.storage.live import PersistentRealtime
from repro.storage.memory import MemorySketchStore
from repro.storage.serialize import load_sketch
from repro.storage.sqlite_store import SqliteSketchStore


@pytest.fixture()
def stream_data(rng):
    base = rng.normal(size=(2, 700))
    mix = rng.normal(size=(8, 2))
    return mix @ base + 0.4 * rng.normal(size=(8, 700))


class TestBootstrapAndIngest:
    def test_seed_windows_persisted(self, stream_data):
        store = MemorySketchStore()
        live = PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
        assert live.windows_persisted == 6

    def test_streamed_windows_appended(self, stream_data):
        store = MemorySketchStore()
        live = PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
        slides = live.ingest(stream_data[:, 300:470])
        assert slides == 3
        assert live.windows_persisted == 9  # 6 seed + 3 streamed

    def test_partial_batches_not_persisted_early(self, stream_data):
        store = MemorySketchStore()
        live = PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
        live.ingest(stream_data[:, 300:330])  # 30 < B
        assert live.windows_persisted == 6
        live.ingest(stream_data[:, 330:350])  # completes one window
        assert live.windows_persisted == 7

    def test_persisted_records_match_offline_sketch(self, stream_data):
        from repro.core.sketch import build_sketch

        store = MemorySketchStore()
        live = PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
        live.ingest(stream_data[:, 300:500])
        stored = load_sketch(store)
        offline = build_sketch(stream_data[:, :500], 50)
        np.testing.assert_allclose(stored.means, offline.means, atol=1e-12)
        np.testing.assert_allclose(stored.covs, offline.covs, atol=1e-12)

    def test_network_still_exact(self, stream_data):
        store = MemorySketchStore()
        live = PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
        live.ingest(stream_data[:, 300:600])
        ref = np.corrcoef(stream_data[:, 300:600])
        np.testing.assert_allclose(
            live.correlation_matrix().values, ref, atol=1e-9
        )
        assert live.network(0.5).n_nodes == 8


class TestResume:
    def test_resume_matches_original_process(self, stream_data, tmp_path):
        path = tmp_path / "live.db"
        with SqliteSketchStore(path) as store:
            live = PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
            live.ingest(stream_data[:, 300:500])
            before_crash = live.correlation_matrix().values

        # "New process": resume purely from disk.
        with SqliteSketchStore(path) as store:
            resumed = PersistentRealtime.resume(store, query_windows=6)
            np.testing.assert_allclose(
                resumed.correlation_matrix().values, before_crash, atol=1e-12
            )
            # And keep streaming seamlessly.
            resumed.ingest(stream_data[:, 500:700])
            ref = np.corrcoef(stream_data[:, 400:700])
            np.testing.assert_allclose(
                resumed.correlation_matrix().values, ref, atol=1e-9
            )
            assert resumed.windows_persisted == 14

    def test_resume_rejects_short_store(self, stream_data, tmp_path):
        with SqliteSketchStore(tmp_path / "short.db") as store:
            PersistentRealtime.bootstrap(stream_data[:, :100], 50, store)
            with pytest.raises(StreamError):
                PersistentRealtime.resume(store, query_windows=10)


class TestMetadataGuards:
    def test_mismatched_names_rejected(self, stream_data):
        store = MemorySketchStore()
        PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
        other = TsubasaRealtime(
            stream_data[:, :300], 50,
            names=[f"other{i}" for i in range(8)],
        )
        with pytest.raises(StreamError):
            PersistentRealtime(other, store)

    def test_mismatched_window_size_rejected(self, stream_data):
        store = MemorySketchStore()
        PersistentRealtime.bootstrap(stream_data[:, :300], 50, store)
        other = TsubasaRealtime(stream_data[:, :300], 100)
        with pytest.raises(StreamError):
            PersistentRealtime(other, store)
