"""Tests for repro.engine.providers (pluggable sketch backends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import TsubasaHistorical
from repro.core.realtime import TsubasaRealtime
from repro.core.sketch import build_sketch
from repro.engine.providers import (
    ChunkedBuildProvider,
    InMemoryProvider,
    MmapProvider,
    SketchProvider,
    StoreProvider,
    _LruRecordCache,
)
from repro.exceptions import DataError, SketchError, StorageError
from repro.parallel.executor import parallel_query, parallel_sketch
from repro.storage.memory import MemorySketchStore
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import load_sketch, save_sketch
from repro.storage.sqlite_store import SqliteSketchStore
from repro.streams.ingestion import StreamIngestor


@pytest.fixture()
def sqlite_store(small_sketch, tmp_path):
    """An on-disk SQLite store holding the small sketch (12 windows, B=50)."""
    store = SqliteSketchStore(tmp_path / "prov.db")
    save_sketch(store, small_sketch)
    yield store
    store.close()


@pytest.fixture()
def memory_store(small_sketch):
    store = MemorySketchStore()
    save_sketch(store, small_sketch)
    return store


@pytest.fixture()
def mmap_dir(small_sketch, tmp_path):
    """An mmap store directory holding the small sketch (12 windows, B=50)."""
    path = tmp_path / "prov.mm"
    with MmapStore(path) as store:
        save_sketch(store, small_sketch)
    return path


def _forbid_materialize(provider):
    """Make any materialize() call fail the test (fan-out must not do it)."""

    def boom(indices=None):
        raise AssertionError("provider.materialize() called before fan-out")

    provider.materialize = boom
    return provider


class TestInMemoryProvider:
    def test_metadata(self, small_sketch):
        provider = InMemoryProvider(small_sketch)
        assert provider.n_series == 20
        assert provider.n_windows == 12
        assert provider.window_size == 50
        assert provider.length == 600
        assert not provider.has_raw_data

    def test_window_stats_and_covs(self, small_sketch):
        provider = InMemoryProvider(small_sketch)
        idx = np.array([2, 5, 7])
        means, stds, sizes = provider.window_stats(idx)
        np.testing.assert_array_equal(means, small_sketch.means[:, idx])
        np.testing.assert_array_equal(stds, small_sketch.stds[:, idx])
        np.testing.assert_array_equal(sizes, small_sketch.sizes[idx])
        np.testing.assert_array_equal(provider.covs(idx), small_sketch.covs[idx])

    def test_cov_chunking_covers_selection(self, small_sketch):
        provider = InMemoryProvider(small_sketch)
        idx = np.arange(12)
        chunks = list(provider.iter_cov_chunks(idx, chunk_windows=5))
        assert [c.shape[0] for c in chunks] == [5, 5, 2]
        np.testing.assert_array_equal(
            np.concatenate(chunks, axis=0), small_sketch.covs
        )

    def test_rejects_mismatched_raw_data(self, small_sketch, rng):
        with pytest.raises(DataError):
            InMemoryProvider(small_sketch, data=rng.normal(size=(20, 599)))

    def test_rejects_out_of_range_windows(self, small_sketch):
        provider = InMemoryProvider(small_sketch)
        with pytest.raises(SketchError):
            provider.window_stats(np.array([12]))

    def test_materialize_returns_wrapped_sketch(self, small_sketch):
        provider = InMemoryProvider(small_sketch)
        assert provider.materialize() is small_sketch
        subset = provider.materialize(np.array([0, 3]))
        np.testing.assert_array_equal(subset.covs, small_sketch.covs[[0, 3]])


class TestStoreProvider:
    def test_metadata_without_scanning(self, sqlite_store, small_sketch):
        provider = StoreProvider(sqlite_store)
        assert provider.names == small_sketch.names
        assert provider.n_windows == 12
        assert provider.length == 600
        np.testing.assert_array_equal(provider.sizes, small_sketch.sizes)

    def test_trailing_short_window_sizes(self, tmp_path, rng):
        data = rng.normal(size=(5, 130))  # 2 full windows of 50 + tail of 30
        sketch = build_sketch(data, window_size=50)
        with SqliteSketchStore(tmp_path / "tail.db") as store:
            save_sketch(store, sketch)
            provider = StoreProvider(store)
            np.testing.assert_array_equal(provider.sizes, [50, 50, 30])
            assert provider.length == 130

    def test_window_stats_match_sketch(self, sqlite_store, small_sketch):
        provider = StoreProvider(sqlite_store)
        idx = np.array([1, 4, 9])
        means, stds, sizes = provider.window_stats(idx)
        np.testing.assert_allclose(means, small_sketch.means[:, idx])
        np.testing.assert_allclose(stds, small_sketch.stds[:, idx])
        np.testing.assert_array_equal(sizes, small_sketch.sizes[idx])

    def test_cov_rows_match_sketch(self, sqlite_store, small_sketch):
        provider = StoreProvider(sqlite_store)
        idx = np.arange(6)
        rows = np.array([0, 7, 19])
        block = provider.cov_rows(idx, rows)
        np.testing.assert_allclose(block, small_sketch.covs[idx][:, rows, :])

    def test_lru_cache_hits_and_bound(self, sqlite_store):
        provider = StoreProvider(sqlite_store, cache_windows=4, read_batch=2)
        idx = np.arange(12)
        provider.window_stats(idx)
        assert provider.cache_misses == 12
        assert provider.windows_read == 12
        # A second pass over the last cached windows hits the cache.
        provider.window_stats(np.arange(8, 12))
        assert provider.cache_hits == 4
        assert provider.windows_read == 12
        # Evicted windows are re-read.
        provider.window_stats(np.arange(0, 4))
        assert provider.windows_read == 16

    def test_cache_disabled(self, sqlite_store):
        provider = StoreProvider(sqlite_store, cache_windows=0)
        provider.window_stats(np.arange(4))
        provider.window_stats(np.arange(4))
        assert provider.cache_hits == 0
        assert provider.windows_read == 8

    def test_rejects_approx_store(self, small_matrix, tmp_path):
        from repro.approx.sketch import build_approx_sketch
        from repro.storage.serialize import save_approx_sketch

        approx = build_approx_sketch(small_matrix, 50, coeff_fraction=0.5)
        with SqliteSketchStore(tmp_path / "approx.db") as store:
            save_approx_sketch(store, approx)
            with pytest.raises(StorageError):
                StoreProvider(store)

    def test_rejects_empty_store(self, tmp_path):
        from repro.storage.base import StoreMetadata

        with SqliteSketchStore(tmp_path / "empty.db") as store:
            store.write_metadata(StoreMetadata(names=("a",), window_size=10))
            with pytest.raises(StorageError):
                StoreProvider(store)

    def test_memory_store_backend(self, memory_store, small_sketch):
        provider = StoreProvider(memory_store)
        engine = TsubasaHistorical(provider=provider)
        reference = TsubasaHistorical(provider=InMemoryProvider(small_sketch))
        got = engine.correlation_matrix((599, 600))
        want = reference.correlation_matrix((599, 600))
        np.testing.assert_allclose(got.values, want.values, atol=1e-12)


class TestStoreBackedEngine:
    """The acceptance path: TsubasaHistorical(provider=StoreProvider(...))."""

    def test_aligned_query_matches_in_memory_engine(
        self, sqlite_store, small_matrix
    ):
        engine = TsubasaHistorical(
            provider=StoreProvider(sqlite_store), chunk_windows=3
        )
        reference = TsubasaHistorical(small_matrix, window_size=50)
        got = engine.correlation_matrix((599, 300))
        want = reference.correlation_matrix((599, 300))
        np.testing.assert_allclose(got.values, want.values, atol=1e-10)

    @pytest.mark.parametrize(
        "end,length",
        [(599, 73), (523, 317), (101, 51), (570, 491), (49, 30)],
    )
    def test_arbitrary_query_with_raw_data(self, sqlite_store, small_matrix, end, length):
        """Store-backed arbitrary windows: head/tail fragments from raw data."""
        provider = StoreProvider(sqlite_store, data=small_matrix)
        engine = TsubasaHistorical(provider=provider, chunk_windows=4)
        reference = TsubasaHistorical(small_matrix, window_size=50)
        got = engine.correlation_matrix((end, length))
        want = reference.correlation_matrix((end, length))
        np.testing.assert_allclose(got.values, want.values, atol=1e-10)
        expected = np.corrcoef(small_matrix[:, end - length + 1 : end + 1])
        np.testing.assert_allclose(got.values, expected, atol=1e-9)

    def test_arbitrary_query_without_raw_data_raises(self, sqlite_store):
        """The keep_raw=False contract: sketch-only stores are aligned-only."""
        engine = TsubasaHistorical(provider=StoreProvider(sqlite_store))
        with pytest.raises(SketchError, match="not aligned"):
            engine.correlation_matrix((599, 123))

    def test_query_never_loads_full_tensor(self, sqlite_store):
        """With a small chunk size and cache, peak resident windows stay bounded."""
        provider = StoreProvider(sqlite_store, cache_windows=2, read_batch=2)
        engine = TsubasaHistorical(provider=provider, chunk_windows=2)
        engine.correlation_matrix((599, 600))
        # Each of the 12 windows was read from the store exactly once (one
        # record pass feeds both stats and covariances) and never all held
        # at once — the cache kept <= 2.
        assert provider.windows_read == 12
        assert len(provider._cache) <= 2

    def test_repeated_indices_read_once(self, sqlite_store):
        provider = StoreProvider(sqlite_store, cache_windows=0)
        provider.cov_rows(np.array([3, 3, 3]), np.array([0]))
        assert provider.windows_read == 1

    def test_pruned_network_off_store(self, sqlite_store, small_matrix):
        engine = TsubasaHistorical(provider=StoreProvider(sqlite_store))
        reference = TsubasaHistorical(small_matrix, window_size=50)
        theta = 0.4
        result = engine.network_pruned((599, 600), theta)
        exact = reference.correlation_matrix((599, 600)).values > theta
        np.fill_diagonal(exact, False)
        np.testing.assert_array_equal(result.matrix, exact)

    def test_network_construction(self, sqlite_store, small_matrix):
        engine = TsubasaHistorical(provider=StoreProvider(sqlite_store))
        reference = TsubasaHistorical(small_matrix, window_size=50)
        got = engine.network((599, 400), theta=0.5)
        want = reference.network((599, 400), theta=0.5)
        assert got.edge_set() == want.edge_set()


class TestLruRecordCache:
    def test_capacity_zero_never_stores(self):
        cache = _LruRecordCache(0)
        cache.put(1, "a")
        cache.put(2, "b")
        assert len(cache) == 0
        assert cache.get(1) is None
        assert cache.get(2) is None
        assert cache.hits == 0
        assert cache.misses == 2

    def test_capacity_none_is_unbounded(self):
        cache = _LruRecordCache(None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000
        assert cache.get(0) == 0
        assert cache.get(999) == 999

    def test_eviction_is_least_recently_used(self):
        cache = _LruRecordCache(2)
        cache.put(1, "a")
        cache.put(2, "b")
        assert cache.get(1) == "a"  # refresh 1; 2 is now LRU
        cache.put(3, "c")
        assert cache.get(2) is None  # evicted
        assert cache.get(1) == "a"
        assert cache.get(3) == "c"

    def test_put_refreshes_recency(self):
        cache = _LruRecordCache(2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.put(1, "a2")  # re-put refreshes 1; 2 is now LRU
        cache.put(3, "c")
        assert cache.get(1) == "a2"
        assert cache.get(2) is None

    def test_rejects_negative_capacity(self):
        with pytest.raises(DataError):
            _LruRecordCache(-1)

    def test_hit_miss_counters(self):
        cache = _LruRecordCache(4)
        cache.put(1, "a")
        cache.get(1)
        cache.get(1)
        cache.get(9)
        assert cache.hits == 2
        assert cache.misses == 1


class TestMmapProvider:
    def test_metadata(self, mmap_dir, small_sketch):
        provider = MmapProvider(mmap_dir)
        assert provider.names == small_sketch.names
        assert provider.n_series == 20
        assert provider.n_windows == 12
        assert provider.window_size == 50
        assert provider.length == 600
        assert not provider.has_raw_data
        assert provider.path == str(mmap_dir)

    def test_window_stats_and_covs_bit_equal(self, mmap_dir, small_sketch):
        provider = MmapProvider(mmap_dir)
        idx = np.array([2, 5, 7])
        means, stds, sizes = provider.window_stats(idx)
        np.testing.assert_array_equal(means, small_sketch.means[:, idx])
        np.testing.assert_array_equal(stds, small_sketch.stds[:, idx])
        np.testing.assert_array_equal(sizes, small_sketch.sizes[idx])
        np.testing.assert_array_equal(provider.covs(idx), small_sketch.covs[idx])

    def test_contiguous_selection_is_zero_copy(self, mmap_dir):
        provider = MmapProvider(mmap_dir)
        covs = provider.covs(np.arange(3, 9))
        # A contiguous selection is a view over the mapping: no copy at all.
        assert not covs.flags.owndata
        assert not covs.flags.writeable
        assert np.shares_memory(covs, provider.covs(np.arange(12)))
        means, stds, _ = provider.window_stats(np.arange(3, 9))
        assert not means.flags.owndata
        assert not stds.flags.owndata

    def test_chunks_share_store_memory(self, mmap_dir):
        provider = MmapProvider(mmap_dir)
        chunks = list(provider.iter_cov_chunks(np.arange(12), chunk_windows=5))
        assert [c.shape[0] for c in chunks] == [5, 5, 2]
        full = provider.covs(np.arange(12))
        for chunk in chunks:
            assert np.shares_memory(chunk, full)

    def test_non_contiguous_selection(self, mmap_dir, small_sketch):
        provider = MmapProvider(mmap_dir)
        idx = np.array([9, 1, 4])  # out of order: fancy-index fallback
        np.testing.assert_array_equal(provider.covs(idx), small_sketch.covs[idx])
        means, _, sizes = provider.window_stats(idx)
        np.testing.assert_array_equal(means, small_sketch.means[:, idx])
        np.testing.assert_array_equal(sizes, small_sketch.sizes[idx])

    def test_cov_rows(self, mmap_dir, small_sketch):
        provider = MmapProvider(mmap_dir)
        idx = np.arange(6)
        rows = np.array([0, 7, 19])
        np.testing.assert_array_equal(
            provider.cov_rows(idx, rows), small_sketch.covs[idx][:, rows, :]
        )

    def test_rejects_out_of_range_windows(self, mmap_dir):
        provider = MmapProvider(mmap_dir)
        with pytest.raises(SketchError):
            provider.window_stats(np.array([12]))

    def test_rejects_incomplete_store(self, tmp_path):
        from repro.storage.base import WindowRecord

        with MmapStore(tmp_path / "holes") as store:
            from repro.storage.base import StoreMetadata

            store.write_metadata(
                StoreMetadata(names=("a", "b"), window_size=10)
            )
            store.write_windows(
                [WindowRecord(index=3, means=np.zeros(2), stds=np.ones(2),
                              pairs=np.eye(2), size=10)]
            )
            with pytest.raises(StorageError, match="incomplete"):
                MmapProvider(store)

    def test_rejects_approx_store(self, small_matrix, tmp_path):
        from repro.approx.sketch import build_approx_sketch
        from repro.storage.serialize import save_approx_sketch

        approx = build_approx_sketch(small_matrix, 50, coeff_fraction=0.5)
        with MmapStore(tmp_path / "approx.mm") as store:
            save_approx_sketch(store, approx)
        with pytest.raises(StorageError, match="approx"):
            MmapProvider(tmp_path / "approx.mm")

    def test_rejects_mismatched_raw_data(self, mmap_dir, rng):
        with pytest.raises(DataError):
            MmapProvider(mmap_dir, data=rng.normal(size=(20, 599)))

    def test_engine_aligned_query_bit_identical(self, mmap_dir, small_sketch):
        engine = TsubasaHistorical(provider=MmapProvider(mmap_dir))
        reference = TsubasaHistorical(provider=InMemoryProvider(small_sketch))
        got = engine.correlation_matrix((599, 300))
        want = reference.correlation_matrix((599, 300))
        np.testing.assert_array_equal(got.values, want.values)

    @pytest.mark.parametrize(
        "end,length",
        [(599, 73), (523, 317), (101, 51), (570, 491), (49, 30)],
    )
    def test_fragment_queries_bit_identical(
        self, mmap_dir, small_sketch, small_matrix, end, length
    ):
        """Arbitrary windows (head/tail fragments) match InMemoryProvider
        bit-for-bit, not just to tolerance."""
        provider = MmapProvider(mmap_dir, data=small_matrix)
        engine = TsubasaHistorical(provider=provider)
        reference = TsubasaHistorical(
            provider=InMemoryProvider(small_sketch, data=small_matrix)
        )
        got = engine.correlation_matrix((end, length))
        want = reference.correlation_matrix((end, length))
        np.testing.assert_array_equal(got.values, want.values)

    def test_fragment_without_raw_data_raises(self, mmap_dir):
        engine = TsubasaHistorical(provider=MmapProvider(mmap_dir))
        with pytest.raises(SketchError, match="not aligned"):
            engine.correlation_matrix((599, 123))


class TestProvidersBitIdentical:
    """Acceptance: memory / sqlite / mmap agree bit-for-bit, not approximately."""

    @pytest.mark.parametrize("query", [(599, 600), (599, 300), (549, 250)])
    def test_aligned_queries(
        self, small_sketch, sqlite_store, mmap_dir, query
    ):
        reference = TsubasaHistorical(
            provider=InMemoryProvider(small_sketch)
        ).correlation_matrix(query).values
        via_sqlite = TsubasaHistorical(
            provider=StoreProvider(sqlite_store)
        ).correlation_matrix(query).values
        via_mmap = TsubasaHistorical(
            provider=MmapProvider(mmap_dir)
        ).correlation_matrix(query).values
        np.testing.assert_array_equal(via_sqlite, reference)
        np.testing.assert_array_equal(via_mmap, reference)

    def test_arbitrary_window(
        self, small_sketch, small_matrix, sqlite_store, mmap_dir
    ):
        query = (523, 317)
        reference = TsubasaHistorical(
            provider=InMemoryProvider(small_sketch, data=small_matrix)
        ).correlation_matrix(query).values
        via_sqlite = TsubasaHistorical(
            provider=StoreProvider(sqlite_store, data=small_matrix)
        ).correlation_matrix(query).values
        via_mmap = TsubasaHistorical(
            provider=MmapProvider(mmap_dir, data=small_matrix)
        ).correlation_matrix(query).values
        np.testing.assert_array_equal(via_sqlite, reference)
        np.testing.assert_array_equal(via_mmap, reference)


class TestChunkedBuildProvider:
    def test_covs_match_full_build(self, small_matrix, small_sketch):
        provider = ChunkedBuildProvider(small_matrix, 50, chunk_rows=7)
        idx = np.arange(12)
        np.testing.assert_allclose(
            provider.covs(idx), small_sketch.covs, atol=1e-12
        )
        means, stds, sizes = provider.window_stats(idx)
        np.testing.assert_allclose(means, small_sketch.means)
        np.testing.assert_allclose(stds, small_sketch.stds)

    def test_engine_queries_match(self, small_matrix):
        provider = ChunkedBuildProvider(small_matrix, 50, chunk_rows=6)
        engine = TsubasaHistorical(provider=provider)
        reference = TsubasaHistorical(small_matrix, window_size=50)
        for query in [(599, 600), (599, 200), (523, 317)]:
            got = engine.correlation_matrix(query)
            want = reference.correlation_matrix(query)
            np.testing.assert_allclose(got.values, want.values, atol=1e-10)

    def test_cov_cache(self, small_matrix):
        provider = ChunkedBuildProvider(
            small_matrix, 50, chunk_rows=8, cache_windows=4
        )
        provider.covs(np.array([0, 1]))
        assert provider.cache_misses == 2
        provider.covs(np.array([0, 1]))
        assert provider.cache_hits == 2

    def test_save_to_matches_save_sketch(self, small_matrix, small_sketch):
        provider = ChunkedBuildProvider(small_matrix, 50, chunk_rows=9)
        streamed = MemorySketchStore()
        provider.save_to(streamed, batch_size=5)
        loaded = load_sketch(streamed)
        np.testing.assert_allclose(loaded.means, small_sketch.means)
        np.testing.assert_allclose(loaded.covs, small_sketch.covs, atol=1e-12)
        np.testing.assert_array_equal(loaded.sizes, small_sketch.sizes)

    def test_rejects_bad_args(self, small_matrix, rng):
        with pytest.raises(DataError):
            ChunkedBuildProvider(rng.normal(size=100), 10)
        with pytest.raises(DataError):
            ChunkedBuildProvider(small_matrix, 50, chunk_rows=0)
        with pytest.raises(DataError):
            ChunkedBuildProvider(small_matrix, 50, names=["too", "few"])


class TestProviderParallelQuery:
    def test_store_provider_runs_disk_based(self, small_matrix, tmp_path):
        path = tmp_path / "pq.db"
        parallel_sketch(small_matrix, 50, n_workers=1, store_path=path)
        with SqliteSketchStore(path) as store:
            provider = _forbid_materialize(StoreProvider(store))
            result = parallel_query(np.arange(12), n_workers=2, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )
        assert result.read_seconds > 0.0

    def test_in_memory_provider_fans_out_via_shared_memory(
        self, small_sketch, small_matrix
    ):
        """No pre-fan-out materialize(): the selection's covariances travel
        through one shared-memory block, never a pickled Sketch."""
        provider = _forbid_materialize(InMemoryProvider(small_sketch))
        result = parallel_query(np.arange(6, 12), n_workers=2, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix[:, 300:]), atol=1e-10
        )
        assert result.worker_read_seconds == [0.0] * result.n_partitions

    def test_mmap_provider_fans_out_via_path(self, small_matrix, mmap_dir):
        provider = _forbid_materialize(MmapProvider(mmap_dir))
        result = parallel_query(np.arange(12), n_workers=3, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )
        # Workers re-mmap and read in their own processes.
        assert result.read_seconds > 0.0

    def test_mmap_provider_serial(self, small_matrix, mmap_dir):
        provider = _forbid_materialize(MmapProvider(mmap_dir))
        result = parallel_query(np.arange(12), n_workers=1, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )
        assert result.n_partitions == 1

    def test_serial_store_provider_uses_open_provider(self, sqlite_store, small_matrix):
        """n_workers=1 reads through the provider in hand (LRU and all)
        instead of re-opening the store via the worker handoff."""
        provider = StoreProvider(sqlite_store, cache_windows=None)
        result = parallel_query(np.arange(12), n_workers=1, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )
        assert provider.windows_read == 12  # the reads went through it
        parallel_query(np.arange(12), n_workers=1, provider=provider)
        assert provider.windows_read == 12  # second call served by its LRU

    def test_chunked_build_provider_fans_out(self, small_matrix):
        provider = _forbid_materialize(
            ChunkedBuildProvider(small_matrix, 50, chunk_rows=8)
        )
        result = parallel_query(np.arange(12), n_workers=2, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )

    def test_memory_backed_store_provider_fans_out(self, memory_store, small_matrix):
        """A store with no filesystem path still fans out (shared memory)."""
        provider = _forbid_materialize(StoreProvider(memory_store))
        result = parallel_query(np.arange(12), n_workers=2, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )

    def test_store_provider_over_mmap_store_fans_out(self, mmap_dir, small_matrix):
        """A StoreProvider wrapping an MmapStore must get the mmap handoff,
        not be mistaken for SQLite because its store exposes a .path."""
        with MmapStore(mmap_dir) as store:
            provider = _forbid_materialize(StoreProvider(store))
            result = parallel_query(np.arange(12), n_workers=2, provider=provider)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )

    def test_parallel_matches_all_backends(
        self, small_sketch, small_matrix, sqlite_store, mmap_dir
    ):
        window_indices = np.arange(4, 10)
        expected = parallel_query(
            window_indices, n_workers=2, provider=InMemoryProvider(small_sketch)
        ).matrix
        via_sqlite = parallel_query(
            window_indices, n_workers=2, provider=StoreProvider(sqlite_store)
        ).matrix
        via_mmap = parallel_query(
            window_indices, n_workers=2, provider=MmapProvider(mmap_dir)
        ).matrix
        np.testing.assert_allclose(via_sqlite, expected, atol=1e-12)
        np.testing.assert_allclose(via_mmap, expected, atol=1e-12)

    def test_rejects_provider_plus_sketch(self, small_sketch):
        with pytest.raises(DataError):
            parallel_query(
                np.arange(12),
                n_workers=1,
                sketch=small_sketch,
                provider=InMemoryProvider(small_sketch),
            )


class TestRealtimeFromProvider:
    def test_warm_start_equals_streamed_engine(self, small_matrix):
        streamed = TsubasaRealtime(small_matrix[:, :400], window_size=50)
        sketch = build_sketch(small_matrix[:, :400], window_size=50)
        warm = TsubasaRealtime.from_provider(InMemoryProvider(sketch))
        np.testing.assert_allclose(
            warm.correlation_matrix().values,
            streamed.correlation_matrix().values,
            atol=1e-10,
        )
        assert warm.now == streamed.now

    def test_trailing_window_selection(self, small_matrix, sqlite_store):
        provider = StoreProvider(sqlite_store)
        warm = TsubasaRealtime.from_provider(provider, query_windows=4)
        np.testing.assert_allclose(
            warm.correlation_matrix().values,
            np.corrcoef(small_matrix[:, 400:600]),
            atol=1e-10,
        )
        assert warm.now == 600

    def test_continues_streaming(self, small_matrix, tmp_path):
        sketch = build_sketch(small_matrix[:, :400], window_size=50)
        warm = TsubasaRealtime.from_provider(InMemoryProvider(sketch), 8)
        warm.ingest(small_matrix[:, 400:500])
        reference = TsubasaRealtime(small_matrix[:, :400], window_size=50)
        reference.ingest(small_matrix[:, 400:500])
        np.testing.assert_allclose(
            warm.correlation_matrix().values,
            reference.correlation_matrix().values,
            atol=1e-10,
        )

    def test_rejects_partial_trailing_window(self, rng, tmp_path):
        data = rng.normal(size=(4, 130))
        sketch = build_sketch(data, window_size=50)  # trailing window of 30
        from repro.exceptions import StreamError

        with pytest.raises(StreamError):
            TsubasaRealtime.from_provider(InMemoryProvider(sketch))

    def test_ingestor_from_provider(self, small_matrix, sqlite_store):
        ingestor = StreamIngestor.from_provider(
            StoreProvider(sqlite_store), query_windows=6, theta=0.4
        )
        assert ingestor.engine.now == 600
        extra = np.tile(small_matrix[:, -50:], (1, 2))
        snapshots = ingestor.push(extra)
        assert len(snapshots) == 2


class TestProviderAbstraction:
    def test_engine_rejects_provider_plus_data(self, small_matrix, small_sketch):
        with pytest.raises(DataError):
            TsubasaHistorical(
                small_matrix, 50, provider=InMemoryProvider(small_sketch)
            )

    def test_engine_rejects_provider_plus_keep_raw(self, small_sketch):
        with pytest.raises(DataError):
            TsubasaHistorical(
                provider=InMemoryProvider(small_sketch), keep_raw=False
            )

    def test_engine_requires_some_source(self):
        with pytest.raises(DataError):
            TsubasaHistorical()

    def test_providers_share_interface(
        self, small_matrix, small_sketch, sqlite_store, mmap_dir
    ):
        providers: list[SketchProvider] = [
            InMemoryProvider(small_sketch),
            StoreProvider(sqlite_store),
            ChunkedBuildProvider(small_matrix, 50),
            MmapProvider(mmap_dir),
        ]
        idx = np.array([3, 8])
        reference = small_sketch.covs[idx]
        for provider in providers:
            assert provider.plan.n_windows == 12
            np.testing.assert_allclose(provider.covs(idx), reference, atol=1e-12)

    def test_materialize_roundtrip(self, sqlite_store, small_sketch):
        materialized = StoreProvider(sqlite_store).materialize()
        np.testing.assert_allclose(materialized.covs, small_sketch.covs)
        np.testing.assert_array_equal(materialized.sizes, small_sketch.sizes)
        assert materialized.names == small_sketch.names
