"""Tests for the TsubasaClient facade (repro.api.client).

The acceptance bar: every existing engine/CLI query path routed through
QuerySpec/TsubasaClient produces *bit-identical* output, across every sketch
backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.client import (
    AutoPolicy,
    ParallelPolicy,
    SerialPolicy,
    TsubasaClient,
)
from repro.api.spec import QuerySpec, WindowSpec
from repro.approx.sketch import build_approx_sketch
from repro.core.exact import query_correlation_matrix
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.queries import (
    degree_at_threshold,
    most_anticorrelated_pairs,
    neighbors,
    pairs_in_range,
    top_k_pairs,
)
from repro.core.segmentation import QueryWindow
from repro.core.sketch import build_sketch
from repro.engine.providers import (
    ChunkedBuildProvider,
    InMemoryProvider,
    MmapProvider,
    StoreProvider,
)
from repro.exceptions import DataError, SketchError
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch
from repro.storage.sqlite_store import SqliteSketchStore

B = 50
ALIGNED = WindowSpec(end=599, length=200)
ARBITRARY = WindowSpec(end=587, length=173)
EARLIER = WindowSpec(end=399, length=200)


@pytest.fixture(scope="module")
def data(request):
    from repro.data.synthetic import generate_station_dataset

    return generate_station_dataset(n_stations=16, n_points=600, seed=3).values


@pytest.fixture(scope="module")
def sketch(data):
    return build_sketch(data, B)


@pytest.fixture(scope="module")
def reference(sketch, data):
    """The pre-API ground truth: the functional Lemma-1 query path."""
    provider = InMemoryProvider(sketch, data=data)

    def matrix(window: WindowSpec) -> np.ndarray:
        query = window.resolve(provider.plan)
        selection = provider.plan.align(query)
        return query_correlation_matrix(provider, selection)

    return matrix


def make_provider(backend: str, sketch, data, tmp_path):
    if backend == "memory":
        return InMemoryProvider(sketch, data=data)
    if backend == "store":
        store = SqliteSketchStore(tmp_path / "client.db")
        save_sketch(store, sketch)
        return StoreProvider(store, data=data)
    if backend == "mmap":
        with MmapStore(tmp_path / "client.mm") as store:
            save_sketch(store, sketch)
        return MmapProvider(tmp_path / "client.mm", data=data)
    if backend == "chunked":
        return ChunkedBuildProvider(data, B)
    raise AssertionError(backend)


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["memory", "store", "mmap", "chunked"])
    @pytest.mark.parametrize("window", [ALIGNED, ARBITRARY])
    def test_matrix_identical_across_backends(
        self, backend, window, sketch, data, reference, tmp_path
    ):
        client = TsubasaClient(
            provider=make_provider(backend, sketch, data, tmp_path)
        )
        result = client.execute(QuerySpec(op="matrix", window=window))
        if backend == "chunked":
            # The on-demand build computes covariances by row blocks; it is
            # numerically equal, not bit-identical (same contract as the
            # provider suite).
            np.testing.assert_allclose(
                result.value.values, reference(window), atol=1e-10
            )
        else:
            np.testing.assert_array_equal(result.value.values, reference(window))
        assert result.provenance.backend == backend

    def test_engine_method_delegation_is_bit_identical(
        self, sketch, data, reference
    ):
        from repro.core.exact import TsubasaHistorical

        engine = TsubasaHistorical(provider=InMemoryProvider(sketch, data=data))
        for window in (ALIGNED, ARBITRARY):
            matrix = engine.correlation_matrix(
                QueryWindow(end=window.end, length=window.length)
            )
            np.testing.assert_array_equal(matrix.values, reference(window))

    def test_network_matches_manual_threshold(self, sketch, data, reference):
        client = TsubasaClient(provider=InMemoryProvider(sketch, data=data))
        result = client.execute(
            QuerySpec(op="network", window=ALIGNED, theta=0.4)
        )
        manual = ClimateNetwork.from_matrix(
            CorrelationMatrix(names=sketch.names, values=reference(ALIGNED)),
            0.4,
        )
        assert result.value.edge_set() == manual.edge_set()


class TestOperators:
    @pytest.fixture(scope="class")
    def client(self, sketch, data):
        return TsubasaClient(provider=InMemoryProvider(sketch, data=data))

    @pytest.fixture(scope="class")
    def matrix(self, client):
        return client.execute(QuerySpec(op="matrix", window=ALIGNED)).value

    def test_top_k(self, client, matrix):
        result = client.execute(QuerySpec(op="top_k", window=ALIGNED, k=5))
        assert result.value == top_k_pairs(matrix, 5)

    def test_anticorrelated(self, client, matrix):
        result = client.execute(
            QuerySpec(op="anticorrelated", window=ALIGNED, k=5)
        )
        assert result.value == most_anticorrelated_pairs(matrix, 5)

    def test_neighbors(self, client, matrix):
        name = matrix.names[0]
        result = client.execute(
            QuerySpec(op="neighbors", window=ALIGNED, node=name, theta=0.3)
        )
        assert result.value == neighbors(matrix, name, 0.3)

    def test_pairs_in_range(self, client, matrix):
        result = client.execute(
            QuerySpec(op="pairs_in_range", window=ALIGNED, low=0.2, high=0.5)
        )
        assert result.value == pairs_in_range(matrix, 0.2, 0.5)

    def test_degree(self, client, matrix):
        result = client.execute(
            QuerySpec(op="degree", window=ALIGNED, theta=0.4)
        )
        assert result.value == degree_at_threshold(matrix, 0.4)

    def test_diff_network(self, client):
        result = client.execute(
            QuerySpec(
                op="diff_network",
                window=ALIGNED,
                baseline=EARLIER,
                theta=0.4,
            )
        )
        current = client.execute(
            QuerySpec(op="network", window=ALIGNED, theta=0.4)
        ).value.edge_set()
        previous = client.execute(
            QuerySpec(op="network", window=EARLIER, theta=0.4)
        ).value.edge_set()
        appeared, disappeared = result.value
        assert appeared == current - previous
        assert disappeared == previous - current

    def test_payloads_are_json_compatible(self, client, matrix):
        import json

        specs = [
            QuerySpec(op="matrix", window=ALIGNED),
            QuerySpec(op="network", window=ALIGNED, theta=0.4),
            QuerySpec(op="top_k", window=ALIGNED, k=3),
            QuerySpec(op="neighbors", window=ALIGNED, node=matrix.names[0],
                      theta=0.3),
            QuerySpec(op="pairs_in_range", window=ALIGNED, low=0.1, high=0.3),
            QuerySpec(op="degree", window=ALIGNED, theta=0.4),
            QuerySpec(op="diff_network", window=ALIGNED, baseline=EARLIER,
                      theta=0.4),
        ]
        for result in client.execute_many(specs):
            json.dumps(result.payload())  # must not raise


class TestPolicies:
    def test_parallel_policy_matches_serial(self, sketch, data):
        serial = TsubasaClient(provider=InMemoryProvider(sketch))
        parallel = TsubasaClient(
            provider=InMemoryProvider(sketch), policy=ParallelPolicy(2)
        )
        spec = QuerySpec(op="matrix", window=ALIGNED)
        reference = serial.execute(spec)
        result = parallel.execute(spec)
        assert result.provenance.execution == "parallel"
        assert result.provenance.n_workers == 2
        np.testing.assert_allclose(
            result.value.values, reference.value.values, atol=1e-12
        )

    def test_parallel_policy_falls_back_serial_for_fragments(
        self, sketch, data
    ):
        client = TsubasaClient(
            provider=InMemoryProvider(sketch, data=data),
            policy=ParallelPolicy(2),
        )
        result = client.execute(QuerySpec(op="matrix", window=ARBITRARY))
        assert result.provenance.execution == "serial"

    def test_auto_policy_stays_serial_when_small(self, sketch):
        client = TsubasaClient(
            provider=InMemoryProvider(sketch), policy=AutoPolicy(n_workers=2)
        )
        result = client.execute(QuerySpec(op="matrix", window=ALIGNED))
        assert result.provenance.execution == "serial"

    def test_auto_policy_goes_parallel_when_large(self, sketch):
        client = TsubasaClient(
            provider=InMemoryProvider(sketch),
            policy=AutoPolicy(n_workers=2, min_cells=1),
        )
        result = client.execute(QuerySpec(op="matrix", window=ALIGNED))
        assert result.provenance.execution == "parallel"

    def test_serial_policy_is_default(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        assert isinstance(client._policy, SerialPolicy)


class TestExecuteMany:
    def test_shares_matrix_computations(self, sketch, data, tmp_path):
        provider = make_provider("store", sketch, data, tmp_path)
        client = TsubasaClient(provider=provider)
        reads_before = provider.windows_read
        results = client.execute_many(
            [
                QuerySpec(op="network", window=ALIGNED, theta=0.4),
                QuerySpec(op="top_k", window=ALIGNED, k=3),
                QuerySpec(op="degree", window=ALIGNED, theta=0.4),
            ]
        )
        # One matrix pass: 4 windows read once, not three times.
        assert provider.windows_read - reads_before == 4
        assert [r.provenance.coalesced for r in results] == [
            False, True, True
        ]

    def test_window_forms_coalesce(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        results = client.execute_many(
            [
                QuerySpec(op="matrix", window=WindowSpec(end=599, length=200)),
                QuerySpec(op="matrix", window=WindowSpec(start=400, stop=600)),
                QuerySpec(
                    op="matrix", window=WindowSpec(first_window=8, n_windows=4)
                ),
            ]
        )
        assert [r.provenance.coalesced for r in results] == [False, True, True]
        for result in results[1:]:
            np.testing.assert_array_equal(
                result.value.values, results[0].value.values
            )


class TestApproxEngine:
    def test_matches_approx_engine_methods(self, data):
        from repro.approx.network import TsubasaApproximate

        approx = build_approx_sketch(data, B, n_coeffs=8)
        engine = TsubasaApproximate(approx)
        client = TsubasaClient(approx_sketch=approx)
        for method in ("eq5", "average", "auto"):
            spec = QuerySpec(
                op="matrix", window=ALIGNED, engine="approx", method=method
            )
            np.testing.assert_array_equal(
                client.execute(spec).value.values,
                engine.correlation_matrix((599, 200), method=method).values,
            )

    def test_arbitrary_window_rejected(self, data):
        approx = build_approx_sketch(data, B, n_coeffs=8)
        client = TsubasaClient(approx_sketch=approx)
        with pytest.raises(SketchError, match="DFT-based"):
            client.execute(
                QuerySpec(op="matrix", window=ARBITRARY, engine="approx")
            )

    def test_default_method_coalesces_with_explicit_eq5(self, data):
        approx = build_approx_sketch(data, B, n_coeffs=8)
        client = TsubasaClient(approx_sketch=approx)
        results = client.execute_many(
            [
                QuerySpec(op="matrix", window=ALIGNED, engine="approx"),
                QuerySpec(op="matrix", window=ALIGNED, engine="approx",
                          method="eq5"),
            ]
        )
        # An omitted method runs eq5, so the two matrices are identical and
        # must share one computation.
        assert results[1].provenance.coalesced
        np.testing.assert_array_equal(
            results[0].value.values, results[1].value.values
        )

    def test_approx_without_sketch_rejected(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        with pytest.raises(DataError, match="approx"):
            client.execute(
                QuerySpec(op="matrix", window=ALIGNED, engine="approx")
            )


class TestValidation:
    def test_requires_some_backend(self):
        with pytest.raises(DataError):
            TsubasaClient()

    def test_rejects_non_provider(self, sketch):
        with pytest.raises(DataError):
            TsubasaClient(provider=sketch)

    def test_rejects_non_spec(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        with pytest.raises(DataError):
            client.execute({"op": "matrix"})

    def test_sketch_only_backend_rejects_fragments(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        with pytest.raises(SketchError, match="not aligned"):
            client.execute(QuerySpec(op="matrix", window=ARBITRARY))

    def test_data_override_enables_fragments(self, sketch, data, reference):
        client = TsubasaClient(provider=InMemoryProvider(sketch), data=data)
        result = client.execute(QuerySpec(op="matrix", window=ARBITRARY))
        np.testing.assert_array_equal(result.value.values, reference(ARBITRARY))


class TestPrefetch:
    def test_prefetch_warms_store_cache(self, sketch, data, tmp_path):
        provider = make_provider("store", sketch, data, tmp_path)
        client = TsubasaClient(provider=provider)
        selection = client.selection_for(ALIGNED)
        fetched = client.prefetch(selection.full_windows)
        assert fetched == 4
        misses_before = provider.cache_misses
        client.execute(QuerySpec(op="matrix", window=ALIGNED))
        assert provider.cache_misses == misses_before  # fully cached

    def test_prefetch_noop_for_memory_backend(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        assert client.prefetch([0, 1, 2]) == 0

    def test_prefetch_skips_oversized_selections(self, sketch, data, tmp_path):
        store = SqliteSketchStore(tmp_path / "tiny.db")
        save_sketch(store, sketch)
        provider = StoreProvider(store, cache_windows=2)
        client = TsubasaClient(provider=provider)
        assert client.prefetch(list(range(8))) == 0  # would churn the LRU
