"""Tests for the HTTP/WebSocket server and the remote client.

The acceptance bar for engines-as-a-service: remote execution must be
bit-identical to in-process execution across every backend, concurrent
WebSocket clients must not perturb each other, subscriptions must deliver
ordered live snapshots, and the backpressure/drain policies must actually
fire.
"""

from __future__ import annotations

import http.client
import json
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api.client import TsubasaClient
from repro.api.remote import TsubasaRemoteClient, _WsClientConnection
from repro.api.server import serve_in_thread
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.realtime import TsubasaRealtime
from repro.core.sketch import build_sketch
from repro.engine.providers import (
    InMemoryProvider,
    MmapProvider,
    StoreProvider,
)
from repro.exceptions import ServiceError, SketchError, StreamError
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch
from repro.storage.sqlite_store import SqliteSketchStore
from repro.streams.ingestion import StreamIngestor
from repro.streams.sources import ReplaySource, SyntheticSource

WINDOW = WindowSpec(end=599, length=200)

MIXED_SPECS = [
    QuerySpec(op="network", window=WINDOW, theta=0.4),
    QuerySpec(op="top_k", window=WINDOW, k=5),
    QuerySpec(op="matrix", window=WindowSpec(end=599, length=300)),
    QuerySpec(op="degree", window=WINDOW, theta=0.4),
    QuerySpec(op="pairs_in_range", window=WINDOW, low=0.2, high=0.8),
    QuerySpec(
        op="diff_network",
        window=WINDOW,
        baseline=WindowSpec(end=399, length=200),
        theta=0.4,
    ),
]


def make_sketch(dataset):
    return build_sketch(dataset.values, 50, names=dataset.names)


class _SlowProvider(InMemoryProvider):
    """An in-memory backend whose large selections take a while.

    Selections above ``slow_windows`` basic windows sleep before answering,
    which makes completion-order and in-flight-limit tests deterministic.
    """

    backend_name = "slow"

    def __init__(self, sketch, slow_windows=8, delay=0.4):
        super().__init__(sketch)
        self._slow_windows = slow_windows
        self._delay = delay

    def window_stats(self, indices):
        if np.asarray(indices).size > self._slow_windows:
            time.sleep(self._delay)
        return super().window_stats(indices)


@pytest.fixture(scope="module")
def server(small_dataset):
    """One shared memory-backed server for read-only request tests."""
    client = TsubasaClient(provider=InMemoryProvider(make_sketch(small_dataset)))
    with serve_in_thread(client, service_kwargs={"max_workers": 2}) as handle:
        yield handle
        handle.stop()


@pytest.fixture(scope="module")
def local_results(small_dataset):
    client = TsubasaClient(provider=InMemoryProvider(make_sketch(small_dataset)))
    return [client.execute(spec) for spec in MIXED_SPECS]


def assert_results_match(remote, local):
    assert remote.spec == local.spec
    if remote.spec.op == "matrix":
        assert remote.value.names == local.value.names
        np.testing.assert_array_equal(remote.value.values, local.value.values)
    elif remote.spec.op == "network":
        assert remote.value.edge_set() == local.value.edge_set()
        for a, b in local.value.edge_set():
            assert remote.value.edge_weight(a, b) == local.value.edge_weight(a, b)
    else:
        assert remote.value == local.value


class TestHttpEndpoints:
    def test_healthz_and_stats(self, server):
        with TsubasaRemoteClient(server.address) as client:
            health = client.health()
            assert health["ok"] is True
            assert health["protocol"] == 1
            assert health["protocols"] == [1, 2]
            assert health["pid"] > 0
            stats = client.stats()
        assert stats["protocol"] == 1
        assert "service" in stats and "server" in stats
        assert stats["server"]["connections_total"] >= 1

    def test_unknown_endpoint_404(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("GET", "/nope")
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 404
        assert payload["ok"] is False

    def test_method_mismatch_405(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("GET", "/v1/query")
        response = conn.getresponse()
        response.read()
        conn.close()
        assert response.status == 405

    def test_invalid_json_body_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("POST", "/v1/query", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error"]["type"] == "DataError"
        assert payload["error"]["code"] == 3

    def test_protocol_version_negotiation(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        frame = {"protocol": 3, "spec": MIXED_SPECS[0].to_dict()}
        conn.request("POST", "/v1/query", body=json.dumps(frame).encode())
        payload = json.loads(conn.getresponse().read())
        conn.close()
        assert payload["ok"] is False
        assert "unsupported protocol version 3" in payload["error"]["message"]

    def test_keep_alive_reuses_connection(self, server):
        with TsubasaRemoteClient(server.address) as client:
            first = client.execute(MIXED_SPECS[1])
            second = client.execute(MIXED_SPECS[1])
        assert first.value == second.value

    def test_subscribe_rejected_over_http(self, server):
        spec = QuerySpec(
            op="subscribe", window=WindowSpec(start=0, stop=600), theta=0.5
        )
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        frame = {"protocol": 1, "id": "s", "spec": spec.to_dict()}
        conn.request("POST", "/v1/query", body=json.dumps(frame).encode())
        payload = json.loads(conn.getresponse().read())
        conn.close()
        assert payload["ok"] is False
        assert "WebSocket" in payload["error"]["message"]


class TestRemoteExecution:
    @pytest.mark.parametrize("transport", ["http", "ws"])
    def test_mixed_ops_bit_identical(self, server, local_results, transport):
        with TsubasaRemoteClient(server.address, transport=transport) as client:
            remote = [client.execute(spec) for spec in MIXED_SPECS]
        for got, want in zip(remote, local_results):
            assert_results_match(got, want)

    @pytest.mark.parametrize("transport", ["http", "ws"])
    def test_execute_many(self, server, local_results, transport):
        with TsubasaRemoteClient(server.address, transport=transport) as client:
            remote = client.execute_many(MIXED_SPECS)
        for got, want in zip(remote, local_results):
            assert_results_match(got, want)

    def test_remote_errors_mirror_local_types(self, server):
        bad = QuerySpec(op="matrix", window=WindowSpec(end=599, length=123))
        with TsubasaRemoteClient(server.address) as client:
            with pytest.raises(SketchError):
                client.execute(bad)
        with TsubasaRemoteClient(server.address, transport="ws") as client:
            with pytest.raises(SketchError):
                client.execute(bad)

    def test_provenance_travels(self, server):
        with TsubasaRemoteClient(server.address) as client:
            result = client.execute(MIXED_SPECS[0])
        assert result.provenance is not None
        assert result.provenance.backend == "memory"
        assert result.timings["total"] > 0.0

    @pytest.mark.parametrize("backend", ["memory", "sqlite", "mmap"])
    def test_bit_identical_across_backends(
        self, tmp_path, small_dataset, backend
    ):
        """The acceptance criterion: remote == in-process, per backend."""
        sketch = make_sketch(small_dataset)
        if backend == "memory":
            make_provider = lambda: InMemoryProvider(sketch)  # noqa: E731
        elif backend == "sqlite":
            path = tmp_path / "sketch.db"
            with SqliteSketchStore(path) as store:
                save_sketch(store, sketch)
            make_provider = lambda: StoreProvider(  # noqa: E731
                SqliteSketchStore(path)
            )
        else:
            path = tmp_path / "sketch.mm"
            with MmapStore(path) as store:
                save_sketch(store, sketch)
            make_provider = lambda: MmapProvider(MmapStore(path, mode="r"))  # noqa: E731
        local = [
            TsubasaClient(provider=make_provider()).execute(spec)
            for spec in MIXED_SPECS
        ]
        client = TsubasaClient(provider=make_provider())
        with serve_in_thread(client) as handle:
            for transport in ("http", "ws"):
                with TsubasaRemoteClient(
                    handle.address, transport=transport
                ) as remote:
                    for spec, want in zip(MIXED_SPECS, local):
                        assert_results_match(remote.execute(spec), want)
            handle.stop()


class TestConcurrentClients:
    def test_32_ws_clients_bit_identical(self, server, local_results):
        """≥32 concurrent WebSocket clients, each pipelining the mixed
        workload, all bit-identical to serial in-process execution."""
        n_clients = 32

        def worker(i: int):
            with TsubasaRemoteClient(server.address, transport="ws") as client:
                return client.execute_many(MIXED_SPECS)

        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            all_results = list(pool.map(worker, range(n_clients)))
        assert len(all_results) == n_clients
        for results in all_results:
            for got, want in zip(results, local_results):
                assert_results_match(got, want)

    def test_out_of_order_completion(self, small_dataset):
        """A fast request overtakes a slow one on the same connection; the
        protocol ids keep them straight."""
        client = TsubasaClient(
            provider=_SlowProvider(make_sketch(small_dataset))
        )
        with serve_in_thread(
            client, service_kwargs={"max_workers": 2}
        ) as handle:
            conn = _WsClientConnection(handle.host, handle.port, timeout=30)
            slow = QuerySpec(op="matrix", window=WindowSpec(end=599, length=600))
            fast = QuerySpec(op="matrix", window=WindowSpec(end=599, length=100))
            conn.send_text(json.dumps(
                {"protocol": 1, "id": "slow", "spec": slow.to_dict()}
            ))
            conn.send_text(json.dumps(
                {"protocol": 1, "id": "fast", "spec": fast.to_dict()}
            ))
            order = []
            for _ in range(2):
                envelope = json.loads(conn.recv_message())
                assert envelope["ok"], envelope
                order.append(envelope["id"])
            conn.close()
            handle.stop()
        assert order == ["fast", "slow"]

    def test_per_connection_inflight_limit(self, small_dataset):
        client = TsubasaClient(
            provider=_SlowProvider(make_sketch(small_dataset))
        )
        with serve_in_thread(
            client, server_kwargs={"max_inflight": 1}
        ) as handle:
            conn = _WsClientConnection(handle.host, handle.port, timeout=30)
            slow = QuerySpec(op="matrix", window=WindowSpec(end=599, length=600))
            for i in range(3):
                conn.send_text(json.dumps(
                    {"protocol": 1, "id": i, "spec": slow.to_dict()}
                ))
            envelopes = [json.loads(conn.recv_message()) for _ in range(3)]
            conn.close()
            handle.stop()
        rejected = [e for e in envelopes if not e["ok"]]
        accepted = [e for e in envelopes if e["ok"]]
        assert len(rejected) == 2
        assert len(accepted) == 1
        for envelope in rejected:
            assert envelope["error"]["type"] == "ServiceError"
            assert "in-flight" in envelope["error"]["message"]


class TestGracefulDrain:
    def test_inflight_request_completes_during_drain(self, small_dataset):
        client = TsubasaClient(
            provider=_SlowProvider(make_sketch(small_dataset), delay=0.6)
        )
        handle = serve_in_thread(client)
        spec = QuerySpec(op="matrix", window=WindowSpec(end=599, length=600))
        outcome = {}

        def run_query():
            with TsubasaRemoteClient(handle.address, timeout=30) as remote:
                outcome["result"] = remote.execute(spec)

        thread = threading.Thread(target=run_query)
        thread.start()
        time.sleep(0.2)  # request is in flight inside the slow provider
        handle.stop()  # graceful drain must let it finish
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert "result" in outcome, "in-flight request was dropped on drain"
        assert outcome["result"].value.values.shape == (20, 20)
        # And the listener is really gone.
        with pytest.raises(OSError):
            probe = socket.create_connection(
                (handle.host, handle.port), timeout=2
            )
            probe.close()


class TestSubscriptions:
    @pytest.fixture()
    def live_server(self, small_dataset):
        """A server with a realtime hub replaying the dataset's tail."""
        client = TsubasaClient(
            provider=InMemoryProvider(make_sketch(small_dataset))
        )
        engine = TsubasaRealtime(
            small_dataset.values[:, :300], 50, names=small_dataset.names
        )
        ingestor = StreamIngestor(engine, theta=0.4)
        source = ReplaySource(small_dataset.values, 50, start=300)
        handle = serve_in_thread(
            client,
            ingestor=ingestor,
            source=source,
            pump_interval=0.15,
        )
        yield handle
        handle.stop()

    def test_delivers_ordered_snapshots(self, live_server):
        with TsubasaRemoteClient(live_server.address) as client:
            events = list(
                client.subscribe(theta=0.4, window_points=300, max_events=3)
            )
        assert len(events) >= 3
        # Seq numbers are the hub's global publish counter: contiguous, but
        # the first one depends on how many snapshots the pump published
        # before this subscriber attached.
        seqs = [event.seq for event in events]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        timestamps = [event.event["timestamp"] for event in events]
        assert timestamps == sorted(timestamps)
        assert all(t2 - t1 == 50 for t1, t2 in zip(timestamps, timestamps[1:]))
        for event in events:
            assert event.event["theta"] == 0.4
            assert event.event["n_nodes"] == 20
            assert isinstance(event.event["edges"], list)
            assert isinstance(event.event["appeared"], list)

    def test_per_subscription_theta_filters(self, live_server):
        with TsubasaRemoteClient(live_server.address) as client:
            events = list(
                client.subscribe(theta=0.7, window_points=300, max_events=3)
            )
        assert len(events) >= 1
        for event in events:
            assert event.event["theta"] == 0.7
            for _a, _b, weight in event.event["edges"]:
                assert weight > 0.7

    def test_window_mismatch_rejected(self, live_server):
        with TsubasaRemoteClient(live_server.address) as client:
            with pytest.raises(StreamError, match="standing query window"):
                list(client.subscribe(theta=0.5, window_points=100))

    def test_sub_base_theta_rejected(self, live_server):
        with TsubasaRemoteClient(live_server.address) as client:
            with pytest.raises(StreamError, match="base"):
                list(client.subscribe(theta=0.1, window_points=300))

    def test_subscribe_without_hub_rejected(self, server):
        with TsubasaRemoteClient(server.address) as client:
            with pytest.raises(ServiceError, match="no live stream"):
                list(client.subscribe(theta=0.5, window_points=600))

    def test_slow_consumer_is_disconnected(self, small_dataset):
        """A subscriber that stops reading is dropped once the enforced
        per-client bound (send queue + bounded socket buffers) fills."""
        rng = np.random.default_rng(7)
        loadings = rng.normal(size=(20, 4))
        engine = TsubasaRealtime(
            small_dataset.values[:, :300], 50, names=small_dataset.names
        )
        ingestor = StreamIngestor(engine, theta=0.1, keep_history=False)
        source = SyntheticSource(loadings, batch_size=50, seed=8)
        client = TsubasaClient(
            provider=InMemoryProvider(make_sketch(small_dataset))
        )
        handle = serve_in_thread(
            client,
            ingestor=ingestor,
            source=source,
            pump_interval=0.002,
            server_kwargs={
                "send_buffer": 1,
                "ws_write_buffer_bytes": 4096,
            },
        )
        try:
            conn = _WsClientConnection(handle.host, handle.port, timeout=30)
            # Keep the client's receive window tiny so kernel buffering
            # cannot hide the lag.
            conn._sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            spec = QuerySpec(
                op="subscribe", window=WindowSpec(start=0, stop=300), theta=0.1
            )
            conn.send_text(json.dumps(
                {"protocol": 1, "id": "lazy", "spec": spec.to_dict()}
            ))
            # Read the ack only, then stop draining entirely.
            ack = json.loads(conn.recv_message())
            assert ack["ok"], ack
            deadline = time.time() + 30
            disconnects = 0
            with TsubasaRemoteClient(handle.address) as probe:
                while time.time() < deadline:
                    stats = probe.stats()
                    disconnects = stats["server"]["slow_consumer_disconnects"]
                    if disconnects:
                        break
                    time.sleep(0.2)
            assert disconnects >= 1, "slow consumer was never disconnected"
            conn.close()
        finally:
            handle.stop()


class TestServeHttpCli:
    def test_cli_serves_and_drains_on_sigterm(self, tmp_path):
        """`tsubasa serve --http` end to end as a subprocess: announce,
        answer a remote batch, exit cleanly on SIGTERM."""
        data = tmp_path / "data.npz"
        store = tmp_path / "sketch.mm"
        env_cmd = [sys.executable, "-m", "repro.cli"]
        subprocess.run(
            [*env_cmd, "generate", "--stations", "10", "--points", "400",
             "--seed", "3", "--out", str(data)],
            check=True,
        )
        subprocess.run(
            [*env_cmd, "sketch", "--data", str(data), "--window-size", "50",
             "--store", str(store), "--store-backend", "mmap"],
            check=True,
        )
        process = subprocess.Popen(
            [*env_cmd, "serve", "--store", str(store), "--backend", "mmap",
             "--http", "127.0.0.1:0"],
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "serving on http://" in banner
            address = banner.split("http://", 1)[1].split()[0]
            specs = [
                QuerySpec(op="network",
                          window=WindowSpec(end=399, length=200), theta=0.4),
                QuerySpec(op="top_k",
                          window=WindowSpec(end=399, length=200), k=3),
            ]
            with TsubasaRemoteClient(address) as client:
                assert client.health()["ok"] is True
                results = client.execute_many(specs)
            assert results[0].value.n_nodes == 10
            assert len(results[1].value) == 3
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=30)
            assert process.returncode == 0
            assert "served 2 ok / 0 failed" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestProtocolAbuse:
    """Malformed transports get clean closes, never a wedged server."""

    @pytest.fixture()
    def strict_server(self, small_dataset):
        client = TsubasaClient(
            provider=InMemoryProvider(make_sketch(small_dataset))
        )
        with serve_in_thread(
            client, server_kwargs={"max_message_bytes": 1024}
        ) as handle:
            yield handle
            handle.stop()

    def test_oversized_ws_message_closed(self, strict_server):
        conn = _WsClientConnection(
            strict_server.host, strict_server.port, timeout=10
        )
        conn.send_text("x" * 4096)
        assert conn.recv_message() is None  # close frame, not a TCP reset
        conn.close()

    def test_unmasked_client_frame_closed(self, strict_server):
        from repro.api.server import encode_ws_frame

        conn = _WsClientConnection(
            strict_server.host, strict_server.port, timeout=10
        )
        conn._sock.sendall(encode_ws_frame(0x1, b'{"spec": {}}', mask=False))
        assert conn.recv_message() is None
        conn.close()

    def test_binary_frame_closed(self, strict_server):
        from repro.api.server import encode_ws_frame

        conn = _WsClientConnection(
            strict_server.host, strict_server.port, timeout=10
        )
        conn._sock.sendall(encode_ws_frame(0x2, b"\x00\x01", mask=True))
        assert conn.recv_message() is None
        conn.close()

    def test_oversized_http_body_413(self, strict_server):
        probe = socket.create_connection(
            (strict_server.host, strict_server.port), timeout=10
        )
        probe.sendall(
            b"POST /v1/query HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 999999999\r\n\r\n"
        )
        status = probe.recv(65536).decode().split("\r\n")[0]
        probe.close()
        assert " 413 " in status

    def test_server_survives_abuse(self, strict_server):
        conn = _WsClientConnection(
            strict_server.host, strict_server.port, timeout=10
        )
        conn.send_text("definitely not json")
        error = json.loads(conn.recv_message())
        assert error["ok"] is False
        conn.close()
        with TsubasaRemoteClient(strict_server.address) as client:
            assert client.health()["ok"] is True


class TestSubscriptionLimits:
    def test_subscriptions_count_against_inflight_cap(self, small_dataset):
        """One connection cannot open unbounded subscriptions: they spend
        the same per-connection budget as requests."""
        engine = TsubasaRealtime(
            small_dataset.values[:, :300], 50, names=small_dataset.names
        )
        ingestor = StreamIngestor(engine, theta=0.4)
        client = TsubasaClient(
            provider=InMemoryProvider(make_sketch(small_dataset))
        )
        handle = serve_in_thread(
            client,
            ingestor=ingestor,
            server_kwargs={"max_inflight": 2},
        )
        try:
            conn = _WsClientConnection(handle.host, handle.port, timeout=30)
            spec = QuerySpec(
                op="subscribe", window=WindowSpec(start=0, stop=300), theta=0.4
            )
            for i in range(4):
                conn.send_text(json.dumps(
                    {"protocol": 1, "id": i, "spec": spec.to_dict()}
                ))
            envelopes = [json.loads(conn.recv_message()) for _ in range(4)]
            conn.close()
        finally:
            handle.stop()
        acks = [e for e in envelopes if e["ok"]]
        rejections = [e for e in envelopes if not e["ok"]]
        assert len(acks) == 2
        assert len(rejections) == 2
        for envelope in rejections:
            assert "in-flight" in envelope["error"]["message"]


class TestServeHttpStreamCli:
    def test_stream_data_serves_subscriptions(self, tmp_path):
        """`serve --http --stream-data` on a FULLY sketched dataset still
        streams (the feed loops as a simulated live source)."""
        data = tmp_path / "data.npz"
        store = tmp_path / "sketch.mm"
        env_cmd = [sys.executable, "-m", "repro.cli"]
        subprocess.run(
            [*env_cmd, "generate", "--stations", "8", "--points", "400",
             "--seed", "2", "--out", str(data)],
            check=True,
        )
        subprocess.run(
            [*env_cmd, "sketch", "--data", str(data), "--window-size", "50",
             "--store", str(store), "--store-backend", "mmap"],
            check=True,
        )
        process = subprocess.Popen(
            [*env_cmd, "serve", "--store", str(store), "--backend", "mmap",
             "--http", "127.0.0.1:0",
             "--stream-data", str(data), "--stream-theta", "0.3",
             "--stream-windows", "4", "--stream-interval", "0.05"],
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "serving on http://" in banner
            address = banner.split("http://", 1)[1].split()[0]
            with TsubasaRemoteClient(address) as client:
                events = list(client.subscribe(
                    theta=0.3, window_points=200, max_events=3
                ))
            assert len(events) == 3
            seqs = [e.seq for e in events]
            assert seqs == list(range(seqs[0], seqs[0] + 3))
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=30)
            assert process.returncode == 0
            assert "1 subscriptions" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
