"""Tests for repro.data.indices (regional climate indices)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.indices import (
    RegionBox,
    attach_index,
    box_index,
    index_correlations,
)
from repro.data.synthetic import generate_gridded_dataset
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def grid():
    return generate_gridded_dataset(
        lat_min=25.0, lat_max=45.0, lon_min=-120.0, lon_max=-80.0,
        resolution_deg=5.0, n_points=600, seed=14,
    )


@pytest.fixture()
def west_box():
    return RegionBox(lat_min=25.0, lat_max=45.0, lon_min=-120.0,
                     lon_max=-105.0, name="west")


class TestRegionBox:
    def test_contains(self, grid, west_box):
        mask = west_box.contains(grid.lats, grid.lons)
        assert mask.any() and not mask.all()
        assert np.all(grid.lons[mask] <= -105.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(DataError):
            RegionBox(lat_min=40.0, lat_max=30.0, lon_min=0.0, lon_max=10.0)


class TestBoxIndex:
    def test_shape(self, grid, west_box):
        series = box_index(grid, west_box)
        assert series.shape == (600,)

    def test_single_node_box_equals_that_node(self, grid):
        box = RegionBox(
            lat_min=grid.lats[0], lat_max=grid.lats[0],
            lon_min=grid.lons[0], lon_max=grid.lons[0],
        )
        series = box_index(grid, box)
        np.testing.assert_allclose(series, grid.values[0])

    def test_cosine_weighting(self):
        """Higher-latitude rows get smaller weights."""
        from repro.data.synthetic import StationDataset

        dataset = StationDataset(
            names=["low", "high"],
            values=np.array([[1.0] * 4, [3.0] * 4]),
            lats=np.array([0.0, 60.0]),
            lons=np.array([0.0, 0.0]),
            resolution_hours=24.0,
        )
        box = RegionBox(lat_min=-90, lat_max=90, lon_min=-180, lon_max=180)
        series = box_index(dataset, box)
        w_low, w_high = 1.0, np.cos(np.radians(60.0))
        expected = (1.0 * w_low + 3.0 * w_high) / (w_low + w_high)
        np.testing.assert_allclose(series, expected)

    def test_empty_box_raises(self, grid):
        box = RegionBox(lat_min=80.0, lat_max=85.0, lon_min=0.0, lon_max=5.0)
        with pytest.raises(DataError):
            box_index(grid, box)


class TestAttachIndex:
    def test_appends_node(self, grid, west_box):
        extended = attach_index(grid, west_box)
        assert extended.n_series == grid.n_series + 1
        assert extended.names[-1] == "west"
        np.testing.assert_allclose(
            extended.values[-1], box_index(grid, west_box)
        )
        # Index node sits at the box center.
        assert extended.lats[-1] == pytest.approx(35.0)
        assert extended.lons[-1] == pytest.approx(-112.5)

    def test_attached_index_networks_like_a_node(self, grid, west_box):
        from repro.core.exact import TsubasaHistorical

        extended = attach_index(grid, west_box)
        engine = TsubasaHistorical(extended.values, 50,
                                   names=extended.names)
        matrix = engine.correlation_matrix((599, 600))
        # The index correlates strongly with at least one in-box node.
        mask = west_box.contains(grid.lats, grid.lons)
        in_box = [n for n, m in zip(grid.names, mask) if m]
        assert max(matrix.get("west", n) for n in in_box) > 0.5

    def test_duplicate_name_rejected(self, grid):
        box = RegionBox(25.0, 45.0, -120.0, -105.0, name=grid.names[0])
        with pytest.raises(DataError):
            attach_index(grid, box)


class TestIndexCorrelations:
    def test_full_window(self, grid, west_box):
        corr = index_correlations(grid, west_box)
        assert set(corr) == set(grid.names)
        assert all(-1.0 <= v <= 1.0 for v in corr.values())

    def test_in_box_nodes_more_correlated(self, grid, west_box):
        corr = index_correlations(grid, west_box)
        mask = west_box.contains(grid.lats, grid.lons)
        inside = [corr[n] for n, m in zip(grid.names, mask) if m]
        outside = [corr[n] for n, m in zip(grid.names, mask) if not m]
        assert np.mean(inside) > np.mean(outside)

    def test_query_window_matches_manual(self, grid, west_box):
        corr = index_correlations(grid, west_box, query=(599, 200))
        series = box_index(grid, west_box)[400:600]
        expected = np.corrcoef(grid.values[0, 400:600], series)[0, 1]
        assert corr[grid.names[0]] == pytest.approx(expected, abs=1e-9)

    def test_out_of_range_query(self, grid, west_box):
        with pytest.raises(DataError):
            index_correlations(grid, west_box, query=(999, 100))
