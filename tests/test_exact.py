"""Tests for repro.core.exact (Algorithm 2, arbitrary query windows)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import TsubasaHistorical, fragment_stats
from repro.core.segmentation import QueryWindow
from repro.exceptions import DataError, SegmentationError, SketchError


class TestFragmentStats:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=(4, 100))
        mean, std, cov, size = fragment_stats(data, 13, 47)
        block = data[:, 13:47]
        np.testing.assert_allclose(mean, block.mean(axis=1))
        np.testing.assert_allclose(std, block.std(axis=1))
        np.testing.assert_allclose(cov, np.cov(block, bias=True), atol=1e-12)
        assert size == 34

    def test_rejects_empty_fragment(self, rng):
        with pytest.raises(DataError):
            fragment_stats(rng.normal(size=(2, 10)), 5, 5)


class TestTsubasaHistoricalAligned:
    def test_full_window_matches_numpy(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        matrix = engine.correlation_matrix((599, 600))
        np.testing.assert_allclose(matrix.values, np.corrcoef(small_matrix), atol=1e-10)

    def test_suffix_window(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        matrix = engine.correlation_matrix((599, 200))
        np.testing.assert_allclose(
            matrix.values, np.corrcoef(small_matrix[:, 400:600]), atol=1e-10
        )

    def test_interior_window(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        matrix = engine.correlation_matrix((399, 150))
        np.testing.assert_allclose(
            matrix.values, np.corrcoef(small_matrix[:, 250:400]), atol=1e-10
        )

    def test_query_window_object_accepted(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        a = engine.correlation_matrix(QueryWindow(end=299, length=100))
        b = engine.correlation_matrix((299, 100))
        np.testing.assert_array_equal(a.values, b.values)


class TestTsubasaHistoricalArbitrary:
    """The headline feature: windows not aligned to basic windows."""

    @pytest.mark.parametrize(
        "end,length",
        [(599, 73), (523, 317), (101, 51), (570, 491), (49, 30), (60, 22)],
    )
    def test_arbitrary_windows_exact(self, small_matrix, end, length):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        matrix = engine.correlation_matrix((end, length))
        expected = np.corrcoef(small_matrix[:, end - length + 1 : end + 1])
        np.testing.assert_allclose(matrix.values, expected, atol=1e-9)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_any_window_exact(self, small_matrix, data):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        length = data.draw(st.integers(2, 600))
        end = data.draw(st.integers(length - 1, 599))
        matrix = engine.correlation_matrix((end, length))
        expected = np.corrcoef(small_matrix[:, end - length + 1 : end + 1])
        np.testing.assert_allclose(matrix.values, expected, atol=1e-8)

    def test_sketch_only_engine_rejects_arbitrary(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50, keep_raw=False)
        # Aligned queries still work.
        engine.correlation_matrix((599, 100))
        with pytest.raises(SketchError):
            engine.correlation_matrix((599, 73))

    def test_out_of_range_query(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        with pytest.raises(SegmentationError):
            engine.correlation_matrix((700, 100))


class TestTsubasaHistoricalNetwork:
    def test_network_edges_match_thresholded_matrix(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        matrix = engine.correlation_matrix((599, 300))
        network = engine.network((599, 300), theta=0.5)
        assert network.n_edges == matrix.n_edges(0.5)

    def test_network_carries_coordinates(self, small_dataset):
        engine = TsubasaHistorical(
            small_dataset.values,
            window_size=50,
            names=small_dataset.names,
            coordinates=small_dataset.coordinates,
        )
        network = engine.network((599, 300), theta=0.5)
        graph = network.to_networkx()
        assert "lat" in graph.nodes[small_dataset.names[0]]

    def test_threshold_monotonicity(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        edges = [
            engine.network((599, 600), theta=t).n_edges
            for t in (0.2, 0.4, 0.6, 0.8)
        ]
        assert edges == sorted(edges, reverse=True)

    def test_names_and_plan_exposed(self, small_matrix):
        engine = TsubasaHistorical(small_matrix, window_size=50)
        assert len(engine.names) == small_matrix.shape[0]
        assert engine.plan.n_windows == 12
        assert engine.sketch.n_windows == 12

    def test_rejects_1d_data(self, rng):
        with pytest.raises(DataError):
            TsubasaHistorical(rng.normal(size=100), window_size=10)
