"""Tests for repro.baseline (raw-data exact correlation, Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline.naive import (
    BaselineExact,
    baseline_correlation_matrix,
    baseline_pairwise_loop,
    pearson,
)
from repro.exceptions import DataError


class TestPearson:
    def test_matches_numpy(self, rng):
        x = rng.normal(size=100)
        y = 0.3 * x + rng.normal(size=100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_perfect_and_anti(self, rng):
        x = rng.normal(size=50)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_yields_zero(self, rng):
        assert pearson(np.full(10, 3.0), rng.normal(size=10)) == 0.0

    def test_rejects_mismatch(self):
        with pytest.raises(DataError):
            pearson(np.zeros(3), np.zeros(4))


class TestBaselineCorrelationMatrix:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=(8, 120))
        np.testing.assert_allclose(
            baseline_correlation_matrix(data), np.corrcoef(data), atol=1e-12
        )

    def test_constant_row_handled(self, rng):
        data = rng.normal(size=(3, 40))
        data[1] = 0.0
        corr = baseline_correlation_matrix(data)
        assert corr[1, 1] == 1.0
        assert corr[1, 0] == 0.0
        assert np.all(np.isfinite(corr))

    def test_loop_agrees_with_vectorized(self, rng):
        data = rng.normal(size=(5, 60))
        np.testing.assert_allclose(
            baseline_pairwise_loop(data),
            baseline_correlation_matrix(data),
            atol=1e-12,
        )

    def test_rejects_1d(self, rng):
        with pytest.raises(DataError):
            baseline_correlation_matrix(rng.normal(size=10))


class TestBaselineExactEngine:
    def test_query_matches_slice(self, small_matrix):
        engine = BaselineExact(small_matrix)
        matrix = engine.correlation_matrix((399, 150))
        np.testing.assert_allclose(
            matrix.values, np.corrcoef(small_matrix[:, 250:400]), atol=1e-12
        )

    def test_agrees_with_tsubasa(self, small_matrix):
        from repro.core.exact import TsubasaHistorical

        tsubasa = TsubasaHistorical(small_matrix, window_size=50)
        baseline = BaselineExact(small_matrix)
        for query in [(599, 600), (599, 73), (411, 217)]:
            np.testing.assert_allclose(
                tsubasa.correlation_matrix(query).values,
                baseline.correlation_matrix(query).values,
                atol=1e-9,
            )

    def test_network(self, small_matrix):
        engine = BaselineExact(small_matrix)
        network = engine.network((599, 300), theta=0.5)
        matrix = engine.correlation_matrix((599, 300))
        assert network.n_edges == matrix.n_edges(0.5)

    def test_rejects_out_of_range(self, small_matrix):
        engine = BaselineExact(small_matrix)
        with pytest.raises(DataError):
            engine.correlation_matrix((700, 100))

    def test_rejects_bad_names(self, rng):
        with pytest.raises(DataError):
            BaselineExact(rng.normal(size=(3, 10)), names=["a"])
