"""End-to-end tests for wire protocol v2 negotiation and serving policies.

Covers the tentpole contract of wire-speed serving: per-connection
negotiation (HTTP ``Accept`` and the WebSocket hello), transparent
fallback against v1-only servers, bit-identical decoding across every
backend, bearer-token auth, the server-wide admission budget, and the
per-protocol wire accounting in ``/v1/stats``.
"""

from __future__ import annotations

import http.client
import json
import logging
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api.client import TsubasaClient
from repro.api.frames import CONTENT_TYPE_V2, decode_frame
from repro.api.remote import TsubasaRemoteClient, _WsClientConnection
from repro.api.server import serve_in_thread
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.sketch import build_sketch
from repro.engine.providers import (
    InMemoryProvider,
    MmapProvider,
    StoreProvider,
)
from repro.exceptions import ServiceError
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch
from repro.storage.sqlite_store import SqliteSketchStore

WINDOW = WindowSpec(end=599, length=200)

BUFFER_SPECS = [
    QuerySpec(op="matrix", window=WINDOW),
    QuerySpec(op="network", window=WINDOW, theta=0.4),
]

JSON_SPECS = [
    QuerySpec(op="top_k", window=WINDOW, k=5),
    QuerySpec(op="degree", window=WINDOW, theta=0.4),
    QuerySpec(op="pairs_in_range", window=WINDOW, low=0.2, high=0.8),
]


def make_sketch(dataset):
    return build_sketch(dataset.values, 50, names=dataset.names)


class _SlowProvider(InMemoryProvider):
    backend_name = "slow"

    def __init__(self, sketch, delay=0.4):
        super().__init__(sketch)
        self._delay = delay

    def window_stats(self, indices):
        time.sleep(self._delay)
        return super().window_stats(indices)


@pytest.fixture(scope="module")
def v2_server(small_dataset):
    client = TsubasaClient(provider=InMemoryProvider(make_sketch(small_dataset)))
    with serve_in_thread(client, service_kwargs={"max_workers": 2}) as handle:
        yield handle
        handle.stop()


@pytest.fixture(scope="module")
def v1_only_server(small_dataset):
    """A pre-v2 server: same stack with the v2 encoding disabled."""
    client = TsubasaClient(provider=InMemoryProvider(make_sketch(small_dataset)))
    with serve_in_thread(client, server_kwargs={"enable_v2": False}) as handle:
        yield handle
        handle.stop()


@pytest.fixture(scope="module")
def local_client(small_dataset):
    return TsubasaClient(provider=InMemoryProvider(make_sketch(small_dataset)))


def assert_same_result(remote, local):
    assert remote.spec == local.spec
    if remote.spec.op == "matrix":
        assert remote.value.names == local.value.names
        np.testing.assert_array_equal(remote.value.values, local.value.values)
    elif remote.spec.op == "network":
        assert remote.value.edge_set() == local.value.edge_set()
        for a, b in local.value.edge_set():
            assert remote.value.edge_weight(a, b) == local.value.edge_weight(a, b)
    else:
        assert remote.value == local.value


class TestHttpNegotiation:
    def test_v2_reply_is_binary_with_v2_content_type(self, v2_server):
        conn = http.client.HTTPConnection(
            v2_server.host, v2_server.port, timeout=10
        )
        frame = {"protocol": 1, "id": 1, "spec": BUFFER_SPECS[0].to_dict()}
        conn.request(
            "POST", "/v1/query", body=json.dumps(frame).encode(),
            headers={"Accept": CONTENT_TYPE_V2},
        )
        response = conn.getresponse()
        body = response.read()
        conn.close()
        assert response.status == 200
        assert response.getheader("Content-Type") == CONTENT_TYPE_V2
        meta, buffers, offset = decode_frame(body)
        assert offset == len(body)
        assert meta["ok"] is True and meta["id"] == 1
        assert len(buffers) == 1  # the raw correlation matrix

    def test_without_accept_header_reply_stays_v1_json(self, v2_server):
        conn = http.client.HTTPConnection(
            v2_server.host, v2_server.port, timeout=10
        )
        frame = {"protocol": 1, "id": 1, "spec": BUFFER_SPECS[0].to_dict()}
        conn.request("POST", "/v1/query", body=json.dumps(frame).encode())
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.getheader("Content-Type") == "application/json"
        assert payload["protocol"] == 1
        assert payload["ok"] is True

    def test_v2_batch_is_concatenated_frames(self, v2_server, local_client):
        with TsubasaRemoteClient(v2_server.address) as client:
            results = client.execute_many(BUFFER_SPECS + JSON_SPECS)
        assert client.negotiated_protocol in (None, 2)
        for spec, result in zip(BUFFER_SPECS + JSON_SPECS, results):
            assert_same_result(result, local_client.execute(spec))

    def test_malformed_binary_reply_rejected_by_client(self, v2_server):
        # A truncated/garbled frame must surface as a protocol error, not
        # a crash or silent garbage.
        from repro.exceptions import DataError

        with pytest.raises(DataError):
            decode_frame(b"TSB2\x00")


class TestWsNegotiation:
    def test_hello_negotiates_v2(self, v2_server, local_client):
        with TsubasaRemoteClient(v2_server.address, transport="ws") as client:
            result = client.execute(BUFFER_SPECS[0])
            assert client.negotiated_protocol == 2
            assert_same_result(result, local_client.execute(BUFFER_SPECS[0]))

    def test_explicit_v1_never_negotiates(self, v2_server, local_client):
        with TsubasaRemoteClient(
            v2_server.address, transport="ws", protocol=1
        ) as client:
            result = client.execute(BUFFER_SPECS[0])
            assert client.negotiated_protocol == 1
            assert_same_result(result, local_client.execute(BUFFER_SPECS[0]))

    def test_auto_falls_back_against_v1_only_server(
        self, v1_only_server, local_client
    ):
        with TsubasaRemoteClient(
            v1_only_server.address, transport="ws"
        ) as client:
            result = client.execute(BUFFER_SPECS[0])
            assert client.negotiated_protocol == 1
            assert_same_result(result, local_client.execute(BUFFER_SPECS[0]))

    def test_strict_v2_raises_against_v1_only_server(self, v1_only_server):
        with TsubasaRemoteClient(
            v1_only_server.address, transport="ws", protocol=2
        ) as client:
            with pytest.raises(ServiceError, match="protocol v2"):
                client.execute(BUFFER_SPECS[0])

    def test_http_auto_falls_back_against_v1_only_server(
        self, v1_only_server, local_client
    ):
        with TsubasaRemoteClient(v1_only_server.address) as client:
            result = client.execute(BUFFER_SPECS[0])
            assert_same_result(result, local_client.execute(BUFFER_SPECS[0]))

    def test_mixed_v1_and_v2_clients_share_a_server(
        self, v2_server, local_client
    ):
        def run(protocol):
            with TsubasaRemoteClient(
                v2_server.address, transport="ws", protocol=protocol
            ) as client:
                return [client.execute(s) for s in BUFFER_SPECS + JSON_SPECS]

        with ThreadPoolExecutor(4) as pool:
            batches = list(pool.map(run, [1, 2, "auto", 1]))
        locals_ = [local_client.execute(s) for s in BUFFER_SPECS + JSON_SPECS]
        for batch in batches:
            for remote, local in zip(batch, locals_):
                assert_same_result(remote, local)

    def test_v2_decode_equals_v1_decode_exactly(self, v2_server):
        # The bit-identity contract, stated directly: both protocol
        # encodings of the same answer decode to identical arrays.
        with TsubasaRemoteClient(
            v2_server.address, transport="ws", protocol=1
        ) as v1c:
            v1_results = [v1c.execute(s) for s in BUFFER_SPECS]
        with TsubasaRemoteClient(
            v2_server.address, transport="ws", protocol=2
        ) as v2c:
            v2_results = [v2c.execute(s) for s in BUFFER_SPECS]
        np.testing.assert_array_equal(
            v2_results[0].value.values, v1_results[0].value.values
        )
        np.testing.assert_array_equal(
            v2_results[1].value.weights, v1_results[1].value.weights
        )
        np.testing.assert_array_equal(
            v2_results[1].value.adjacency, v1_results[1].value.adjacency
        )


class TestBitIdentityAcrossBackends:
    @pytest.mark.parametrize("backend", ["memory", "sqlite", "mmap"])
    def test_v2_matches_in_process(self, backend, small_dataset, tmp_path):
        sketch = make_sketch(small_dataset)
        if backend == "memory":
            provider = InMemoryProvider(sketch)
        elif backend == "sqlite":
            store = SqliteSketchStore(tmp_path / "wire.db")
            save_sketch(store, sketch)
            provider = StoreProvider(store)
        else:
            with MmapStore(tmp_path / "wire.mm") as store:
                save_sketch(store, sketch)
            provider = MmapProvider(MmapStore(tmp_path / "wire.mm"))
        client = TsubasaClient(provider=provider)
        local = [client.execute(s) for s in BUFFER_SPECS + JSON_SPECS]
        with serve_in_thread(client) as handle:
            for transport in ("http", "ws"):
                with TsubasaRemoteClient(
                    handle.address, transport=transport
                ) as remote:
                    for spec, expected in zip(BUFFER_SPECS + JSON_SPECS, local):
                        assert_same_result(remote.execute(spec), expected)
            handle.stop()


class TestAuth:
    @pytest.fixture(scope="class")
    def auth_server(self, small_dataset):
        client = TsubasaClient(
            provider=InMemoryProvider(make_sketch(small_dataset))
        )
        with serve_in_thread(
            client, server_kwargs={"auth_token": "swordfish"}
        ) as handle:
            yield handle
            handle.stop()

    def test_http_without_token_is_401(self, auth_server):
        conn = http.client.HTTPConnection(
            auth_server.host, auth_server.port, timeout=10
        )
        frame = {"protocol": 1, "id": 1, "spec": BUFFER_SPECS[0].to_dict()}
        conn.request("POST", "/v1/query", body=json.dumps(frame).encode())
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 401
        assert payload["ok"] is False
        assert "auth" in payload["error"]["message"].lower()

    def test_ws_handshake_without_token_rejected(self, auth_server):
        with pytest.raises(ServiceError, match="401"):
            _WsClientConnection(auth_server.host, auth_server.port, timeout=10)

    def test_healthz_stays_open(self, auth_server):
        with TsubasaRemoteClient(auth_server.address) as client:
            assert client.health()["ok"] is True

    def test_token_clients_work_on_both_transports(
        self, auth_server, local_client
    ):
        for transport in ("http", "ws"):
            with TsubasaRemoteClient(
                auth_server.address, transport=transport,
                auth_token="swordfish",
            ) as client:
                assert_same_result(
                    client.execute(BUFFER_SPECS[0]),
                    local_client.execute(BUFFER_SPECS[0]),
                )

    def test_auth_failures_counted(self, auth_server):
        with TsubasaRemoteClient(
            auth_server.address, auth_token="swordfish"
        ) as client:
            stats = client.stats()
        assert stats["server"]["auth_failures"] >= 1


class TestGlobalAdmission:
    def test_budget_sheds_with_overloaded_envelope(self, small_dataset):
        client = TsubasaClient(
            provider=_SlowProvider(make_sketch(small_dataset), delay=0.3)
        )
        with serve_in_thread(
            client,
            service_kwargs={"max_workers": 2},
            server_kwargs={"max_inflight_total": 1},
        ) as handle:

            def run(i):
                with TsubasaRemoteClient(handle.address) as remote:
                    try:
                        remote.execute(
                            QuerySpec(
                                op="matrix",
                                window=WindowSpec(
                                    end=599, length=100 + 100 * (i % 3)
                                ),
                            )
                        )
                        return "ok"
                    except ServiceError as exc:
                        assert "capacity" in str(exc)
                        return "shed"

            with ThreadPoolExecutor(8) as pool:
                outcomes = list(pool.map(run, range(16)))
            assert "ok" in outcomes and "shed" in outcomes
            with TsubasaRemoteClient(handle.address) as remote:
                stats = remote.stats()
            assert stats["server"]["rejected_global_budget"] == (
                outcomes.count("shed")
            )
            assert stats["server"]["max_inflight_total"] == 1
            handle.stop()

    def test_shed_http_request_is_503(self, small_dataset):
        client = TsubasaClient(
            provider=_SlowProvider(make_sketch(small_dataset), delay=0.5)
        )
        with serve_in_thread(
            client,
            service_kwargs={"max_workers": 2},
            server_kwargs={"max_inflight_total": 1},
        ) as handle:
            with ThreadPoolExecutor(2) as pool:
                slow = pool.submit(
                    TsubasaRemoteClient(handle.address).execute,
                    BUFFER_SPECS[0],
                )
                time.sleep(0.15)  # let the first request occupy the budget
                conn = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=10
                )
                frame = {
                    "protocol": 1, "id": 9,
                    "spec": QuerySpec(
                        op="matrix", window=WindowSpec(end=599, length=300)
                    ).to_dict(),
                }
                conn.request(
                    "POST", "/v1/query", body=json.dumps(frame).encode()
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                conn.close()
                slow.result()
            assert response.status == 503
            assert payload["ok"] is False
            assert payload["error"]["type"] == "ServiceError"
            handle.stop()


class TestWireStats:
    def test_per_protocol_breakdown(self, small_dataset):
        client = TsubasaClient(
            provider=InMemoryProvider(make_sketch(small_dataset))
        )
        with serve_in_thread(client) as handle:
            with TsubasaRemoteClient(handle.address, protocol=1) as v1c:
                v1c.execute(BUFFER_SPECS[0])
            with TsubasaRemoteClient(handle.address, protocol=2) as v2c:
                v2c.execute(BUFFER_SPECS[0])
                v2c.execute_many(BUFFER_SPECS)
                stats = v2c.stats()
            wire = stats["server"]["wire"]
            handle.stop()
        assert wire["v1"]["requests"] >= 1
        assert wire["v2"]["requests"] >= 3
        for version in ("v1", "v2"):
            assert wire[version]["bytes_sent"] > 0
            assert wire[version]["encode_seconds"] >= 0.0

    def test_per_connection_rejections_logged_and_counted(
        self, small_dataset, caplog
    ):
        client = TsubasaClient(
            provider=_SlowProvider(make_sketch(small_dataset), delay=0.4)
        )
        with serve_in_thread(
            client, server_kwargs={"max_inflight": 1}
        ) as handle:
            with caplog.at_level(logging.INFO, logger="repro.api.server"):
                conn = _WsClientConnection(handle.host, handle.port, timeout=30)
                slow = QuerySpec(
                    op="matrix", window=WindowSpec(end=599, length=600)
                )
                for i in range(3):
                    conn.send_text(json.dumps(
                        {"protocol": 1, "id": i, "spec": slow.to_dict()}
                    ))
                envelopes = [
                    json.loads(conn.recv_message()) for _ in range(3)
                ]
                conn.close()
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline and not any(
                    "rejected over the per-connection" in r.message
                    for r in caplog.records
                ):
                    time.sleep(0.05)
            with TsubasaRemoteClient(handle.address) as remote:
                stats = remote.stats()
            handle.stop()
        assert sum(1 for e in envelopes if not e["ok"]) == 2
        assert stats["server"]["overload_rejections"] == 2
        assert any(
            "2 request(s) rejected over the per-connection" in r.message
            for r in caplog.records
        )
