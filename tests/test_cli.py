"""Tests for the tsubasa command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.npz"
    code = main(
        [
            "generate",
            "--stations", "12",
            "--points", "400",
            "--seed", "5",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture()
def store_file(tmp_path, dataset_file):
    path = tmp_path / "sketch.db"
    code = main(
        [
            "sketch",
            "--data", str(dataset_file),
            "--window-size", "50",
            "--store", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_expected_arrays(self, dataset_file):
        with np.load(dataset_file) as archive:
            assert archive["values"].shape == (12, 400)
            assert len(archive["names"]) == 12

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        main(["generate", "--stations", "4", "--points", "60",
              "--seed", "9", "--out", str(a)])
        main(["generate", "--stations", "4", "--points", "60",
              "--seed", "9", "--out", str(b)])
        with np.load(a) as fa, np.load(b) as fb:
            np.testing.assert_array_equal(fa["values"], fb["values"])


class TestSketchAndInfo:
    def test_info_reports_store(self, store_file, capsys):
        assert main(["info", "--store", str(store_file)]) == 0
        out = capsys.readouterr().out
        assert "kind=exact" in out
        assert "series=12" in out
        assert "windows=8" in out


class TestQuery:
    def test_aligned_query_prints_network(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--end", "399",
                "--length", "200",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes=12" in out

    def test_non_aligned_query_fails_cleanly(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--end", "399",
                "--length", "123",
            ]
        )
        assert code == 2
        assert "not aligned" in capsys.readouterr().err


class TestMmapBackend:
    @pytest.fixture()
    def mmap_store_dir(self, tmp_path, dataset_file):
        path = tmp_path / "sketch.mm"
        code = main(
            [
                "sketch",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--store", str(path),
                "--store-backend", "mmap",
            ]
        )
        assert code == 0
        return path

    def test_sketch_into_mmap_store(self, mmap_store_dir, capsys):
        assert (mmap_store_dir / "meta.json").is_file()
        assert (mmap_store_dir / "pairs.f64").is_file()

    def test_info_detects_mmap_layout(self, mmap_store_dir, capsys):
        assert main(["info", "--store", str(mmap_store_dir)]) == 0
        out = capsys.readouterr().out
        assert "layout=mmap" in out
        assert "windows=8" in out

    def test_query_backend_mmap(self, mmap_store_dir, capsys):
        code = main(
            [
                "query",
                "--store", str(mmap_store_dir),
                "--backend", "mmap",
                "--end", "399",
                "--length", "200",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mmap backend" in out
        assert "nodes=12" in out

    def test_query_backends_agree(self, store_file, mmap_store_dir, capsys):
        for args in (
            ["--store", str(store_file)],
            ["--store", str(store_file), "--backend", "store"],
            ["--store", str(mmap_store_dir), "--backend", "mmap"],
            ["--store", str(mmap_store_dir), "--backend", "store"],
            ["--store", str(mmap_store_dir)],
        ):
            assert main(
                ["topk", *args, "--end", "399", "--length", "200", "--k", "3"]
            ) == 0
        outputs = capsys.readouterr().out.split("top 3 correlated pairs:")
        pair_lists = [o.strip() for o in outputs if o.strip()]
        assert len(pair_lists) == 5
        assert len(set(pair_lists)) == 1

    def test_backend_mmap_rejects_sqlite_store(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--backend", "mmap",
                "--end", "399",
                "--length", "200",
            ]
        )
        assert code == 1
        assert "memory-mapped" in capsys.readouterr().err


class TestConvert:
    def test_sqlite_to_mmap_and_back(self, store_file, tmp_path, capsys):
        mm = tmp_path / "conv.mm"
        code = main(
            ["convert", "--src", str(store_file), "--dst", str(mm),
             "--dst-backend", "mmap"]
        )
        assert code == 0
        assert "migrated 8 window records" in capsys.readouterr().out
        back = tmp_path / "back.db"
        code = main(
            ["convert", "--src", str(mm), "--dst", str(back),
             "--dst-backend", "sqlite", "--batch-size", "3"]
        )
        assert code == 0
        from repro.storage.serialize import load_sketch
        from repro.storage.sqlite_store import SqliteSketchStore

        with SqliteSketchStore(store_file) as original, \
                SqliteSketchStore(back) as roundtripped:
            a = load_sketch(original)
            b = load_sketch(roundtripped)
        np.testing.assert_array_equal(a.covs, b.covs)
        np.testing.assert_array_equal(a.means, b.means)
        assert a.names == b.names

    def test_converted_store_answers_queries(self, store_file, tmp_path, capsys):
        mm = tmp_path / "conv.mm"
        assert main(
            ["convert", "--src", str(store_file), "--dst", str(mm),
             "--dst-backend", "mmap"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", "--store", str(mm), "--backend", "mmap",
             "--end", "399", "--length", "200", "--theta", "0.4"]
        ) == 0
        assert "nodes=12" in capsys.readouterr().out


class TestStream:
    def test_stream_reports_updates(self, dataset_file, capsys):
        code = main(
            [
                "stream",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--initial", "200",
                "--updates", "3",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("t=") == 3

    def test_initial_too_large_fails(self, dataset_file, capsys):
        code = main(
            [
                "stream",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--initial", "400",
            ]
        )
        assert code == 2


class TestErrorHandling:
    def test_library_errors_become_exit_code_one(self, tmp_path, dataset_file):
        # Window size larger than the series -> SegmentationError inside.
        code = main(
            [
                "sketch",
                "--data", str(dataset_file),
                "--window-size", "1000",
                "--store", str(tmp_path / "x.db"),
            ]
        )
        assert code == 1


class TestTopk:
    def test_prints_pairs(self, store_file, capsys):
        code = main(
            [
                "topk",
                "--store", str(store_file),
                "--end", "399",
                "--length", "400",
                "--k", "3",
                "--anticorrelated",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("corr=") == 6
        assert "top 3 correlated pairs" in out

    def test_non_aligned_fails(self, store_file, capsys):
        code = main(
            [
                "topk",
                "--store", str(store_file),
                "--end", "399",
                "--length", "123",
            ]
        )
        assert code == 2


class TestSweep:
    def test_prints_positions_and_dynamics(self, store_file, capsys):
        code = main(
            [
                "sweep",
                "--store", str(store_file),
                "--windows", "4",
                "--stride", "2",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # 8 windows, length 4, stride 2 -> positions 0, 2, 4.
        assert out.count("edges") >= 3
        assert "mean churn" in out


class TestSignificanceOption:
    def test_alpha_derives_theta(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--end", "399",
                "--length", "400",
                "--alpha", "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "significance level 0.01 -> theta=" in out


class TestMap:
    def test_renders_degree_map(self, dataset_file, capsys):
        code = main(
            [
                "map",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--end", "399",
                "--length", "400",
                "--theta", "0.3",
                "--width", "30",
                "--height", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes              12" in out
        # The map body has 8 rows of width 30.
        map_lines = [l for l in out.split("\n") if len(l) == 30]
        assert len(map_lines) >= 8
