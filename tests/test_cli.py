"""Tests for the tsubasa command-line interface."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.npz"
    code = main(
        [
            "generate",
            "--stations", "12",
            "--points", "400",
            "--seed", "5",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture()
def store_file(tmp_path, dataset_file):
    path = tmp_path / "sketch.db"
    code = main(
        [
            "sketch",
            "--data", str(dataset_file),
            "--window-size", "50",
            "--store", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_expected_arrays(self, dataset_file):
        with np.load(dataset_file) as archive:
            assert archive["values"].shape == (12, 400)
            assert len(archive["names"]) == 12

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        main(["generate", "--stations", "4", "--points", "60",
              "--seed", "9", "--out", str(a)])
        main(["generate", "--stations", "4", "--points", "60",
              "--seed", "9", "--out", str(b)])
        with np.load(a) as fa, np.load(b) as fb:
            np.testing.assert_array_equal(fa["values"], fb["values"])


class TestSketchAndInfo:
    def test_info_reports_store(self, store_file, capsys):
        assert main(["info", "--store", str(store_file)]) == 0
        out = capsys.readouterr().out
        assert "kind=exact" in out
        assert "series=12" in out
        assert "windows=8" in out


class TestQuery:
    def test_aligned_query_prints_network(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--end", "399",
                "--length", "200",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes=12" in out

    def test_non_aligned_query_fails_cleanly(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--end", "399",
                "--length", "123",
            ]
        )
        assert code == 2
        assert "not aligned" in capsys.readouterr().err


class TestMmapBackend:
    @pytest.fixture()
    def mmap_store_dir(self, tmp_path, dataset_file):
        path = tmp_path / "sketch.mm"
        code = main(
            [
                "sketch",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--store", str(path),
                "--store-backend", "mmap",
            ]
        )
        assert code == 0
        return path

    def test_sketch_into_mmap_store(self, mmap_store_dir, capsys):
        assert (mmap_store_dir / "meta.json").is_file()
        assert (mmap_store_dir / "pairs.f64").is_file()

    def test_info_detects_mmap_layout(self, mmap_store_dir, capsys):
        assert main(["info", "--store", str(mmap_store_dir)]) == 0
        out = capsys.readouterr().out
        assert "layout=mmap" in out
        assert "windows=8" in out

    def test_query_backend_mmap(self, mmap_store_dir, capsys):
        code = main(
            [
                "query",
                "--store", str(mmap_store_dir),
                "--backend", "mmap",
                "--end", "399",
                "--length", "200",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mmap backend" in out
        assert "nodes=12" in out

    def test_query_backends_agree(self, store_file, mmap_store_dir, capsys):
        for args in (
            ["--store", str(store_file)],
            ["--store", str(store_file), "--backend", "store"],
            ["--store", str(mmap_store_dir), "--backend", "mmap"],
            ["--store", str(mmap_store_dir), "--backend", "store"],
            ["--store", str(mmap_store_dir)],
        ):
            assert main(
                ["topk", *args, "--end", "399", "--length", "200", "--k", "3"]
            ) == 0
        outputs = capsys.readouterr().out.split("top 3 correlated pairs:")
        pair_lists = [o.strip() for o in outputs if o.strip()]
        assert len(pair_lists) == 5
        assert len(set(pair_lists)) == 1

    def test_backend_mmap_rejects_sqlite_store(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--backend", "mmap",
                "--end", "399",
                "--length", "200",
            ]
        )
        assert code == 2  # SketchError
        assert "memory-mapped" in capsys.readouterr().err


class TestConvert:
    def test_sqlite_to_mmap_and_back(self, store_file, tmp_path, capsys):
        mm = tmp_path / "conv.mm"
        code = main(
            ["convert", "--src", str(store_file), "--dst", str(mm),
             "--dst-backend", "mmap"]
        )
        assert code == 0
        assert "migrated 8 window records" in capsys.readouterr().out
        back = tmp_path / "back.db"
        code = main(
            ["convert", "--src", str(mm), "--dst", str(back),
             "--dst-backend", "sqlite", "--batch-size", "3"]
        )
        assert code == 0
        from repro.storage.serialize import load_sketch
        from repro.storage.sqlite_store import SqliteSketchStore

        with SqliteSketchStore(store_file) as original, \
                SqliteSketchStore(back) as roundtripped:
            a = load_sketch(original)
            b = load_sketch(roundtripped)
        np.testing.assert_array_equal(a.covs, b.covs)
        np.testing.assert_array_equal(a.means, b.means)
        assert a.names == b.names

    def test_converted_store_answers_queries(self, store_file, tmp_path, capsys):
        mm = tmp_path / "conv.mm"
        assert main(
            ["convert", "--src", str(store_file), "--dst", str(mm),
             "--dst-backend", "mmap"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", "--store", str(mm), "--backend", "mmap",
             "--end", "399", "--length", "200", "--theta", "0.4"]
        ) == 0
        assert "nodes=12" in capsys.readouterr().out


class TestStream:
    def test_stream_reports_updates(self, dataset_file, capsys):
        code = main(
            [
                "stream",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--initial", "200",
                "--updates", "3",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("t=") == 3

    def test_initial_too_large_fails(self, dataset_file, capsys):
        code = main(
            [
                "stream",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--initial", "400",
            ]
        )
        assert code == 2


class TestErrorHandling:
    """TsubasaError subclasses map to distinct exit codes, no tracebacks."""

    def test_segmentation_error_exit_code(self, tmp_path, dataset_file, capsys):
        # Window size larger than the series -> SegmentationError inside.
        code = main(
            [
                "sketch",
                "--data", str(dataset_file),
                "--window-size", "1000",
                "--store", str(tmp_path / "x.db"),
            ]
        )
        assert code == 4
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_sketch_error_exit_code(self, store_file, capsys):
        # Non-aligned query without raw data -> SketchError.
        code = main(
            ["query", "--store", str(store_file), "--end", "399",
             "--length", "123"]
        )
        assert code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_storage_error_exit_code(self, tmp_path, capsys):
        # A store with no metadata -> StorageError.
        empty = tmp_path / "empty.db"
        from repro.storage.sqlite_store import SqliteSketchStore

        with SqliteSketchStore(empty):
            pass
        code = main(["info", "--store", str(empty)])
        assert code == 5
        assert "Traceback" not in capsys.readouterr().err

    def test_exit_codes_are_distinct(self):
        from repro.cli import exit_code_for
        from repro.exceptions import (
            DataError,
            SegmentationError,
            ServiceError,
            SketchError,
            StorageError,
            StreamError,
            TsubasaError,
        )

        codes = [
            exit_code_for(exc("boom"))
            for exc in (TsubasaError, SketchError, DataError,
                        SegmentationError, StorageError, StreamError,
                        ServiceError)
        ]
        assert codes == [1, 2, 3, 4, 5, 6, 7]
        assert len(set(codes)) == len(codes)

    def test_unmapped_subclass_inherits_parent_code(self):
        from repro.cli import exit_code_for
        from repro.exceptions import StorageError

        class CustomStorageError(StorageError):
            pass

        assert exit_code_for(CustomStorageError("boom")) == 5


class TestTopk:
    def test_prints_pairs(self, store_file, capsys):
        code = main(
            [
                "topk",
                "--store", str(store_file),
                "--end", "399",
                "--length", "400",
                "--k", "3",
                "--anticorrelated",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("corr=") == 6
        assert "top 3 correlated pairs" in out

    def test_non_aligned_fails(self, store_file, capsys):
        code = main(
            [
                "topk",
                "--store", str(store_file),
                "--end", "399",
                "--length", "123",
            ]
        )
        assert code == 2


class TestServe:
    """The JSON-lines query service on stdin/stdout."""

    def serve(self, monkeypatch, capsys, store, lines, extra_args=()):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        code = main(["serve", "--store", str(store), *extra_args])
        captured = capsys.readouterr()
        return code, [json.loads(l) for l in captured.out.splitlines()], captured.err

    def test_serves_specs_in_order(self, store_file, monkeypatch, capsys):
        code, responses, err = self.serve(
            monkeypatch, capsys, store_file,
            [
                '{"id": "net", "op": "network", '
                '"window": {"end": 399, "length": 200}, "theta": 0.4}',
                '{"id": "tk", "op": "top_k", '
                '"window": {"end": 399, "length": 200}, "k": 3}',
            ],
        )
        assert code == 0
        assert [r["id"] for r in responses] == ["net", "tk"]
        assert all(r["ok"] for r in responses)
        assert responses[0]["result"]["n_nodes"] == 12
        assert len(responses[1]["result"]["pairs"]) == 3
        assert responses[0]["provenance"]["backend"] == "memory"
        assert "served 2 ok / 0 failed" in err

    def test_duplicate_windows_coalesce(self, store_file, monkeypatch, capsys):
        lines = [
            json.dumps({"op": "degree",
                        "window": {"end": 399, "length": 200},
                        "theta": 0.4})
        ] * 6
        code, responses, err = self.serve(
            monkeypatch, capsys, store_file, lines
        )
        assert code == 0
        assert len(responses) == 6
        assert all(r["ok"] for r in responses)
        degrees = {json.dumps(r["result"], sort_keys=True) for r in responses}
        assert len(degrees) == 1
        # Every duplicate is deduplicated one way or the other: coalesced
        # onto the in-flight computation, or replayed from the serve
        # default's result cache once the first completed. Which of the two
        # fires depends on arrival timing; recomputation never does.
        deduplicated = sum(
            r["provenance"]["coalesced"] or r["provenance"]["cache"]
            for r in responses
        )
        assert deduplicated == 5
        assert "1 matrices computed" in err

    def test_store_backend_serves(self, store_file, monkeypatch, capsys):
        code, responses, _ = self.serve(
            monkeypatch, capsys, store_file,
            ['{"op": "matrix", "window": {"first_window": 0, "n_windows": 4}}'],
            extra_args=["--backend", "store"],
        )
        assert code == 0
        assert responses[0]["ok"]
        assert responses[0]["provenance"]["backend"] == "store"
        assert len(responses[0]["result"]["values"]) == 12

    def test_bad_requests_get_error_envelopes(
        self, store_file, monkeypatch, capsys
    ):
        code, responses, err = self.serve(
            monkeypatch, capsys, store_file,
            [
                "this is not json",
                '{"op": "nope", "window": {"end": 399, "length": 200}}',
                '{"op": "matrix", "window": {"end": 399, "length": 123}}',
                '{"op": "matrix", "window": {"end": 399, "length": 200}}',
            ],
        )
        assert code == 0  # bad requests never kill the service
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert responses[0]["error"]["type"] == "JSONDecodeError"
        assert responses[1]["error"]["type"] == "DataError"
        assert responses[1]["error"]["code"] == 3
        assert responses[2]["error"]["type"] == "SketchError"
        assert responses[2]["error"]["code"] == 2
        # The summary counts parse-stage rejections alongside query failures.
        assert "3 failed" in err
        assert "2 malformed" in err

    def test_blank_lines_skipped(self, store_file, monkeypatch, capsys):
        code, responses, _ = self.serve(
            monkeypatch, capsys, store_file,
            ["", '{"op": "matrix", "window": {"end": 399, "length": 200}}', ""],
        )
        assert code == 0
        assert len(responses) == 1

    def test_non_library_errors_become_envelopes(
        self, store_file, monkeypatch, capsys
    ):
        """A request whose computation raises an unexpected (non-Tsubasa)
        error gets an error envelope; later requests still get responses
        and the process exits cleanly."""
        from repro.api.client import TsubasaClient

        real = TsubasaClient.compute_matrix

        def explode_on_short_window(self, spec, window):
            if window.length == 50:
                raise RuntimeError("numpy blew up")
            return real(self, spec, window)

        monkeypatch.setattr(TsubasaClient, "compute_matrix",
                            explode_on_short_window)
        code, responses, err = self.serve(
            monkeypatch, capsys, store_file,
            [
                '{"op": "matrix", "window": {"end": 399, "length": 50}}',
                '{"op": "matrix", "window": {"end": 399, "length": 200}}',
            ],
        )
        assert code == 0
        assert [r["ok"] for r in responses] == [False, True]
        assert responses[0]["error"]["type"] == "RuntimeError"
        assert "numpy blew up" in responses[0]["error"]["message"]
        assert "Traceback" not in err

    def test_bounded_pending_preserves_order(
        self, store_file, monkeypatch, capsys
    ):
        """--max-pending 1 forces the reader to wait on the printer; every
        response still arrives, in submission order."""
        lines = [
            json.dumps({"id": i, "op": "degree",
                        "window": {"end": 399, "length": 200},
                        "theta": 0.4})
            for i in range(10)
        ]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        code = main(["serve", "--store", str(store_file),
                     "--max-pending", "1"])
        captured = capsys.readouterr()
        responses = [json.loads(l) for l in captured.out.splitlines()]
        assert code == 0
        assert [r["id"] for r in responses] == list(range(10))
        assert all(r["ok"] for r in responses)

    def test_consumer_hangup_exits_cleanly(
        self, store_file, monkeypatch, capsys
    ):
        """A broken stdout pipe (e.g. `serve | head`) must not crash serve
        or wedge the reader against the bounded response queue."""
        import sys as _sys

        class BrokenAfterOne:
            def __init__(self, real):
                self.real = real
                self.writes = 0

            def write(self, text):
                self.writes += 1
                if self.writes > 1:
                    raise BrokenPipeError("consumer gone")
                return self.real.write(text)

            def flush(self):
                self.real.flush()

        broken = BrokenAfterOne(_sys.stdout)
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "".join(
                    json.dumps({"op": "matrix",
                                "window": {"end": 399, "length": 200}}) + "\n"
                    for _ in range(6)
                )
            ),
        )
        monkeypatch.setattr("sys.stdout", broken)
        code = main(["serve", "--store", str(store_file),
                     "--max-pending", "2"])
        captured = capsys.readouterr()
        assert code == 0  # no traceback, no hang
        assert len(captured.out.splitlines()) == 1  # one response got out

    def test_store_backend_rejects_multiple_workers(
        self, store_file, monkeypatch, capsys
    ):
        """StoreProvider is not thread-safe; the service refuses workers>1."""
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        code = main(
            ["serve", "--store", str(store_file), "--backend", "store",
             "--workers", "4"]
        )
        assert code == 7  # ServiceError: service misconfiguration
        assert "not safe for concurrent reads" in capsys.readouterr().err


class TestSweep:
    def test_prints_positions_and_dynamics(self, store_file, capsys):
        code = main(
            [
                "sweep",
                "--store", str(store_file),
                "--windows", "4",
                "--stride", "2",
                "--theta", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # 8 windows, length 4, stride 2 -> positions 0, 2, 4.
        assert out.count("edges") >= 3
        assert "mean churn" in out


class TestSignificanceOption:
    def test_alpha_derives_theta(self, store_file, capsys):
        code = main(
            [
                "query",
                "--store", str(store_file),
                "--end", "399",
                "--length", "400",
                "--alpha", "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "significance level 0.01 -> theta=" in out


class TestMap:
    def test_renders_degree_map(self, dataset_file, capsys):
        code = main(
            [
                "map",
                "--data", str(dataset_file),
                "--window-size", "50",
                "--end", "399",
                "--length", "400",
                "--theta", "0.3",
                "--width", "30",
                "--height", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes              12" in out
        # The map body has 8 rows of width 30.
        map_lines = [l for l in out.split("\n") if len(l) == 30]
        assert len(map_lines) >= 8


class TestServeProtocolFrames:
    """The JSON-lines mode speaks the versioned wire protocol."""

    def serve(self, monkeypatch, capsys, store, lines, extra_args=()):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        code = main(["serve", "--store", str(store), *extra_args])
        captured = capsys.readouterr()
        return code, [json.loads(l) for l in captured.out.splitlines()], captured.err

    def test_framed_requests(self, store_file, monkeypatch, capsys):
        code, responses, err = self.serve(
            monkeypatch, capsys, store_file,
            [
                json.dumps({
                    "protocol": 1,
                    "id": "framed-1",
                    "spec": {"op": "top_k",
                             "window": {"end": 399, "length": 200}, "k": 2},
                }),
            ],
        )
        assert code == 0
        assert responses[0]["id"] == "framed-1"
        assert responses[0]["ok"] is True
        assert responses[0]["protocol"] == 1
        assert len(responses[0]["result"]["pairs"]) == 2
        assert "served 1 ok / 0 failed" in err

    def test_version_mismatch_rejected(self, store_file, monkeypatch, capsys):
        code, responses, err = self.serve(
            monkeypatch, capsys, store_file,
            [
                json.dumps({
                    "protocol": 9,
                    "id": "future",
                    "spec": {"op": "matrix",
                             "window": {"end": 399, "length": 200}},
                }),
            ],
        )
        assert code == 0
        assert responses[0]["ok"] is False
        assert "unsupported protocol version 9" in responses[0]["error"]["message"]
        assert responses[0]["id"] == "future"
        assert "1 malformed" in err

    def test_subscribe_rejected_on_stdin(self, store_file, monkeypatch, capsys):
        code, responses, _ = self.serve(
            monkeypatch, capsys, store_file,
            [
                json.dumps({"op": "subscribe",
                            "window": {"start": 0, "stop": 400},
                            "theta": 0.5}),
            ],
        )
        assert code == 0
        assert responses[0]["ok"] is False
        assert "--http" in responses[0]["error"]["message"]

    def test_hangup_reports_discarded_responses(
        self, store_file, monkeypatch, capsys
    ):
        """The summary counts what the consumer saw; completions after a
        hangup are 'discarded', not silently folded into ok."""
        import sys as _sys

        class BrokenAfterOne:
            def __init__(self, real):
                self.real = real
                self.writes = 0

            def write(self, text):
                self.writes += 1
                if self.writes > 1:
                    raise BrokenPipeError("consumer gone")
                return self.real.write(text)

            def flush(self):
                self.real.flush()

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "".join(
                    json.dumps({"op": "matrix",
                                "window": {"end": 399, "length": 200}}) + "\n"
                    for _ in range(5)
                )
            ),
        )
        monkeypatch.setattr("sys.stdout", BrokenAfterOne(_sys.stdout))
        code = main(["serve", "--store", str(store_file)])
        captured = capsys.readouterr()
        assert code == 0
        assert len(captured.out.splitlines()) == 1
        assert "served 1 ok / 0 failed" in captured.err
        assert "discarded after hangup" in captured.err


class TestServeStdinSubscribe:
    """`--stream-data` wires the subscribe op through the stdin transport."""

    class _BreaksAfter:
        """A stdout that hangs up after N lines — the only way to end an
        endless replay-driven subscription deterministically in a test."""

        def __init__(self, real, allowed):
            self.real = real
            self.allowed = allowed

        def write(self, text):
            if self.allowed <= 0:
                raise BrokenPipeError("consumer gone")
            self.allowed -= 1
            return self.real.write(text)

        def flush(self):
            self.real.flush()

    def test_subscribe_streams_events_as_json_lines(
        self, store_file, dataset_file, monkeypatch, capsys
    ):
        import sys as _sys

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(json.dumps({
                "protocol": 1,
                "id": "sub-1",
                "spec": {"op": "subscribe",
                         "window": {"end": 399, "length": 400},
                         "theta": 0.8},
            }) + "\n"),
        )
        monkeypatch.setattr(
            "sys.stdout", self._BreaksAfter(_sys.stdout, allowed=3)
        )
        code = main([
            "serve", "--store", str(store_file),
            "--stream-data", str(dataset_file),
            "--stream-interval", "0.01",
        ])
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert code == 0
        assert len(lines) == 3
        ack, *events = lines
        assert ack["id"] == "sub-1" and ack["ok"] is True
        assert ack["result"]["subscribed"] is True
        assert ack["result"]["window_points"] == 400
        for seq, event in enumerate(events):
            assert event["id"] == "sub-1"
            assert event["seq"] == seq
            assert "n_edges" in event["event"]
        assert "served 3 ok / 0 failed" in captured.err
        assert "discarded after hangup" in captured.err

    def test_subscribe_theta_below_base_is_an_error_envelope(
        self, store_file, dataset_file, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(json.dumps({
                "protocol": 1,
                "id": "low",
                "spec": {"op": "subscribe",
                         "window": {"end": 399, "length": 400},
                         "theta": 0.5},
            }) + "\n"),
        )
        code = main([
            "serve", "--store", str(store_file),
            "--stream-data", str(dataset_file),
            "--stream-interval", "0.01",
        ])
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert code == 0
        assert len(lines) == 1
        assert lines[0]["ok"] is False
        assert lines[0]["id"] == "low"
        assert "base threshold" in lines[0]["error"]["message"]
        # A well-formed request the hub refuses is failed, not malformed.
        assert "0 malformed" in captured.err


class TestTrimCli:
    def test_trim_mmap_store(self, tmp_path, dataset_file, capsys):
        store = tmp_path / "sketch.mm"
        assert main(["sketch", "--data", str(dataset_file),
                     "--window-size", "50", "--store", str(store),
                     "--store-backend", "mmap"]) == 0
        from repro.storage.mmap_store import MmapStore

        with MmapStore(store) as handle:
            handle._ensure_capacity(64)
        capsys.readouterr()
        assert main(["trim", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "trimmed" in out
        assert "8 committed windows" in out
        # The store still answers queries after compaction.
        assert main(["query", "--store", str(store), "--backend", "mmap",
                     "--end", "399", "--length", "200",
                     "--theta", "0.4"]) == 0

    def test_trim_rejects_sqlite(self, store_file, capsys):
        code = main(["trim", "--store", str(store_file)])
        assert code == 5  # StorageError
        assert "memory-mapped" in capsys.readouterr().err
