"""Unit tests for repro.core.segmentation (plans, queries, alignment)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segmentation import BasicWindowPlan, QueryWindow
from repro.exceptions import SegmentationError


class TestQueryWindow:
    def test_start_stop(self):
        q = QueryWindow(end=99, length=50)
        assert q.start == 50
        assert q.stop == 100
        assert q.slice() == slice(50, 100)

    def test_full_range(self):
        q = QueryWindow(end=9, length=10)
        assert q.start == 0

    def test_rejects_nonpositive_length(self):
        with pytest.raises(SegmentationError):
            QueryWindow(end=10, length=0)

    def test_rejects_start_before_zero(self):
        with pytest.raises(SegmentationError):
            QueryWindow(end=5, length=10)


class TestBasicWindowPlan:
    def test_even_division(self):
        plan = BasicWindowPlan(length=100, window_size=25)
        assert plan.n_windows == 4
        np.testing.assert_array_equal(plan.boundaries, [0, 25, 50, 75, 100])
        np.testing.assert_array_equal(plan.sizes, [25, 25, 25, 25])

    def test_trailing_remainder(self):
        plan = BasicWindowPlan(length=110, window_size=25)
        assert plan.n_windows == 5
        assert plan.boundaries[-1] == 110
        assert plan.sizes[-1] == 10

    def test_window_range(self):
        plan = BasicWindowPlan(length=100, window_size=30)
        assert plan.window_range(0) == (0, 30)
        assert plan.window_range(3) == (90, 100)
        with pytest.raises(SegmentationError):
            plan.window_range(4)

    def test_window_of(self):
        plan = BasicWindowPlan(length=100, window_size=30)
        assert plan.window_of(0) == 0
        assert plan.window_of(29) == 0
        assert plan.window_of(30) == 1
        assert plan.window_of(99) == 3
        with pytest.raises(SegmentationError):
            plan.window_of(100)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SegmentationError):
            BasicWindowPlan(length=10, window_size=0)
        with pytest.raises(SegmentationError):
            BasicWindowPlan(length=10, window_size=20)


class TestAlign:
    def test_aligned_query(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        sel = plan.align(QueryWindow(end=199, length=100))
        assert sel.is_aligned
        np.testing.assert_array_equal(sel.full_windows, [2, 3])
        assert sel.n_segments == 2

    def test_full_span(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        sel = plan.align(QueryWindow(end=199, length=200))
        assert sel.is_aligned
        np.testing.assert_array_equal(sel.full_windows, [0, 1, 2, 3])

    def test_partial_head(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        sel = plan.align(QueryWindow(end=199, length=120))
        assert sel.head == (80, 100)
        assert sel.tail is None
        np.testing.assert_array_equal(sel.full_windows, [2, 3])

    def test_partial_tail(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        sel = plan.align(QueryWindow(end=179, length=180))
        assert sel.head is None
        assert sel.tail == (150, 180)
        np.testing.assert_array_equal(sel.full_windows, [0, 1, 2])

    def test_partial_both_ends(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        sel = plan.align(QueryWindow(end=169, length=140))
        assert sel.head == (30, 50)
        assert sel.tail == (150, 170)
        np.testing.assert_array_equal(sel.full_windows, [1, 2])
        assert sel.n_segments == 4

    def test_query_inside_single_window(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        sel = plan.align(QueryWindow(end=40, length=20))
        assert sel.full_windows.size == 0
        assert sel.head == (21, 41)
        assert sel.tail is None

    def test_query_straddling_two_windows_no_full(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        sel = plan.align(QueryWindow(end=60, length=30))
        # Spans [31, 61): no basic window fully inside.
        assert sel.full_windows.size == 0
        assert sel.head == (31, 61)

    def test_rejects_out_of_range(self):
        plan = BasicWindowPlan(length=200, window_size=50)
        with pytest.raises(SegmentationError):
            plan.align(QueryWindow(end=250, length=10))

    @given(
        length=st.integers(2, 500),
        window_size=st.integers(1, 60),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_segments_tile_query(self, length, window_size, data):
        """Head + full windows + tail exactly tile the query range."""
        if window_size > length:
            window_size = length
        plan = BasicWindowPlan(length=length, window_size=window_size)
        qlen = data.draw(st.integers(1, length))
        end = data.draw(st.integers(qlen - 1, length - 1))
        sel = plan.align(QueryWindow(end=end, length=qlen))

        ranges = []
        if sel.head is not None:
            ranges.append(sel.head)
        bounds = plan.boundaries
        for j in sel.full_windows:
            ranges.append((int(bounds[j]), int(bounds[j + 1])))
        if sel.tail is not None:
            ranges.append(sel.tail)

        # Non-empty, contiguous, and covering exactly [start, stop).
        assert ranges
        assert ranges[0][0] == end - qlen + 1
        assert ranges[-1][1] == end + 1
        for (_, stop_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert stop_a == start_b
        assert all(stop > start for start, stop in ranges)


class TestAlignedQuery:
    def test_roundtrip(self):
        plan = BasicWindowPlan(length=300, window_size=50)
        query = plan.aligned_query(first_window=2, n_windows=3)
        assert query.start == 100
        assert query.stop == 250
        sel = plan.align(query)
        assert sel.is_aligned
        np.testing.assert_array_equal(sel.full_windows, [2, 3, 4])

    def test_rejects_out_of_range(self):
        plan = BasicWindowPlan(length=300, window_size=50)
        with pytest.raises(SegmentationError):
            plan.aligned_query(first_window=4, n_windows=3)
        with pytest.raises(SegmentationError):
            plan.aligned_query(first_window=0, n_windows=0)
