"""Tests for repro.analysis.geography (geographic network structure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.geography import (
    correlation_vs_distance,
    degree_field,
    edge_lengths,
    teleconnection_edges,
)
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.data.grid import haversine_km
from repro.exceptions import DataError


@pytest.fixture()
def geo_network():
    """Three nodes: two nearby (NYC, Philly) and one far (LA)."""
    names = ["nyc", "phl", "lax"]
    coords = {
        "nyc": (40.71, -74.01),
        "phl": (39.95, -75.17),
        "lax": (34.05, -118.24),
    }
    values = np.array(
        [[1.0, 0.9, 0.8], [0.9, 1.0, 0.1], [0.8, 0.1, 1.0]]
    )
    matrix = CorrelationMatrix(names=names, values=values)
    return ClimateNetwork.from_matrix(matrix, theta=0.5, coordinates=coords)


class TestEdgeLengths:
    def test_lengths_match_haversine(self, geo_network):
        lengths = edge_lengths(geo_network)
        # Edge pairs follow matrix row order: nyc(0) precedes lax(2).
        assert set(lengths) == {("nyc", "lax"), ("nyc", "phl")}
        expected = haversine_km(40.71, -74.01, 39.95, -75.17)
        assert lengths[("nyc", "phl")] == pytest.approx(expected)

    def test_requires_coordinates(self):
        matrix = CorrelationMatrix(names=["a", "b"], values=np.eye(2))
        network = ClimateNetwork.from_matrix(matrix, 0.5)
        with pytest.raises(DataError):
            edge_lengths(network)


class TestTeleconnectionEdges:
    def test_only_long_edges(self, geo_network):
        far = teleconnection_edges(geo_network, min_km=2000.0)
        assert len(far) == 1
        a, b, dist, corr = far[0]
        assert (a, b) == ("nyc", "lax")
        assert dist > 3900
        assert corr == pytest.approx(0.8)

    def test_zero_cutoff_returns_all_edges(self, geo_network):
        assert len(teleconnection_edges(geo_network, min_km=0.0)) == 2

    def test_sorted_longest_first(self, geo_network):
        far = teleconnection_edges(geo_network, min_km=0.0)
        assert far[0][2] >= far[1][2]

    def test_rejects_negative_cutoff(self, geo_network):
        with pytest.raises(DataError):
            teleconnection_edges(geo_network, min_km=-1.0)


class TestDegreeField:
    def test_rows_in_name_order(self, geo_network):
        field = degree_field(geo_network)
        assert field.shape == (3, 3)
        np.testing.assert_allclose(field[0], [40.71, -74.01, 2.0])
        np.testing.assert_allclose(field[1][2], 1.0)  # phl degree


class TestCorrelationVsDistance:
    def test_decay_on_synthetic_field(self):
        """The generator's spatial structure shows up as a decaying curve."""
        from repro.data.synthetic import generate_station_dataset

        dataset = generate_station_dataset(n_stations=60, n_points=1500,
                                           seed=17)
        matrix = CorrelationMatrix(
            names=dataset.names, values=np.corrcoef(dataset.values)
        )
        centers, means, counts = correlation_vs_distance(
            matrix, dataset.coordinates, bin_km=800.0
        )
        assert counts.sum() == 60 * 59 // 2
        # Nearest bin should show materially stronger correlation than the
        # farthest populated bin.
        assert means[0] > means[-1] + 0.1

    def test_max_km_filters(self, geo_network):
        matrix = CorrelationMatrix(
            names=geo_network.names, values=geo_network.weights
        )
        coords = geo_network.coordinates
        _, __, counts_all = correlation_vs_distance(matrix, coords, 500.0)
        _, __, counts_near = correlation_vs_distance(
            matrix, coords, 500.0, max_km=1000.0
        )
        assert counts_all.sum() == 3
        assert counts_near.sum() == 1  # only nyc-phl is within 1000 km

    def test_rejects_bad_args(self, geo_network):
        matrix = CorrelationMatrix(
            names=geo_network.names, values=geo_network.weights
        )
        with pytest.raises(DataError):
            correlation_vs_distance(matrix, geo_network.coordinates, 0.0)
        with pytest.raises(DataError):
            correlation_vs_distance(matrix, {}, 500.0)
