"""Regression tests pinning every Lemma 1 kernel to one convention.

Earlier revisions carried three hand-written copies of the Lemma 1
combination math with subtly different normalizations: the full-matrix path
divided the pooled variance by the total count and rescaled by
``sqrt(total)``, while the row path left it undivided. All kernels now share
one implementation (:func:`repro.core.lemma1.pooled_deltas_scales`); these
tests pin every public entry point — matrix, streaming matrix, row block,
single row, pair — against the raw-data baseline and against each other, on
variable-size windows where the conventions would diverge if they ever
re-forked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline.naive import baseline_correlation_matrix
from repro.core.exact import query_correlation_row
from repro.core.lemma1 import (
    combine_matrix,
    combine_matrix_streaming,
    combine_pair_arrays,
    combine_row,
    combine_rows,
)
from repro.core.sketch import build_sketch
from repro.exceptions import SketchError
from repro.parallel.executor import query_partition


@pytest.fixture(scope="module")
def variable_sketch(rng=np.random.default_rng(77)):
    """Sketch with a short trailing window (sizes 40, 40, 40, 40, 40, 17)."""
    data = rng.normal(size=(9, 217))
    data[3] += 0.8 * data[0]  # induce some real correlation structure
    data[7] -= 0.5 * data[1]
    return data, build_sketch(data, window_size=40)


class TestKernelsAgainstBaseline:
    """Satellite: one kernel, one convention, pinned to the raw baseline."""

    def test_matrix_matches_baseline(self, variable_sketch):
        data, sketch = variable_sketch
        got = combine_matrix(sketch.means, sketch.stds, sketch.covs, sketch.sizes)
        np.testing.assert_allclose(
            got, baseline_correlation_matrix(data), atol=1e-10
        )

    def test_streaming_matrix_matches_baseline(self, variable_sketch):
        data, sketch = variable_sketch

        def chunks():
            yield sketch.covs[:2]
            yield sketch.covs[2:5]
            yield sketch.covs[5:]

        got = combine_matrix_streaming(
            sketch.means, sketch.stds, sketch.sizes.astype(float), chunks()
        )
        np.testing.assert_allclose(
            got, baseline_correlation_matrix(data), atol=1e-10
        )

    def test_row_kernel_matches_baseline(self, variable_sketch):
        data, sketch = variable_sketch
        reference = baseline_correlation_matrix(data)
        for row in range(sketch.n_series):
            got = combine_row(
                sketch.means,
                sketch.stds,
                sketch.covs[:, row, :],
                sketch.sizes.astype(float),
                row,
            )
            np.testing.assert_allclose(got, reference[row], atol=1e-10)

    def test_pair_kernel_matches_baseline(self, variable_sketch):
        data, sketch = variable_sketch
        reference = baseline_correlation_matrix(data)
        got = combine_pair_arrays(
            sketch.means[2],
            sketch.stds[2],
            sketch.means[6],
            sketch.stds[6],
            sketch.covs[:, 2, 6],
            sketch.sizes,
        )
        assert got == pytest.approx(reference[2, 6], abs=1e-10)


class TestKernelsAgainstEachOther:
    """All paths agree to float64 round-off (one formula, one convention).

    Equality is asserted at 1e-12 rather than bit-identity: different entry
    points hit BLAS with different shapes (gemv vs gemm), which legally
    reorders the same sums.
    """

    def test_row_block_equals_matrix_rows(self, variable_sketch):
        _, sketch = variable_sketch
        full = combine_matrix(sketch.means, sketch.stds, sketch.covs, sketch.sizes)
        rows = np.array([1, 4, 8])
        block = combine_rows(
            sketch.means,
            sketch.stds,
            sketch.covs[:, rows, :],
            sketch.sizes.astype(float),
            rows,
        )
        np.testing.assert_allclose(block, full[rows], rtol=0, atol=1e-12)

    def test_query_row_equals_matrix_row(self, variable_sketch):
        _, sketch = variable_sketch
        idx = np.arange(sketch.n_windows)
        full = combine_matrix(sketch.means, sketch.stds, sketch.covs, sketch.sizes)
        for row in (0, 5):
            np.testing.assert_allclose(
                query_correlation_row(sketch, idx, row), full[row],
                rtol=0, atol=1e-12,
            )

    def test_parallel_partition_equals_matrix_rows(self, variable_sketch):
        _, sketch = variable_sketch
        full = combine_matrix(sketch.means, sketch.stds, sketch.covs, sketch.sizes)
        rows = np.array([0, 3, 7])
        _, block, _ = query_partition(
            rows, np.arange(sketch.n_windows), sketch, None
        )
        np.testing.assert_allclose(block, full[rows], rtol=0, atol=1e-12)

    def test_streaming_equals_dense(self, variable_sketch):
        _, sketch = variable_sketch
        dense = combine_matrix(sketch.means, sketch.stds, sketch.covs, sketch.sizes)
        streamed = combine_matrix_streaming(
            sketch.means,
            sketch.stds,
            sketch.sizes.astype(float),
            iter([sketch.covs]),
        )
        np.testing.assert_allclose(streamed, dense, rtol=0, atol=1e-12)


class TestStreamingValidation:
    def test_rejects_short_chunks(self, variable_sketch):
        _, sketch = variable_sketch
        with pytest.raises(SketchError):
            combine_matrix_streaming(
                sketch.means,
                sketch.stds,
                sketch.sizes.astype(float),
                iter([sketch.covs[:2]]),
            )

    def test_rejects_excess_chunks(self, variable_sketch):
        _, sketch = variable_sketch
        with pytest.raises(SketchError):
            combine_matrix_streaming(
                sketch.means,
                sketch.stds,
                sketch.sizes.astype(float),
                iter([sketch.covs, sketch.covs[:1]]),
            )

    def test_rejects_wrong_chunk_width(self, variable_sketch):
        _, sketch = variable_sketch
        with pytest.raises(SketchError):
            combine_matrix_streaming(
                sketch.means,
                sketch.stds,
                sketch.sizes.astype(float),
                iter([sketch.covs[:, :4, :4]]),
            )
