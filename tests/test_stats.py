"""Unit tests for repro.core.stats (window statistics primitives)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.stats import (
    RunningPairStats,
    RunningWindowStats,
    pair_window_stats,
    pairwise_window_correlations,
    pairwise_window_covariances,
    series_window_stats,
    window_stats,
)
from repro.exceptions import DataError

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestWindowStats:
    def test_matches_numpy(self, rng):
        values = rng.normal(size=37)
        stats = window_stats(values)
        assert stats.mean == pytest.approx(values.mean())
        assert stats.std == pytest.approx(values.std())
        assert stats.size == 37

    def test_derived_quantities(self, rng):
        values = rng.normal(size=10)
        stats = window_stats(values)
        assert stats.var == pytest.approx(values.var())
        assert stats.total == pytest.approx(values.sum())
        assert stats.sum_sq == pytest.approx(np.sum(values**2))

    def test_constant_window_has_zero_std(self):
        stats = window_stats(np.full(5, 3.25))
        assert stats.std == 0.0
        assert stats.mean == 3.25

    def test_single_point_window(self):
        stats = window_stats(np.array([7.0]))
        assert stats.size == 1
        assert stats.std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            window_stats(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(DataError):
            window_stats(np.zeros((2, 3)))

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            window_stats(np.array([1.0, np.nan]))


class TestPairWindowStats:
    def test_matches_numpy(self, rng):
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        stats = pair_window_stats(x, y)
        assert stats.corr == pytest.approx(np.corrcoef(x, y)[0, 1])
        assert stats.cov == pytest.approx(np.cov(x, y, bias=True)[0, 1])

    def test_constant_window_yields_zero(self, rng):
        x = np.full(20, 2.0)
        y = rng.normal(size=20)
        stats = pair_window_stats(x, y)
        assert stats.corr == 0.0
        assert stats.cov == 0.0

    def test_perfect_correlation(self, rng):
        x = rng.normal(size=30)
        stats = pair_window_stats(x, 3.0 * x + 1.0)
        assert stats.corr == pytest.approx(1.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataError):
            pair_window_stats(np.zeros(3), np.zeros(4))


class TestSeriesWindowStats:
    def test_matches_per_window_numpy(self, rng):
        data = rng.normal(size=(5, 100))
        bounds = np.array([0, 30, 60, 100])
        means, stds, sizes = series_window_stats(data, bounds)
        assert means.shape == (5, 3)
        assert list(sizes) == [30, 30, 40]
        for j, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            np.testing.assert_allclose(means[:, j], data[:, lo:hi].mean(axis=1))
            np.testing.assert_allclose(stds[:, j], data[:, lo:hi].std(axis=1))

    def test_rejects_bad_boundaries(self, rng):
        data = rng.normal(size=(2, 10))
        with pytest.raises(DataError):
            series_window_stats(data, np.array([0, 5, 5, 10]))
        with pytest.raises(DataError):
            series_window_stats(data, np.array([0, 5, 12]))
        with pytest.raises(DataError):
            series_window_stats(data, np.array([1, 5, 10]))

    def test_rejects_1d_input(self):
        with pytest.raises(DataError):
            series_window_stats(np.zeros(10), np.array([0, 10]))


class TestPairwiseWindowMatrices:
    def test_covariances_match_numpy(self, rng):
        data = rng.normal(size=(4, 60))
        bounds = np.array([0, 20, 40, 60])
        covs = pairwise_window_covariances(data, bounds)
        assert covs.shape == (3, 4, 4)
        for j in range(3):
            block = data[:, bounds[j] : bounds[j + 1]]
            expected = np.cov(block, bias=True)
            np.testing.assert_allclose(covs[j], expected, atol=1e-12)

    def test_correlations_match_numpy(self, rng):
        data = rng.normal(size=(4, 60))
        bounds = np.array([0, 30, 60])
        corrs = pairwise_window_correlations(data, bounds)
        for j in range(2):
            block = data[:, bounds[j] : bounds[j + 1]]
            expected = np.corrcoef(block)
            np.testing.assert_allclose(corrs[j], expected, atol=1e-12)

    def test_constant_series_rows_are_zero(self, rng):
        data = rng.normal(size=(3, 40))
        data[1] = 5.0
        corrs = pairwise_window_correlations(data, np.array([0, 20, 40]))
        assert np.all(corrs[:, 1, 0] == 0.0)
        assert np.all(corrs[:, 0, 1] == 0.0)

    def test_correlation_symmetry(self, rng):
        data = rng.normal(size=(6, 50))
        corrs = pairwise_window_correlations(data, np.array([0, 25, 50]))
        for j in range(2):
            np.testing.assert_allclose(corrs[j], corrs[j].T)


class TestRunningWindowStats:
    def test_matches_batch(self, rng):
        values = rng.normal(size=101)
        acc = RunningWindowStats()
        for v in values:
            acc.push(float(v))
        snap = acc.snapshot()
        assert snap.mean == pytest.approx(values.mean())
        assert snap.std == pytest.approx(values.std())
        assert snap.size == 101

    def test_empty_snapshot_raises(self):
        with pytest.raises(DataError):
            RunningWindowStats().snapshot()

    def test_rejects_nan(self):
        acc = RunningWindowStats()
        with pytest.raises(DataError):
            acc.push(float("nan"))

    @given(arrays(np.float64, st.integers(1, 60), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_numpy(self, values):
        acc = RunningWindowStats()
        for v in values:
            acc.push(float(v))
        snap = acc.snapshot()
        assert snap.mean == pytest.approx(values.mean(), abs=1e-6, rel=1e-9)
        assert snap.std == pytest.approx(values.std(), abs=1e-5, rel=1e-6)


class TestRunningPairStats:
    def test_matches_batch(self, rng):
        x = rng.normal(size=64)
        y = 0.3 * x + rng.normal(size=64)
        acc = RunningPairStats()
        for a, b in zip(x, y):
            acc.push(float(a), float(b))
        snap = acc.snapshot()
        expected = pair_window_stats(x, y)
        assert snap.corr == pytest.approx(expected.corr)
        assert snap.cov == pytest.approx(expected.cov)
        assert snap.size == 64

    def test_count_tracks_pushes(self):
        acc = RunningPairStats()
        acc.push(1.0, 2.0)
        acc.push(3.0, 4.0)
        assert acc.count == 2

    def test_empty_snapshot_raises(self):
        with pytest.raises(DataError):
            RunningPairStats().snapshot()

    def test_constant_side_yields_zero_corr(self):
        acc = RunningPairStats()
        for v in (1.0, 2.0, 3.0):
            acc.push(5.0, v)
        assert acc.snapshot().corr == 0.0
