"""Tests for repro.core.network (ClimateNetwork objects)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.exceptions import DataError


@pytest.fixture()
def triangle_network():
    """3-node network: edges (a, b) and (b, c)."""
    values = np.array(
        [[1.0, 0.9, 0.1], [0.9, 1.0, 0.8], [0.1, 0.8, 1.0]]
    )
    matrix = CorrelationMatrix(names=["a", "b", "c"], values=values)
    return ClimateNetwork.from_matrix(
        matrix, theta=0.5, coordinates={"a": (40.0, -100.0), "b": (41.0, -99.0)}
    )


class TestClimateNetwork:
    def test_edge_count_and_membership(self, triangle_network):
        net = triangle_network
        assert net.n_nodes == 3
        assert net.n_edges == 2
        assert net.has_edge("a", "b")
        assert net.has_edge("b", "c")
        assert not net.has_edge("a", "c")

    def test_degrees(self, triangle_network):
        net = triangle_network
        assert net.degree("b") == 2
        np.testing.assert_array_equal(net.degrees(), [1, 2, 1])

    def test_edge_weight(self, triangle_network):
        assert triangle_network.edge_weight("a", "b") == pytest.approx(0.9)

    def test_edge_set(self, triangle_network):
        assert triangle_network.edge_set() == {("a", "b"), ("b", "c")}

    def test_threshold_recorded(self, triangle_network):
        assert triangle_network.threshold == 0.5

    def test_to_networkx(self, triangle_network):
        graph = triangle_network.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.edges[("a", "b")]["weight"] == pytest.approx(0.9)
        assert graph.nodes["a"]["lat"] == 40.0
        # Node without coordinates has no lat attribute.
        assert "lat" not in graph.nodes["c"]

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            ClimateNetwork(
                names=["a", "b"],
                adjacency=np.zeros((3, 3), dtype=bool),
                weights=np.zeros((2, 2)),
                threshold=0.5,
            )
        with pytest.raises(DataError):
            ClimateNetwork(
                names=["a", "b"],
                adjacency=np.zeros((2, 2), dtype=bool),
                weights=np.zeros((3, 3)),
                threshold=0.5,
            )

    def test_empty_network(self):
        matrix = CorrelationMatrix(names=["a", "b"], values=np.eye(2))
        net = ClimateNetwork.from_matrix(matrix, theta=0.9)
        assert net.n_edges == 0
        assert net.edge_set() == set()
        assert net.to_networkx().number_of_edges() == 0
