"""Process-level chaos: SIGKILLed workers and crash loops.

The supervisor contract under fire: killing a worker in the middle of a
client batch must not surface a single failed call when the client
retries (results stay bit-identical to in-process execution), and a
worker that can never come back must trip the crash-loop guard instead
of burning spawns forever.
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.api.client import TsubasaClient
from repro.api.remote import TsubasaRemoteClient
from repro.api.resilience import RetryPolicy
from repro.api.spec import QuerySpec, WindowSpec
from repro.api.supervisor import AcceptorSupervisor, WorkerConfig
from repro.core.sketch import build_sketch
from repro.engine.providers import MmapProvider
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT is not available on this platform",
)

# 16 distinct cacheable specs per batch: aligned windows over two ends.
BATCH = [
    QuerySpec(op="matrix", window=WindowSpec(end=end, length=50 * k))
    for end in (599, 549)
    for k in range(1, 9)
]


@pytest.fixture()
def store_path(small_dataset, tmp_path):
    path = tmp_path / "sketch.mm"
    sketch = build_sketch(
        small_dataset.values, 50, names=small_dataset.names
    )
    with MmapStore(path) as store:
        save_sketch(store, sketch)
    return path


class TestWorkerKilledMidBatch:
    def test_sigkill_mid_batch_loses_zero_calls(self, store_path):
        """SIGKILL one of two workers while a batch is in flight: the
        retrying client completes every call, bit-identical to local
        execution, and the supervisor replaces the dead worker."""
        local = TsubasaClient(provider=MmapProvider(str(store_path)))
        reference = [local.execute(spec) for spec in BATCH]

        config = WorkerConfig(store=str(store_path), backend="mmap")
        supervisor = AcceptorSupervisor(
            config, workers=2, port=0, restart_backoff=0.1
        )
        with supervisor:
            with TsubasaRemoteClient(
                supervisor.address,
                retry=RetryPolicy(jitter=False, base_backoff=0.05),
            ) as client:
                # health() rides the keep-alive connection, so this pid is
                # the worker the batch below will hit first.
                victim = client.health()["pid"]
                assert victim in supervisor.pids()

                killer = threading.Timer(
                    0.01, os.kill, args=(victim, signal.SIGKILL)
                )
                killer.start()
                try:
                    batches = [
                        client.execute_many(BATCH) for _ in range(3)
                    ]
                finally:
                    killer.cancel()

            for results in batches:
                for remote, expected in zip(results, reference):
                    assert remote.spec == expected.spec
                    np.testing.assert_array_equal(
                        remote.value.values, expected.value.values
                    )

            # The monitor replaces the victim (0.2s poll + backoff).
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if supervisor.restarts >= 1 and supervisor.n_alive() == 2:
                    break
                time.sleep(0.05)
            assert supervisor.restarts >= 1
            assert supervisor.n_alive() == 2
            assert not supervisor.failed.is_set()


class TestCrashLoopGuard:
    def test_unrestartable_worker_trips_the_guard(self, store_path):
        """Delete the store out from under the supervisor, then kill the
        worker: every replacement dies at startup, and after
        crash_loop_limit rapid deaths the supervisor gives up with an
        explicit failure instead of spinning."""
        config = WorkerConfig(store=str(store_path), backend="mmap")
        supervisor = AcceptorSupervisor(
            config,
            workers=1,
            port=0,
            restart_backoff=0.05,
            max_restart_backoff=0.1,
            crash_loop_limit=3,
            crash_loop_window=60.0,
            start_timeout=15.0,
        )
        with supervisor:
            victim = supervisor.pids()[0]
            # The running worker holds its mmaps; only replacements need
            # the files, and they will now fail to open the store.
            shutil.rmtree(store_path)
            os.kill(victim, signal.SIGKILL)

            # Deaths: the kill, then two stillborn replacements. Each
            # failed respawn costs up to start_timeout in ready.wait.
            assert supervisor.failed.wait(timeout=60.0), (
                "crash-loop guard never tripped"
            )
            assert supervisor.failure_reason is not None
            assert "crash loop" in supervisor.failure_reason
            assert "3 worker deaths" in supervisor.failure_reason
        # stop() after failure is clean (context manager exit).

    def test_record_death_escalates_then_gives_up(self, store_path):
        """Unit-level: successive rapid deaths back off exponentially up
        to the cap, then the guard trips (no processes involved)."""
        supervisor = AcceptorSupervisor(
            WorkerConfig(store=str(store_path)),
            workers=1,
            restart_backoff=0.1,
            max_restart_backoff=0.4,
            crash_loop_limit=4,
            crash_loop_window=60.0,
        )
        assert supervisor._record_death() == pytest.approx(0.1)
        assert supervisor._record_death() == pytest.approx(0.2)
        assert supervisor._record_death() == pytest.approx(0.4)  # capped
        assert supervisor._record_death() is None  # limit reached
        assert supervisor.failed.is_set()
        assert "crash loop" in supervisor.failure_reason

    def test_zero_limit_disables_the_guard(self, store_path):
        supervisor = AcceptorSupervisor(
            WorkerConfig(store=str(store_path)),
            workers=1,
            restart_backoff=0.1,
            crash_loop_limit=0,
        )
        for _ in range(20):
            assert supervisor._record_death() is not None
        assert not supervisor.failed.is_set()
