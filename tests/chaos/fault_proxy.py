"""A fault-injecting TCP proxy for chaos tests (stdlib only).

Sits between a :class:`~repro.api.remote.TsubasaRemoteClient` and a real
server and misbehaves on demand:

* :meth:`FaultProxy.fail_next` — RST the next *n* accepted connections
  before a single byte flows (connect storms, dead upstreams).
* :meth:`FaultProxy.truncate_next` — forward only *n* bytes of the next
  connection's server→client stream, then reset both sides: a response
  cut mid-frame.
* :attr:`FaultProxy.reset_all` — while true, RST every new connection
  (a hard outage; flip back to heal).
* :meth:`FaultProxy.kill_live` — reset every currently-proxied
  connection (mid-stream network partition).

Resets use ``SO_LINGER(1, 0)`` so the peer sees a TCP RST, not a tidy
FIN — the failure mode retry logic most often gets wrong.
"""

from __future__ import annotations

import socket
import struct
import threading

__all__ = ["FaultProxy"]

_RST_LINGER = struct.pack("ii", 1, 0)


def _rst(sock: socket.socket) -> None:
    """Close a socket so the peer sees a reset (best effort).

    ``shutdown(SHUT_RD)`` first: it acts on the open file description
    immediately, waking any pump thread blocked in ``recv`` on this
    socket. Without it the blocked syscall keeps the kernel's file alive
    past ``close()`` and the linger-RST would never hit the wire.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, _RST_LINGER)
    except OSError:
        pass
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class FaultProxy:
    """Forward ``127.0.0.1:<port>`` to an upstream, injecting faults."""

    def __init__(self, upstream_host: str, upstream_port: int) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.port: int = self._listener.getsockname()[1]
        #: Total connections accepted (including ones reset at accept).
        self.connections = 0
        self.reset_all = False
        self._resets_pending = 0
        self._truncate_pending: int | None = None
        self._lock = threading.Lock()
        self._live: set[socket.socket] = set()
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        """``host:port`` clients should connect to."""
        return f"127.0.0.1:{self.port}"

    # -- fault plan ----------------------------------------------------------

    def fail_next(self, n: int = 1) -> None:
        """RST the next ``n`` accepted connections immediately."""
        with self._lock:
            self._resets_pending += n

    def truncate_next(self, n_bytes: int) -> None:
        """Cut the next connection after ``n_bytes`` of upstream data."""
        with self._lock:
            self._truncate_pending = int(n_bytes)

    def kill_live(self) -> None:
        """Reset every currently-open proxied connection."""
        with self._lock:
            live = list(self._live)
            self._live.clear()
        for sock in live:
            _rst(sock)

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.kill_live()

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            with self._lock:
                if self.reset_all or self._resets_pending > 0:
                    if self._resets_pending > 0:
                        self._resets_pending -= 1
                    doomed = True
                    truncate = None
                else:
                    doomed = False
                    truncate = self._truncate_pending
                    self._truncate_pending = None
            if doomed:
                _rst(client)
                continue
            threading.Thread(
                target=self._proxy_connection,
                args=(client, truncate),
                name="fault-proxy-conn",
                daemon=True,
            ).start()

    def _proxy_connection(
        self, client: socket.socket, truncate: int | None
    ) -> None:
        try:
            upstream = socket.create_connection(self._upstream, timeout=10.0)
        except OSError:
            _rst(client)
            return
        with self._lock:
            self._live.update((client, upstream))
        # Budget is shared by reference so the upstream→client pump can
        # decrement it as bytes flow; None means unlimited.
        budget = [truncate]
        pumps = [
            threading.Thread(
                target=self._pump, args=(client, upstream, [None]),
                daemon=True,
            ),
            threading.Thread(
                target=self._pump, args=(upstream, client, budget),
                daemon=True,
            ),
        ]
        for pump in pumps:
            pump.start()

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        budget: list[int | None],
    ) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                if budget[0] is not None:
                    data = data[: budget[0]]
                    budget[0] -= len(data)
                if data:
                    dst.sendall(data)
                if budget[0] is not None and budget[0] <= 0:
                    break  # truncation point reached: cut mid-frame
        except OSError:
            pass
        finally:
            with self._lock:
                self._live.discard(src)
                self._live.discard(dst)
            _rst(src)
            _rst(dst)
