"""Torn-read chaos for the mmap store's seqlock protocol.

A cross-process writer brackets every commit with an odd/even generation
counter in ``meta.json``; readers that sample the counter around their
reads can detect (and retry past) a torn read. These tests drive the
reader-side machinery deterministically: a commit frozen mid-flight, a
generation that moves between the two samples, and the deep-health probe
that surfaces the counter to load balancers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.client import TsubasaClient
from repro.api.remote import TsubasaRemoteClient
from repro.api.server import serve_in_thread
from repro.core.sketch import build_sketch
from repro.engine.providers import MmapProvider
from repro.exceptions import StorageError
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch


@pytest.fixture()
def store_dir(small_dataset, tmp_path):
    path = tmp_path / "store"
    sketch = build_sketch(
        small_dataset.values, 50, names=small_dataset.names
    )
    with MmapStore(path) as store:
        save_sketch(store, sketch)
    return path


class TestConsistentReads:
    def test_returns_owning_copies(self, store_dir):
        with MmapStore(store_dir, mode="r") as reader:
            records = reader.read_windows_consistent([0, 1, 2])
            plain = reader.read_windows([0, 1, 2])
            for copied, view in zip(records, plain):
                assert copied.index == view.index
                assert copied.size == view.size
                np.testing.assert_array_equal(copied.means, view.means)
                np.testing.assert_array_equal(copied.pairs, view.pairs)
                # The whole point: validated records own their memory, so
                # a later commit cannot tear them retroactively.
                assert copied.means.flags.owndata
                assert copied.pairs.flags.owndata

    def test_commit_in_flight_blocks_validated_reads(self, store_dir):
        """A writer frozen mid-commit (odd generation on disk) starves
        seqlock readers until the commit finishes."""
        with MmapStore(store_dir) as writer, MmapStore(
            store_dir, mode="r"
        ) as reader:
            writer._begin_commit()
            assert reader.read_generation() % 2 == 1
            with pytest.raises(StorageError, match="no consistent read"):
                reader.read_windows_consistent(
                    [0, 1], attempts=3, backoff=0.005
                )
            writer._finish_commit()
            assert reader.read_generation() % 2 == 0
            records = reader.read_windows_consistent([0, 1])
            assert [record.index for record in records] == [0, 1]

    def test_generation_moving_mid_read_forces_a_retry(
        self, store_dir, monkeypatch
    ):
        """Deterministic torn read: the first before/after sample pair
        disagrees (a commit landed mid-read), the second agrees."""
        with MmapStore(store_dir, mode="r") as reader:
            samples = iter([0, 2, 2, 2])
            calls = {"n": 0}

            def scripted_generation():
                calls["n"] += 1
                return next(samples)

            monkeypatch.setattr(
                reader, "read_generation", scripted_generation
            )
            records = reader.read_windows_consistent(
                [0, 1], attempts=4, backoff=0.0
            )
            assert calls["n"] == 4  # two sample pairs: one torn, one clean
            assert [record.index for record in records] == [0, 1]

    def test_odd_first_sample_backs_off_then_succeeds(
        self, store_dir, monkeypatch
    ):
        """A commit in flight at the first sample (odd) is waited out."""
        with MmapStore(store_dir, mode="r") as reader:
            samples = iter([1, 2, 2])
            monkeypatch.setattr(
                reader, "read_generation", lambda: next(samples)
            )
            records = reader.read_windows_consistent(
                [3], attempts=3, backoff=0.0
            )
            assert records[0].index == 3

    def test_rejects_zero_attempts(self, store_dir):
        with MmapStore(store_dir, mode="r") as reader:
            with pytest.raises(StorageError, match="attempts"):
                reader.read_windows_consistent([0], attempts=0)


class TestProviderGeneration:
    def test_mmap_provider_exposes_the_commit_counter(self, store_dir):
        provider = MmapProvider(str(store_dir))
        generation = provider.read_generation()
        assert isinstance(generation, int)
        assert generation % 2 == 0  # quiescent store


class TestDeepHealth:
    def test_deep_probe_reports_store_generation(self, store_dir):
        client_side = TsubasaClient(provider=MmapProvider(str(store_dir)))
        handle = serve_in_thread(client_side)
        try:
            with TsubasaRemoteClient(handle.address) as client:
                shallow = client.health()
                assert shallow["ok"] is True
                assert "store_generation" not in shallow

                deep = client.health(deep=True)
                assert deep["ok"] is True
                assert isinstance(deep["store_generation"], int)
                assert deep["store_generation"] % 2 == 0
                assert deep["inflight"]["current"] >= 0
                assert deep["inflight"]["budget"] is None or isinstance(
                    deep["inflight"]["budget"], int
                )
        finally:
            handle.stop()

    def test_memory_backend_has_no_store_generation(self, small_dataset):
        from repro.engine.providers import InMemoryProvider

        sketch = build_sketch(
            small_dataset.values, 50, names=small_dataset.names
        )
        handle = serve_in_thread(
            TsubasaClient(provider=InMemoryProvider(sketch))
        )
        try:
            with TsubasaRemoteClient(handle.address) as client:
                deep = client.health(deep=True)
                assert deep["ok"] is True
                assert "store_generation" not in deep
                assert "inflight" in deep
        finally:
            handle.stop()
