"""Fault-injection chaos suite.

Exercises the resilience layer end to end: a TCP proxy that resets,
truncates, and drops connections (:mod:`tests.chaos.fault_proxy`),
SIGKILLed supervisor workers, and torn mmap reads. Every test here also
runs under the plain tier-1 ``pytest`` invocation; CI additionally runs
the directory as a dedicated ``chaos`` job with ``pytest-timeout``.
"""
