"""Network fault injection against a live server through a hostile proxy.

Each test stands up a real serve_in_thread stack, puts a
:class:`~tests.chaos.fault_proxy.FaultProxy` in front of it, and checks
the remote client's resilience contract: retried queries return results
bit-identical to in-process execution, non-retrying clients surface the
failure, the circuit breaker opens under a hard outage and recovers, and
subscriptions resume across dropped connections without losing or
duplicating a sequence number.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.api.client import TsubasaClient
from repro.api.remote import TsubasaRemoteClient
from repro.api.resilience import CircuitBreaker, RetryPolicy
from repro.api.server import serve_in_thread
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.realtime import TsubasaRealtime
from repro.core.sketch import build_sketch
from repro.engine.providers import InMemoryProvider
from repro.exceptions import CircuitOpenError, DeadlineExceeded, ServiceError
from repro.streams.ingestion import StreamIngestor
from repro.streams.sources import ReplaySource

from .fault_proxy import FaultProxy

WINDOW = WindowSpec(end=599, length=200)

SPECS = [
    QuerySpec(op="matrix", window=WINDOW),
    QuerySpec(op="network", window=WINDOW, theta=0.4),
    QuerySpec(op="top_k", window=WINDOW, k=5),
    QuerySpec(op="matrix", window=WindowSpec(end=599, length=300)),
]

# Fast deterministic backoff: chaos tests should not sleep for real.
FAST_RETRY = RetryPolicy(jitter=False, base_backoff=0.01, max_backoff=0.05)


def _make_client(small_dataset):
    sketch = build_sketch(
        small_dataset.values, 50, names=small_dataset.names
    )
    return TsubasaClient(provider=InMemoryProvider(sketch))


@pytest.fixture(scope="module")
def local_results(small_dataset):
    client = _make_client(small_dataset)
    return [client.execute(spec) for spec in SPECS]


@pytest.fixture()
def stack(small_dataset):
    """A live server with a fault proxy in front of it."""
    handle = serve_in_thread(_make_client(small_dataset))
    proxy = FaultProxy(handle.host, handle.port)
    yield handle, proxy
    proxy.close()
    handle.stop()


def assert_matches_local(remote, local):
    assert remote.spec == local.spec
    if remote.spec.op == "matrix":
        assert remote.value.names == local.value.names
        np.testing.assert_array_equal(remote.value.values, local.value.values)
    elif remote.spec.op == "network":
        assert remote.value.edge_set() == local.value.edge_set()
    else:
        assert remote.value == local.value


class TestConnectionResets:
    def test_http_retry_recovers_from_resets(self, stack, local_results):
        """Reset connections until the policy loop must fire; results stay
        bit-identical to in-process execution."""
        _handle, proxy = stack
        # The HTTP path burns up to two connections per policy attempt
        # (the internal stale-keepalive reconnect), so three resets force
        # at least one real policy retry before the call can succeed.
        proxy.fail_next(3)
        with TsubasaRemoteClient(proxy.address, retry=FAST_RETRY) as client:
            results = client.execute_many(SPECS)
        for remote, local in zip(results, local_results):
            assert_matches_local(remote, local)
        assert proxy.connections >= 4  # 3 resets + at least 1 good conn

    def test_without_retry_the_reset_surfaces(self, stack):
        _handle, proxy = stack
        proxy.fail_next(2)  # both internal HTTP tries
        with TsubasaRemoteClient(proxy.address) as client:
            with pytest.raises((ServiceError, OSError)):
                client.execute(SPECS[0])

    def test_ws_truncated_mid_frame_reissues_unanswered(
        self, stack, local_results
    ):
        """A response cut mid-frame forces a reconnect + renegotiate; the
        retried batch still matches in-process execution exactly."""
        _handle, proxy = stack
        # Enough for the 101 handshake and the hello ack, but nowhere
        # near a full matrix response frame: the cut lands mid-stream.
        proxy.truncate_next(400)
        with TsubasaRemoteClient(
            proxy.address, transport="ws", retry=FAST_RETRY
        ) as client:
            results = client.execute_many(SPECS)
        for remote, local in zip(results, local_results):
            assert_matches_local(remote, local)
        assert proxy.connections == 2  # truncated conn + its replacement


class TestCircuitBreaker:
    def test_opens_under_outage_and_recovers(self, stack, local_results):
        _handle, proxy = stack
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.3)
        with TsubasaRemoteClient(
            proxy.address,
            retry=RetryPolicy(max_attempts=1, jitter=False),
            circuit_breaker=breaker,
        ) as client:
            proxy.reset_all = True
            for _ in range(2):
                with pytest.raises((ServiceError, OSError)):
                    client.execute(SPECS[0])
            assert breaker.state == "open"
            started = time.monotonic()
            with pytest.raises(CircuitOpenError):
                client.execute(SPECS[0])
            assert time.monotonic() - started < 0.5  # failed fast
            assert breaker.fast_failures >= 1

            # Heal the network; after reset_timeout the half-open probe
            # goes through and closes the circuit again.
            proxy.reset_all = False
            time.sleep(0.35)
            assert_matches_local(client.execute(SPECS[0]), local_results[0])
            assert breaker.state == "closed"


class TestDeadlines:
    class _SlowClient(TsubasaClient):
        def compute_matrix(self, spec, window):
            time.sleep(0.5)
            return super().compute_matrix(spec, window)

    @pytest.fixture()
    def slow_server(self, small_dataset):
        sketch = build_sketch(
            small_dataset.values, 50, names=small_dataset.names
        )
        client = self._SlowClient(provider=InMemoryProvider(sketch))
        handle = serve_in_thread(client, service_kwargs={"max_workers": 1})
        yield handle
        handle.stop()

    def test_expired_deadline_is_shed_not_retried(self, slow_server):
        spec = QuerySpec(op="matrix", window=WINDOW, deadline_ms=100)
        with TsubasaRemoteClient(
            slow_server.address, retry=FAST_RETRY
        ) as client:
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                client.execute(spec)
            # A DeadlineExceeded must not be retried: four policy
            # attempts at 0.5s of compute each would take > 2s.
            assert time.monotonic() - started < 1.0
            assert client.stats()["service"]["deadline_shed"] >= 1


class TestSubscriptionResume:
    def test_resume_across_dropped_connection(self, small_dataset):
        """Kill the WS mid-stream; the generator reconnects with
        resume_from and the hub's replay ring fills the hole — every
        delivered seq is contiguous, none duplicated, no gap event."""
        client_side = _make_client(small_dataset)
        engine = TsubasaRealtime(
            small_dataset.values[:, :300], 50, names=small_dataset.names
        )
        ingestor = StreamIngestor(engine, theta=0.4)
        source = ReplaySource(small_dataset.values, 50, start=300)
        handle = serve_in_thread(
            client_side,
            ingestor=ingestor,
            source=source,
            pump_interval=0.15,
        )
        proxy = FaultProxy(handle.host, handle.port)
        try:
            events = []
            with TsubasaRemoteClient(
                proxy.address,
                transport="ws",
                retry=RetryPolicy(jitter=False, base_backoff=0.02),
            ) as client:
                for event in client.subscribe(
                    theta=0.4, window_points=300, max_events=5
                ):
                    events.append(event)
                    if len(events) == 2:
                        proxy.kill_live()
            assert len(events) == 5
            seqs = [event.seq for event in events]
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
            assert not any(event.event.get("gap") for event in events)
            assert proxy.connections >= 2  # original + at least one resume
        finally:
            proxy.close()
            handle.stop()

    def test_resume_across_server_restart_yields_explicit_gap(
        self, small_dataset
    ):
        """A restarted server cannot replay the old stream: resuming past
        its fresh hub must produce one explicit gap event, then clean
        events under the new numbering — never silent duplicates."""
        def live_handle(port=0):
            engine = TsubasaRealtime(
                small_dataset.values[:, :300], 50, names=small_dataset.names
            )
            return serve_in_thread(
                _make_client(small_dataset),
                ingestor=StreamIngestor(engine, theta=0.4),
                source=ReplaySource(small_dataset.values, 50, start=300),
                pump_interval=0.1,
                port=port,
            )

        first = live_handle()
        port = first.port
        try:
            with TsubasaRemoteClient(first.address, transport="ws") as client:
                before = list(
                    client.subscribe(theta=0.4, window_points=300)
                )
            assert before, "expected events before the restart"
            last_seq = before[-1].seq
        finally:
            first.stop()

        # Give the kernel a beat to release the port, then restart on it.
        second = None
        for _ in range(20):
            try:
                second = live_handle(port=port)
                break
            except Exception:
                time.sleep(0.1)
        assert second is not None, f"could not rebind port {port}"
        try:
            with TsubasaRemoteClient(second.address, transport="ws") as client:
                resumed = list(
                    client.subscribe(
                        theta=0.4,
                        window_points=300,
                        resume_from=last_seq + 50,
                        max_events=3,
                    )
                )
            gap = resumed[0]
            assert gap.event.get("gap") is True
            assert "restarted" in gap.event.get("reason", "")
            clean = [event for event in resumed[1:]]
            assert clean, "expected live events after the gap marker"
            assert not any(event.event.get("gap") for event in clean)
            seqs = [event.seq for event in clean]
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        finally:
            second.stop()


class TestKeepalive:
    def test_subscriber_pongs_survive_an_aggressive_idle_timeout(
        self, small_dataset
    ):
        """A subscriber blocked in recv auto-answers pings, so it stays
        connected even when events arrive slower than ws_idle_timeout —
        pong traffic alone counts as liveness."""
        engine = TsubasaRealtime(
            small_dataset.values[:, :300], 50, names=small_dataset.names
        )
        handle = serve_in_thread(
            _make_client(small_dataset),
            ingestor=StreamIngestor(engine, theta=0.4),
            source=ReplaySource(small_dataset.values, 50, start=300),
            pump_interval=0.4,  # events arrive far slower than the timeout
            server_kwargs={
                "ws_ping_interval": 0.05,
                "ws_idle_timeout": 0.2,
            },
        )
        try:
            with TsubasaRemoteClient(
                handle.address, transport="ws"
            ) as client:
                events = list(
                    client.subscribe(
                        theta=0.4, window_points=300, max_events=3
                    )
                )
                assert len(events) == 3
                assert (
                    client.stats()["server"]["keepalive_disconnects"] == 0
                )
        finally:
            handle.stop()

    def test_reaped_idle_client_reconnects_transparently(
        self, small_dataset, local_results
    ):
        """A synchronous client idle between calls cannot answer pings
        (nothing is reading the socket), so the server reaps it; the next
        call on a retrying client transparently reconnects."""
        handle = serve_in_thread(
            _make_client(small_dataset),
            server_kwargs={
                "ws_ping_interval": 0.1,
                "ws_idle_timeout": 0.3,
            },
        )
        try:
            with TsubasaRemoteClient(
                handle.address, transport="ws", retry=FAST_RETRY
            ) as client:
                assert_matches_local(client.execute(SPECS[0]), local_results[0])
                time.sleep(1.0)  # well past ws_idle_timeout; get reaped
                assert_matches_local(client.execute(SPECS[0]), local_results[0])
                assert (
                    client.stats()["server"]["keepalive_disconnects"] >= 1
                )
        finally:
            handle.stop()

    def test_idle_timeout_reaps_a_silent_peer(self, small_dataset):
        """A raw socket that upgrades to WS and then goes silent (never
        answering pings) is aborted once ws_idle_timeout elapses."""
        import base64
        import os as _os

        handle = serve_in_thread(
            _make_client(small_dataset),
            server_kwargs={
                "ws_ping_interval": 0.1,
                "ws_idle_timeout": 0.3,
            },
        )
        try:
            raw = socket.create_connection(
                (handle.host, handle.port), timeout=5.0
            )
            key = base64.b64encode(_os.urandom(16)).decode()
            raw.sendall(
                (
                    "GET /v1/ws HTTP/1.1\r\n"
                    f"Host: {handle.host}\r\n"
                    "Upgrade: websocket\r\n"
                    "Connection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {key}\r\n"
                    "Sec-WebSocket-Version: 13\r\n\r\n"
                ).encode()
            )
            raw.settimeout(5.0)
            assert b"101" in raw.recv(4096)
            # Read without ever writing: a dead peer from the server's
            # point of view. The keepalive loop must abort it.
            raw.settimeout(3.0)
            try:
                while raw.recv(4096):
                    pass
                closed = True
            except (ConnectionError, OSError):
                closed = True
            assert closed
            raw.close()
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline:
                with TsubasaRemoteClient(handle.address) as probe:
                    if (
                        probe.stats()["server"]["keepalive_disconnects"]
                        >= 1
                    ):
                        break
                time.sleep(0.05)
            else:
                pytest.fail("server never reaped the silent WS peer")
        finally:
            handle.stop()
