"""Tests for the project-invariant linter (tools/tsulint).

Each rule gets three kinds of fixture, written into ``tmp_path`` under the
path shapes the rule is scoped to (``src/repro/api/...`` etc.):

* a **violation** fixture the rule must flag,
* a **clean** fixture it must not flag,
* a **suppressed** fixture where a ``# tsulint: disable=...`` comment
  silences the finding.

The suite ends with the self-check CI relies on: running the full rule set
over this repository's ``src/`` and ``tests/`` yields zero diagnostics.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from tsulint.cli import main as tsulint_main  # noqa: E402
from tsulint.engine import Suppressions, lint_files  # noqa: E402
from tsulint.rules import RULES, rule_by_code  # noqa: E402

REPO = Path(__file__).resolve().parent.parent

#: A minimal taxonomy module; placed at src/repro/exceptions.py so the
#: index recognises DataError & co. as TsubasaError subclasses.
EXCEPTIONS_SRC = """\
class TsubasaError(Exception):
    pass

class SketchError(TsubasaError):
    pass

class DataError(TsubasaError):
    pass

_ERROR_CODES = {
    TsubasaError: 1,
    SketchError: 2,
    DataError: 3,
}
"""

#: A minimal spec module; placed at src/repro/api/spec.py so the drift
#: rule (TSU006) has a surface to check against.
SPEC_SRC = """\
from dataclasses import dataclass

OPS = ("corr_pair", "network")


@dataclass(frozen=True)
class QuerySpec:
    op: str
    theta: float | None = None

    def resolve(self) -> str:
        return self.op


_REQUIRED = {
    "corr_pair": ("op",),
    "network": ("op", "theta"),
}
_OPTIONAL = {
    "corr_pair": ("theta",),
}
"""


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


def run(root: Path, *, select: set[str] | None = None, require_reasons=False):
    diagnostics, _ = lint_files(
        [root], RULES, select=select, require_reasons=require_reasons
    )
    return diagnostics


def codes(diagnostics) -> list[str]:
    return [d.rule for d in diagnostics]


# ---------------------------------------------------------------------------
# TSU001 — blocking calls inside async def


def test_tsu001_flags_blocking_calls(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/handlers.py": """\
            import time
            from pathlib import Path

            async def handler(p: Path):
                time.sleep(0.1)
                open("log.txt")
                return p.read_text()
            """
        },
    )
    diagnostics = run(tmp_path, select={"TSU001"})
    assert codes(diagnostics) == ["TSU001", "TSU001", "TSU001"]
    assert "time.sleep" in diagnostics[0].message


def test_tsu001_clean_async_and_nested_sync(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/handlers.py": """\
            import asyncio
            import time

            async def handler():
                await asyncio.sleep(0.1)

                def sync_helper():
                    # Runs on its own call stack (e.g. in an executor).
                    time.sleep(0.1)

                return sync_helper

            def plain():
                time.sleep(0.1)
            """
        },
    )
    assert run(tmp_path, select={"TSU001"}) == []


def test_tsu001_scoped_to_api_and_streams(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/core/offline.py": """\
            import time

            async def batch():
                time.sleep(0.1)
            """
        },
    )
    assert run(tmp_path, select={"TSU001"}) == []


# ---------------------------------------------------------------------------
# TSU002 — threading lock held across await


def test_tsu002_flags_lock_across_await(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/streams/hub.py": """\
            import threading

            _lock = threading.Lock()

            async def publish(event):
                with _lock:
                    await event.send()
            """
        },
    )
    diagnostics = run(tmp_path, select={"TSU002"})
    assert codes(diagnostics) == ["TSU002"]
    assert "_lock" in diagnostics[0].message


def test_tsu002_clean_when_released_before_await(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/streams/hub.py": """\
            import asyncio
            import threading

            _lock = threading.Lock()
            _alock = asyncio.Lock()

            async def publish(event):
                with _lock:
                    queued = event.prepare()
                await queued.send()
                async with _alock:
                    await queued.confirm()
            """
        },
    )
    assert run(tmp_path, select={"TSU002"}) == []


# ---------------------------------------------------------------------------
# TSU003 — raw mmap reads outside generation-validated scopes


def test_tsu003_flags_unvalidated_reads(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/core/reader.py": """\
            class Peeker:
                def peek(self, store):
                    return store.arrays()

            def raw(store):
                return store._read_maps
            """
        },
    )
    diagnostics = run(tmp_path, select={"TSU003"})
    assert codes(diagnostics) == ["TSU003", "TSU003"]


def test_tsu003_generation_validated_scope_is_exempt(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/core/reader.py": """\
            class Validated:
                def consistent(self, store):
                    before = store.read_generation()
                    data = store.arrays()
                    after = store.read_generation()
                    return data if before == after else None

            def helper(store):
                with store.read_windows_consistent() as windows:
                    return windows.arrays()
            """
        },
    )
    assert run(tmp_path, select={"TSU003"}) == []


def test_tsu003_mmap_store_itself_is_exempt(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/storage/mmap_store.py": """\
            class MmapStore:
                def _commit(self):
                    return self._write_maps
            """
        },
    )
    assert run(tmp_path, select={"TSU003"}) == []


# ---------------------------------------------------------------------------
# TSU004 — exception taxonomy


def test_tsu004_flags_foreign_raise(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/exceptions.py": EXCEPTIONS_SRC,
            "src/repro/core/compute.py": """\
            from repro.exceptions import DataError

            def check(x):
                if x < 0:
                    raise ValueError("negative")
                if x > 10:
                    raise DataError("too large")
            """,
        },
    )
    diagnostics = run(tmp_path, select={"TSU004"})
    assert codes(diagnostics) == ["TSU004"]
    assert "'ValueError'" in diagnostics[0].message


def test_tsu004_dunder_allowances(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/exceptions.py": EXCEPTIONS_SRC,
            "src/repro/core/proxy.py": """\
            class Proxy:
                def __getattr__(self, name):
                    raise AttributeError(name)

                def __next__(self):
                    raise StopIteration
            """,
        },
    )
    assert run(tmp_path, select={"TSU004"}) == []


def test_tsu004_project_check_missing_registration(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/exceptions.py": """\
            class TsubasaError(Exception):
                pass

            class DataError(TsubasaError):
                pass

            class OrphanError(TsubasaError):
                pass

            _ERROR_CODES = {
                TsubasaError: 1,
                DataError: 3,
            }
            """
        },
    )
    diagnostics = run(tmp_path, select={"TSU004"})
    assert codes(diagnostics) == ["TSU004"]
    assert "'OrphanError'" in diagnostics[0].message
    assert "not registered" in diagnostics[0].message


def test_tsu004_project_check_duplicate_code(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/exceptions.py": """\
            class TsubasaError(Exception):
                pass

            class DataError(TsubasaError):
                pass

            _ERROR_CODES = {
                TsubasaError: 1,
                DataError: 1,
            }
            """
        },
    )
    diagnostics = run(tmp_path, select={"TSU004"})
    assert codes(diagnostics) == ["TSU004"]
    assert "unique" in diagnostics[0].message


# ---------------------------------------------------------------------------
# TSU005 — frombuffer read-only guard


def test_tsu005_flags_unguarded_frombuffer(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/decode.py": """\
            import numpy as np

            def decode(payload):
                return np.frombuffer(payload, dtype=np.float64)
            """
        },
    )
    diagnostics = run(tmp_path, select={"TSU005"})
    assert codes(diagnostics) == ["TSU005"]
    assert "read-only" in diagnostics[0].message


def test_tsu005_setflags_guard_passes(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/decode.py": """\
            import numpy as np

            def decode(payload):
                array = np.frombuffer(payload, dtype=np.float64)
                array.setflags(write=False)
                return array

            def decode_flags(payload):
                array = np.frombuffer(payload, dtype=np.float64)
                array.flags.writeable = False
                return array
            """
        },
    )
    assert run(tmp_path, select={"TSU005"}) == []


def test_tsu005_scoped_to_api(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/core/kernel.py": """\
            import numpy as np

            def scratch(payload):
                return np.frombuffer(payload, dtype=np.float64)
            """
        },
    )
    assert run(tmp_path, select={"TSU005"}) == []


# ---------------------------------------------------------------------------
# TSU006 — spec field drift


def test_tsu006_flags_unknown_spec_attribute(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/spec.py": SPEC_SRC,
            "src/repro/api/wire.py": """\
            def serialize(spec):
                return {"op": spec.op, "theta": spec.thetta}
            """,
        },
    )
    diagnostics = run(tmp_path, select={"TSU006"})
    assert codes(diagnostics) == ["TSU006"]
    assert "'thetta'" in diagnostics[0].message


def test_tsu006_real_fields_and_methods_pass(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/spec.py": SPEC_SRC,
            "src/repro/api/wire.py": """\
            def serialize(spec):
                return {"op": spec.op, "resolved": spec.resolve()}
            """,
        },
    )
    assert run(tmp_path, select={"TSU006"}) == []


def test_tsu006_project_check_op_table_drift(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/spec.py": """\
            from dataclasses import dataclass

            OPS = ("corr_pair",)


            @dataclass(frozen=True)
            class QuerySpec:
                op: str


            _REQUIRED = {
                "corr_pair": ("nonexistent",),
                "badop": ("op",),
            }
            """
        },
    )
    diagnostics = run(tmp_path, select={"TSU006"})
    messages = [d.message for d in diagnostics]
    assert codes(diagnostics) == ["TSU006", "TSU006"]
    assert any("'nonexistent'" in m for m in messages)
    assert any("'badop'" in m for m in messages)


# ---------------------------------------------------------------------------
# Suppressions


def test_inline_suppression_with_reason(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/handlers.py": """\
            import time

            async def handler():
                time.sleep(0.01)  # tsulint: disable=TSU001 -- test fixture
            """
        },
    )
    assert run(tmp_path, require_reasons=True) == []


def test_standalone_suppression_comment_line(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/handlers.py": """\
            import time

            async def handler():
                # tsulint: disable=TSU001 -- startup probe runs pre-loop
                time.sleep(0.01)
            """
        },
    )
    assert run(tmp_path, require_reasons=True) == []


def test_bare_suppression_flagged_in_require_reasons_mode(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/handlers.py": """\
            import time

            async def handler():
                time.sleep(0.01)  # tsulint: disable=TSU001
            """
        },
    )
    assert run(tmp_path) == []
    diagnostics = run(tmp_path, require_reasons=True)
    assert codes(diagnostics) == ["TSU900"]


def test_suppression_only_covers_named_rule(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/api/handlers.py": """\
            import time

            async def handler():
                time.sleep(0.01)  # tsulint: disable=TSU002 -- wrong rule
            """
        },
    )
    assert codes(run(tmp_path)) == ["TSU001"]


def test_disable_all_covers_everything():
    suppressions = Suppressions(
        "x = 1  # tsulint: disable=all -- generated file\n"
    )
    assert suppressions.active_for("TSU001", 1) is not None
    assert suppressions.active_for("TSU006", 1) is not None


# ---------------------------------------------------------------------------
# Engine behavior


def test_unparseable_file_yields_tsu000(tmp_path):
    write_tree(tmp_path, {"src/repro/core/broken.py": "def f(:\n"})
    diagnostics = run(tmp_path)
    assert codes(diagnostics) == ["TSU000"]


def test_rule_registry_is_complete():
    assert [rule.code for rule in RULES] == [
        "TSU001",
        "TSU002",
        "TSU003",
        "TSU004",
        "TSU005",
        "TSU006",
    ]
    for rule in RULES:
        assert rule.description
        assert rule_by_code(rule.code) is rule
    with pytest.raises(KeyError):
        rule_by_code("TSU999")


# ---------------------------------------------------------------------------
# CLI


def test_cli_exit_codes(tmp_path, capsys):
    write_tree(
        tmp_path,
        {
            "src/repro/api/handlers.py": """\
            import time

            async def handler():
                time.sleep(0.01)
            """
        },
    )
    assert tsulint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "TSU001" in out
    (tmp_path / "src/repro/api/handlers.py").write_text(
        "async def handler():\n    return 1\n", encoding="utf-8"
    )
    assert tsulint_main([str(tmp_path)]) == 0


def test_cli_usage_errors(capsys):
    assert tsulint_main([]) == 2
    assert tsulint_main(["--select", "TSU999", "src"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule codes" in err


def test_cli_list_rules(capsys):
    assert tsulint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.code in out


# ---------------------------------------------------------------------------
# Self-check: this repository passes its own linter (what CI enforces).


def test_repository_is_clean_under_all_rules():
    diagnostics, n_files = lint_files(
        [REPO / "src", REPO / "tests"], RULES, require_reasons=True
    )
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)
    assert n_files > 50
