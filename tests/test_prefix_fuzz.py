"""Bit-accuracy fuzz: combine_matrix_prefix vs the direct Lemma 1 kernel.

The prefix kernel's accuracy contract (:mod:`repro.core.prefix`) promises
agreement with :func:`~repro.core.lemma1.combine_matrix` within
:data:`~repro.core.prefix.PREFIX_ATOL` on every correlation entry, across
the regimes a deployment actually hits: random sizes and ranges, long
histories (``ns >= 5000``), huge mean offsets (the naive-variance
cancellation trap), near-constant series, and drifting means. Every case is
generated from a seed printed on failure, so a red run is reproducible with
``_run_case(seed)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lemma1 import combine_matrix
from repro.core.prefix import (
    PREFIX_ATOL,
    build_prefix_aggregates,
    combine_matrix_prefix,
)
from repro.core.sketch import build_sketch

#: Random fuzz seeds (kept small enough for CI; bump locally to fuzz wider).
FUZZ_SEEDS = tuple(range(24))

#: Ranges compared per generated sketch.
RANGES_PER_CASE = 8


def _generate_data(rng: np.random.Generator) -> np.ndarray:
    """One random series collection spanning the contract's regimes."""
    n = int(rng.integers(2, 9))
    n_windows = int(rng.integers(3, 400))
    window = int(rng.integers(2, 9))
    length = n_windows * window + int(rng.integers(0, window))  # short tail
    regime = int(rng.integers(0, 4))
    base = rng.standard_normal((n, length))
    if regime == 0:  # plain standardized noise
        data = base
    elif regime == 1:  # huge per-series offsets: the cancellation trap
        data = base + rng.uniform(-1e6, 1e6, (n, 1))
    elif regime == 2:  # near-constant series (tiny genuine variance)
        data = 1e-6 * base + rng.uniform(-10, 10, (n, 1))
    else:  # slow mean drift across the history
        drift = np.linspace(0, 1, length) * rng.uniform(-50, 50, (n, 1))
        data = base + drift
    # Mix in cross-series correlation so the matrices are not near-diagonal.
    shared = rng.standard_normal(length)
    return data + rng.uniform(0.0, 2.0, (n, 1)) * shared


def _compare_ranges(sketch, rng: np.random.Generator, seed: int) -> None:
    aggregates = build_prefix_aggregates(
        sketch.means, sketch.stds, sketch.covs, sketch.sizes
    )
    ns = sketch.n_windows
    for _ in range(RANGES_PER_CASE):
        lo = int(rng.integers(0, ns))
        hi = int(rng.integers(lo + 1, ns + 1))
        idx = np.arange(lo, hi)
        direct = combine_matrix(
            sketch.means[:, idx],
            sketch.stds[:, idx],
            sketch.covs[idx],
            sketch.sizes[idx].astype(np.float64),
        )
        prefix = combine_matrix_prefix(aggregates, lo, hi)
        worst = float(np.max(np.abs(prefix - direct)))
        assert worst <= PREFIX_ATOL, (
            f"prefix kernel diverged from the direct kernel: seed={seed}, "
            f"range=[{lo}, {hi}), n={sketch.n_series}, ns={ns}, "
            f"B={sketch.window_size}, max|diff|={worst:.3e} > {PREFIX_ATOL}"
        )


def _run_case(seed: int) -> None:
    rng = np.random.default_rng(seed)
    data = _generate_data(rng)
    window = int(rng.integers(2, 9))
    sketch = build_sketch(data, window)
    _compare_ranges(sketch, rng, seed)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_random_sizes_and_ranges(seed):
    _run_case(seed)


@pytest.mark.parametrize("seed", (1001, 1002))
def test_fuzz_long_history(seed):
    """ns >= 5000: the regime where naive running sums lose digits."""
    rng = np.random.default_rng(seed)
    n, window, n_windows = 4, 3, 5200
    data = rng.standard_normal((n, n_windows * window)) + rng.uniform(
        -1e4, 1e4, (n, 1)
    )
    sketch = build_sketch(data, window)
    assert sketch.n_windows >= 5000
    _compare_ranges(sketch, rng, seed)


def test_fuzz_near_constant_long_history():
    """Near-constant series over a long history: centering must keep the
    pooled-variance subtraction conditioned (sigma tiny but genuine)."""
    seed = 2001
    rng = np.random.default_rng(seed)
    n, window, n_windows = 3, 3, 5000
    data = 1e-9 * rng.standard_normal((n, n_windows * window)) + rng.uniform(
        -5, 5, (n, 1)
    )
    sketch = build_sketch(data, window)
    _compare_ranges(sketch, rng, seed)


def test_fuzz_short_ranges_deep_in_long_history():
    """Short windows at the far end of a long prefix: the subtraction of two
    huge nearly-equal prefix rows is the classic failure mode."""
    seed = 3001
    rng = np.random.default_rng(seed)
    n, window, n_windows = 5, 4, 6000
    data = rng.standard_normal((n, n_windows * window)) + 1e5
    sketch = build_sketch(data, window)
    aggregates = build_prefix_aggregates(
        sketch.means, sketch.stds, sketch.covs, sketch.sizes
    )
    for lo in (5900, 5990, 5998):
        hi = min(lo + int(rng.integers(1, 8)), n_windows)
        idx = np.arange(lo, hi)
        direct = combine_matrix(
            sketch.means[:, idx],
            sketch.stds[:, idx],
            sketch.covs[idx],
            sketch.sizes[idx].astype(np.float64),
        )
        prefix = combine_matrix_prefix(aggregates, lo, hi)
        worst = float(np.max(np.abs(prefix - direct)))
        assert worst <= PREFIX_ATOL, (
            f"seed={seed}, range=[{lo}, {hi}), max|diff|={worst:.3e}"
        )
