"""Tests for the declarative query spec layer (repro.api.spec)."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import OPS, Provenance, QuerySpec, WindowSpec
from repro.core.segmentation import BasicWindowPlan
from repro.exceptions import DataError, SegmentationError

PLAN = BasicWindowPlan(length=600, window_size=50)


def spec_for(op: str, **overrides) -> QuerySpec:
    """A minimal valid spec for each operation."""
    window = overrides.pop("window", WindowSpec(end=599, length=200))
    defaults = {
        "matrix": {},
        "network": {"theta": 0.5},
        "top_k": {"k": 5},
        "anticorrelated": {"k": 5},
        "neighbors": {"node": "stn000", "theta": 0.5},
        "pairs_in_range": {"low": 0.2, "high": 0.4},
        "degree": {"theta": 0.5},
        "diff_network": {
            "baseline": WindowSpec(end=399, length=200),
            "theta": 0.5,
        },
        "subscribe": {"theta": 0.5},
    }[op]
    defaults.update(overrides)
    return QuerySpec(op=op, window=window, **defaults)


class TestWindowSpec:
    def test_end_length_resolves(self):
        window = WindowSpec(end=599, length=200).resolve(PLAN)
        assert (window.end, window.length) == (599, 200)

    def test_span_resolves_to_same_window(self):
        a = WindowSpec(end=599, length=200).resolve(PLAN)
        b = WindowSpec(start=400, stop=600).resolve(PLAN)
        assert a == b

    def test_window_range_resolves_aligned(self):
        window = WindowSpec(first_window=8, n_windows=4).resolve(PLAN)
        assert (window.start, window.stop) == (400, 600)

    def test_exactly_one_form_required(self):
        with pytest.raises(DataError):
            WindowSpec()
        with pytest.raises(DataError):
            WindowSpec(end=599, length=200, start=400, stop=600)
        with pytest.raises(DataError):
            WindowSpec(end=599)  # half a form
        with pytest.raises(DataError):
            WindowSpec(end=599, n_windows=4)  # mixed forms

    def test_rejects_non_integers(self):
        with pytest.raises(DataError):
            WindowSpec(end=599.5, length=200)
        with pytest.raises(DataError):
            WindowSpec(end=True, length=200)

    def test_rejects_empty_span(self):
        with pytest.raises(DataError):
            WindowSpec(start=400, stop=400)
        with pytest.raises(DataError):
            WindowSpec(start=-1, stop=100)

    def test_out_of_plan_raises_at_resolve(self):
        spec = WindowSpec(first_window=10, n_windows=4)
        with pytest.raises(SegmentationError):
            spec.resolve(PLAN)

    def test_round_trip(self):
        for window in (
            WindowSpec(end=599, length=200),
            WindowSpec(start=0, stop=50),
            WindowSpec(first_window=0, n_windows=12),
        ):
            assert WindowSpec.from_dict(window.to_dict()) == window

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(DataError):
            WindowSpec.from_dict({"end": 599, "length": 200, "frob": 1})

    def test_hashable(self):
        assert len({WindowSpec(end=599, length=200),
                    WindowSpec(end=599, length=200)}) == 1


class TestQuerySpecValidation:
    @pytest.mark.parametrize("op", OPS)
    def test_minimal_spec_valid(self, op):
        assert spec_for(op).op == op

    def test_unknown_op(self):
        with pytest.raises(DataError):
            QuerySpec(op="frobnicate", window=WindowSpec(end=599, length=200))

    @pytest.mark.parametrize(
        "op,missing",
        [
            ("network", "theta"),
            ("top_k", "k"),
            ("anticorrelated", "k"),
            ("neighbors", "node"),
            ("neighbors", "theta"),
            ("pairs_in_range", "low"),
            ("degree", "theta"),
            ("diff_network", "baseline"),
            ("diff_network", "theta"),
        ],
    )
    def test_required_fields(self, op, missing):
        with pytest.raises(DataError, match=f"requires {missing}"):
            spec_for(op, **{missing: None})

    @pytest.mark.parametrize(
        "op,extra",
        [
            ("matrix", {"theta": 0.5}),
            ("network", {"k": 3}),
            ("top_k", {"theta": 0.5}),
            ("degree", {"baseline": WindowSpec(end=399, length=200)}),
        ],
    )
    def test_irrelevant_fields_rejected(self, op, extra):
        with pytest.raises(DataError, match="does not accept"):
            spec_for(op, **extra)

    def test_theta_accepts_any_finite_value(self):
        # Out-of-[-1, 1] thresholds stay legal (empty/complete networks);
        # threshold sweeps and the classic engine paths rely on that.
        assert spec_for("network", theta=1.5).theta == 1.5
        assert spec_for("network", theta=-2).theta == -2.0
        assert spec_for("network", theta=-0.5).theta == -0.5
        with pytest.raises(DataError):
            spec_for("network", theta=float("nan"))
        with pytest.raises(DataError):
            spec_for("network", theta=float("inf"))
        with pytest.raises(DataError):
            spec_for("network", theta="0.5")

    def test_k_positive_integer(self):
        with pytest.raises(DataError):
            spec_for("top_k", k=0)
        with pytest.raises(DataError):
            spec_for("top_k", k=2.5)
        with pytest.raises(DataError):
            spec_for("top_k", k=True)

    def test_range_ordering(self):
        with pytest.raises(DataError):
            spec_for("pairs_in_range", low=0.5, high=0.2)

    def test_engine_validation(self):
        with pytest.raises(DataError):
            spec_for("matrix", engine="quantum")
        with pytest.raises(DataError):
            spec_for("matrix", method="eq5")  # method without approx engine
        with pytest.raises(DataError):
            spec_for("matrix", engine="approx", method="fft")
        assert spec_for("matrix", engine="approx", method="auto").method == "auto"

    def test_windows_property(self):
        assert len(spec_for("matrix").windows) == 1
        assert len(spec_for("diff_network").windows) == 2

    def test_frozen_and_hashable(self):
        spec = spec_for("network")
        with pytest.raises(AttributeError):
            spec.theta = 0.9
        assert len({spec, spec_for("network")}) == 1


class TestSerialization:
    @pytest.mark.parametrize("op", OPS)
    def test_dict_round_trip(self, op):
        spec = spec_for(op)
        assert QuerySpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("op", OPS)
    def test_json_round_trip(self, op):
        spec = spec_for(op)
        assert QuerySpec.from_json(spec.to_json()) == spec

    def test_json_is_one_line_and_plain(self):
        text = spec_for("diff_network").to_json()
        assert "\n" not in text
        payload = json.loads(text)
        assert payload["op"] == "diff_network"
        assert payload["baseline"] == {"end": 399, "length": 200}

    def test_none_fields_omitted(self):
        payload = spec_for("top_k").to_dict()
        assert "theta" not in payload
        assert "engine" not in payload  # default engine omitted

    def test_approx_engine_serialized(self):
        spec = spec_for("matrix", engine="approx", method="average")
        payload = spec.to_dict()
        assert payload["engine"] == "approx"
        assert payload["method"] == "average"
        assert QuerySpec.from_dict(payload) == spec

    def test_from_dict_rejects_unknown_keys(self):
        payload = spec_for("matrix").to_dict()
        payload["surprise"] = 1
        with pytest.raises(DataError, match="unknown query spec fields"):
            QuerySpec.from_dict(payload)

    def test_from_dict_requires_op_and_window(self):
        with pytest.raises(DataError):
            QuerySpec.from_dict({"op": "matrix"})
        with pytest.raises(DataError):
            QuerySpec.from_dict({"window": {"end": 1, "length": 1}})

    def test_from_json_rejects_invalid_json(self):
        with pytest.raises(DataError, match="invalid query spec JSON"):
            QuerySpec.from_json("{nope")


class TestProvenance:
    def test_to_dict_round_trips_fields(self):
        provenance = Provenance(
            backend="mmap", execution="parallel", n_workers=4, coalesced=True
        )
        payload = provenance.to_dict()
        assert payload["backend"] == "mmap"
        assert payload["execution"] == "parallel"
        assert payload["n_workers"] == 4
        assert payload["coalesced"] is True


class TestNumpyIntegers:
    """Window ends routinely come out of array arithmetic; numpy integral
    types must be accepted (and normalized) everywhere plain ints are."""

    def test_window_spec_accepts_and_normalizes_numpy_ints(self):
        import numpy as np

        window = WindowSpec(end=np.int64(599), length=np.int32(200))
        assert window == WindowSpec(end=599, length=200)
        assert type(window.end) is int and type(window.length) is int
        assert WindowSpec.from_dict(window.to_dict()) == window

    def test_engine_delegation_accepts_numpy_ints(self):
        import numpy as np

        from repro.core.exact import TsubasaHistorical

        rng = np.random.default_rng(0)
        engine = TsubasaHistorical(rng.normal(size=(4, 300)), window_size=50)
        a = engine.correlation_matrix((np.int64(299), np.int64(100))).values
        b = engine.correlation_matrix((299, 100)).values
        np.testing.assert_array_equal(a, b)

    def test_query_spec_normalizes_numpy_scalars(self):
        import numpy as np

        spec = spec_for("top_k", k=np.int64(5))
        assert type(spec.k) is int
        spec = spec_for("network", theta=np.float64(0.5))
        assert type(spec.theta) is float
        spec = spec_for("pairs_in_range", low=np.int64(0), high=np.float64(0.5))
        assert type(spec.low) is float and type(spec.high) is float
        assert QuerySpec.from_json(spec.to_json()) == spec
