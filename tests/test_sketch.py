"""Tests for repro.core.sketch (Algorithm 1 preprocessing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sketch import Sketch, build_sketch
from repro.exceptions import DataError, SketchError


class TestBuildSketch:
    def test_shapes(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        n, length = small_matrix.shape
        ns = length // 50
        assert sketch.n_series == n
        assert sketch.n_windows == ns
        assert sketch.means.shape == (n, ns)
        assert sketch.stds.shape == (n, ns)
        assert sketch.covs.shape == (ns, n, n)
        assert sketch.length == length

    def test_window_statistics_match_numpy(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=100)
        for j in range(sketch.n_windows):
            block = small_matrix[:, j * 100 : (j + 1) * 100]
            np.testing.assert_allclose(sketch.means[:, j], block.mean(axis=1))
            np.testing.assert_allclose(sketch.stds[:, j], block.std(axis=1))
            np.testing.assert_allclose(
                sketch.covs[j], np.cov(block, bias=True), atol=1e-12
            )

    def test_default_names(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        assert sketch.names[0] == "s0000"
        assert len(sketch.names) == small_matrix.shape[0]

    def test_custom_names(self, rng):
        data = rng.normal(size=(2, 40))
        sketch = build_sketch(data, window_size=20, names=["x", "y"])
        assert sketch.names == ["x", "y"]

    def test_trailing_short_window(self, rng):
        data = rng.normal(size=(3, 110))
        sketch = build_sketch(data, window_size=50)
        assert sketch.n_windows == 3
        assert list(sketch.sizes) == [50, 50, 10]

    def test_rejects_1d(self, rng):
        with pytest.raises(DataError):
            build_sketch(rng.normal(size=50), window_size=10)


class TestSketchCorrelations:
    def test_correlations_recover_paper_form(self, rng):
        data = rng.normal(size=(4, 80))
        sketch = build_sketch(data, window_size=40)
        corrs = sketch.correlations()
        for j in range(2):
            block = data[:, j * 40 : (j + 1) * 40]
            np.testing.assert_allclose(corrs[j], np.corrcoef(block), atol=1e-12)

    def test_constant_window_correlation_zero(self, rng):
        data = rng.normal(size=(3, 40))
        data[0, :20] = 7.0
        sketch = build_sketch(data, window_size=20)
        corrs = sketch.correlations()
        assert corrs[0][0, 1] == 0.0
        assert corrs[0][1, 0] == 0.0


class TestSketchSelect:
    def test_select_subset(self, small_sketch):
        subset = small_sketch.select(np.array([1, 3, 5]))
        assert subset.n_windows == 3
        np.testing.assert_array_equal(subset.means, small_sketch.means[:, [1, 3, 5]])
        np.testing.assert_array_equal(subset.covs, small_sketch.covs[[1, 3, 5]])

    def test_select_out_of_range(self, small_sketch):
        with pytest.raises(SketchError):
            small_sketch.select(np.array([99]))

    def test_select_empty_allowed(self, small_sketch):
        subset = small_sketch.select(np.array([], dtype=np.int64))
        assert subset.n_windows == 0


class TestAppendWindow:
    def test_append_extends_sketch(self, rng):
        data = rng.normal(size=(3, 100))
        sketch = build_sketch(data[:, :80], window_size=20)
        sketch.append_window(data[:, 80:100])
        full = build_sketch(data, window_size=20)
        np.testing.assert_allclose(sketch.means, full.means)
        np.testing.assert_allclose(sketch.stds, full.stds)
        np.testing.assert_allclose(sketch.covs, full.covs, atol=1e-12)

    def test_append_variable_size(self, rng):
        data = rng.normal(size=(3, 60))
        sketch = build_sketch(data, window_size=20)
        sketch.append_window(rng.normal(size=(3, 7)))
        assert sketch.n_windows == 4
        assert sketch.sizes[-1] == 7

    def test_append_rejects_bad_shapes(self, rng):
        sketch = build_sketch(rng.normal(size=(3, 60)), window_size=20)
        with pytest.raises(DataError):
            sketch.append_window(rng.normal(size=(4, 20)))
        with pytest.raises(DataError):
            sketch.append_window(np.empty((3, 0)))


class TestDropLeadingWindows:
    def test_drop(self, small_sketch):
        before = small_sketch.n_windows
        small_sketch.drop_leading_windows(2)
        assert small_sketch.n_windows == before - 2

    def test_drop_everything_then_invalid(self, small_sketch):
        small_sketch.drop_leading_windows(small_sketch.n_windows)
        assert small_sketch.n_windows == 0
        with pytest.raises(SketchError):
            small_sketch.drop_leading_windows(1)


class TestSketchValidation:
    def test_constructor_validates_shapes(self, rng):
        with pytest.raises(SketchError):
            Sketch(
                names=["a"],
                window_size=10,
                means=np.zeros((2, 3)),
                stds=np.zeros((2, 3)),
                covs=np.zeros((3, 2, 2)),
                sizes=np.full(3, 10),
            )
        with pytest.raises(SketchError):
            Sketch(
                names=["a", "b"],
                window_size=10,
                means=np.zeros((2, 3)),
                stds=np.zeros((2, 2)),
                covs=np.zeros((3, 2, 2)),
                sizes=np.full(3, 10),
            )
