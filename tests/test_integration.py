"""Cross-module integration tests: full pipelines and failure injection."""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.analysis import summarize_dynamics, summarize_topology
from repro.baseline import BaselineExact
from repro.core import TsubasaHistorical, TsubasaRealtime, similarity_ratio
from repro.data import generate_station_dataset
from repro.exceptions import StorageError
from repro.parallel import parallel_query, parallel_sketch
from repro.storage import SqliteSketchStore, load_sketch, save_sketch
from repro.streams import ReplaySource, StreamIngestor


class TestHistoricalPipeline:
    """generate -> sketch -> disk -> parallel query -> network -> analysis."""

    def test_end_to_end(self, tmp_path):
        dataset = generate_station_dataset(n_stations=25, n_points=1000,
                                           seed=31)
        store_path = tmp_path / "pipeline.db"

        sketch_result = parallel_sketch(
            dataset.values, 50, n_workers=2, store_path=store_path,
            names=dataset.names,
        )
        assert sketch_result.sketch.n_windows == 20

        query_result = parallel_query(
            np.arange(10, 20), n_workers=2, store_path=store_path
        )
        baseline = BaselineExact(dataset.values, names=dataset.names)
        expected = baseline.correlation_matrix((999, 500)).values
        np.testing.assert_allclose(query_result.matrix, expected, atol=1e-9)

        engine = TsubasaHistorical(
            dataset.values, 50, names=dataset.names,
            coordinates=dataset.coordinates,
        )
        network = engine.network((999, 500), theta=0.5)
        summary = summarize_topology(network)
        assert summary.n_nodes == 25
        assert 0 <= summary.n_edges <= 300

    def test_three_engines_agree(self):
        """TSUBASA, parallel TSUBASA, and the baseline give one answer."""
        dataset = generate_station_dataset(n_stations=15, n_points=600,
                                           seed=5)
        query = (599, 300)
        tsubasa = TsubasaHistorical(dataset.values, 50)
        baseline = BaselineExact(dataset.values)
        sketch = tsubasa.sketch
        parallel = parallel_query(np.arange(6, 12), n_workers=2,
                                  sketch=sketch)

        a = tsubasa.correlation_matrix(query).values
        b = baseline.correlation_matrix(query).values
        np.testing.assert_allclose(a, b, atol=1e-9)
        np.testing.assert_allclose(parallel.matrix, b, atol=1e-9)


class TestRealtimeContinuesHistorical:
    def test_warm_start_from_stored_sketch(self, tmp_path):
        """Sketch to disk, reload in a 'new process', continue streaming."""
        from repro.core.lemma2 import SlidingCorrelationState

        dataset = generate_station_dataset(n_stations=12, n_points=900,
                                           seed=41)
        store_path = tmp_path / "warm.db"
        historical = TsubasaHistorical(dataset.values[:, :600], 50)
        with SqliteSketchStore(store_path) as store:
            save_sketch(store, historical.sketch)

        with SqliteSketchStore(store_path) as store:
            reloaded = load_sketch(store)
        state = SlidingCorrelationState(reloaded, n_windows=12)
        for step in range(6):
            lo = 600 + step * 50
            state.slide_raw(dataset.values[:, lo : lo + 50])
        ref = np.corrcoef(dataset.values[:, 300:900])
        np.testing.assert_allclose(state.correlation_matrix(), ref, atol=1e-9)

    def test_streaming_matches_repeated_historical_queries(self):
        """Each real-time snapshot equals the equivalent historical query."""
        dataset = generate_station_dataset(n_stations=10, n_points=800,
                                           seed=3)
        realtime = TsubasaRealtime(dataset.values[:, :400], 50,
                                   names=dataset.names)
        historical = TsubasaHistorical(dataset.values, 50,
                                       names=dataset.names)
        ingestor = StreamIngestor(realtime, theta=0.5)
        snapshots = ingestor.run(ReplaySource(dataset.values, 50, start=400))
        for snap in snapshots:
            hist_net = historical.network((snap.timestamp - 1, 400), 0.5)
            assert similarity_ratio(
                snap.network.adjacency, hist_net.adjacency
            ) == 1.0
        dynamics = summarize_dynamics([s.network for s in snapshots])
        assert dynamics.n_snapshots == 8


class TestFailureInjection:
    def test_corrupted_pair_blob_detected(self, tmp_path):
        dataset = generate_station_dataset(n_stations=5, n_points=200, seed=1)
        path = tmp_path / "corrupt.db"
        engine = TsubasaHistorical(dataset.values, 50)
        with SqliteSketchStore(path) as store:
            save_sketch(store, engine.sketch)
        # Truncate one pair blob behind the store's back.
        conn = sqlite3.connect(path)
        conn.execute("UPDATE windows SET pairs = X'00112233' WHERE idx = 1")
        conn.commit()
        conn.close()
        with SqliteSketchStore(path) as store:
            with pytest.raises(StorageError):
                load_sketch(store)

    def test_missing_metadata_detected(self, tmp_path):
        path = tmp_path / "nometa.db"
        dataset = generate_station_dataset(n_stations=4, n_points=100, seed=2)
        engine = TsubasaHistorical(dataset.values, 50)
        with SqliteSketchStore(path) as store:
            save_sketch(store, engine.sketch)
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM meta")
        conn.commit()
        conn.close()
        with SqliteSketchStore(path) as store:
            with pytest.raises(StorageError):
                load_sketch(store)

    def test_partial_window_set_detected(self, tmp_path):
        path = tmp_path / "partial.db"
        dataset = generate_station_dataset(n_stations=4, n_points=200, seed=2)
        engine = TsubasaHistorical(dataset.values, 50)
        with SqliteSketchStore(path) as store:
            save_sketch(store, engine.sketch)
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM windows WHERE idx = 2")
        conn.commit()
        conn.close()
        with SqliteSketchStore(path) as store:
            with pytest.raises(StorageError):
                load_sketch(store, indices=[0, 1, 2, 3])
            # Loading only intact windows still works.
            partial = load_sketch(store, indices=[0, 1, 3])
            assert partial.n_windows == 3


class TestNumericalEdgeCases:
    def test_huge_offsets_stay_exact(self):
        """Catastrophic-cancellation check: values with a large common mean."""
        rng = np.random.default_rng(8)
        data = rng.normal(size=(6, 400)) + 1e6
        engine = TsubasaHistorical(data, 50)
        result = engine.correlation_matrix((399, 400)).values
        expected = np.corrcoef(data)
        np.testing.assert_allclose(result, expected, atol=1e-6)

    def test_tiny_variances(self):
        rng = np.random.default_rng(9)
        data = 1e-9 * rng.normal(size=(5, 200))
        engine = TsubasaHistorical(data, 50)
        result = engine.correlation_matrix((199, 200)).values
        np.testing.assert_allclose(result, np.corrcoef(data), atol=1e-8)

    def test_mixed_constant_and_varying_series(self):
        rng = np.random.default_rng(10)
        data = rng.normal(size=(4, 200))
        data[1] = 42.0
        engine = TsubasaHistorical(data, 50)
        result = engine.correlation_matrix((199, 123)).values
        assert np.all(np.isfinite(result))
        assert result[1, 1] == 1.0
        assert np.all(np.delete(result[1], 1) == 0.0)
