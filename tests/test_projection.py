"""Tests for repro.approx.projection (random-projection sketches) and the
Algorithm 4 auto-dispatch added to the approximate engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx.combine import window_statistics_spread
from repro.approx.network import approximate_correlation_matrix
from repro.approx.projection import (
    build_projection_sketch,
    projection_correlation,
    projection_matrix,
)
from repro.approx.sketch import build_approx_sketch
from repro.baseline.naive import baseline_correlation_matrix
from repro.exceptions import DataError, SketchError


@pytest.fixture(scope="module")
def proj_data():
    rng = np.random.default_rng(55)
    base = rng.normal(size=(3, 400))
    mix = rng.normal(size=(12, 3))
    return mix @ base + 0.5 * rng.normal(size=(12, 400))


class TestProjectionMatrix:
    def test_shape_and_scaling(self):
        p = projection_matrix(32, 8, seed=1)
        assert p.shape == (32, 8)
        np.testing.assert_allclose(np.abs(p), 1.0 / np.sqrt(8))

    def test_deterministic(self):
        np.testing.assert_array_equal(
            projection_matrix(16, 4, seed=7), projection_matrix(16, 4, seed=7)
        )

    def test_rejects_bad_args(self):
        with pytest.raises(DataError):
            projection_matrix(0, 4, 0)
        with pytest.raises(DataError):
            projection_matrix(4, 0, 0)

    def test_jl_unbiasedness(self, rng):
        """E[||Px - Py||^2] = ||x - y||^2 for the scaled ±1 scheme."""
        x = rng.normal(size=64)
        y = rng.normal(size=64)
        true = np.sum((x - y) ** 2)
        estimates = []
        for seed in range(200):
            p = projection_matrix(64, 16, seed)
            estimates.append(np.sum(((x - y) @ p) ** 2))
        assert np.mean(estimates) == pytest.approx(true, rel=0.1)


class TestProjectionSketch:
    def test_shapes(self, proj_data):
        sketch = build_projection_sketch(proj_data, 50, n_components=16)
        assert sketch.n_series == 12
        assert sketch.n_windows == 8
        assert sketch.dists_sq.shape == (8, 12, 12)

    def test_distances_estimate_true_distances(self, proj_data):
        """Projected window distances track true normalized distances."""
        from repro.approx.dft import normalize_windows

        sketch = build_projection_sketch(proj_data, 50, n_components=40,
                                         seed=3)
        block = proj_data[:, :50]
        normalized = normalize_windows(block)
        diff = normalized[:, None, :] - normalized[None, :, :]
        true = np.sum(diff**2, axis=2)
        # k=40 of B=50: individual estimates within a loose relative band.
        upper = np.triu_indices(12, k=1)
        ratio = sketch.dists_sq[0][upper] / np.maximum(true[upper], 1e-9)
        assert 0.4 < np.median(ratio) < 1.8

    def test_accuracy_improves_with_components(self, proj_data):
        exact = baseline_correlation_matrix(proj_data)
        errors = []
        for k in (4, 16, 48):
            sketch = build_projection_sketch(proj_data, 50, n_components=k,
                                             seed=11)
            est = projection_correlation(sketch, np.arange(8))
            errors.append(np.abs(est - exact).max())
        assert errors[-1] < errors[0]

    def test_correlation_estimate_reasonable(self, proj_data):
        exact = baseline_correlation_matrix(proj_data)
        sketch = build_projection_sketch(proj_data, 50, n_components=48,
                                         seed=2)
        est = projection_correlation(sketch, np.arange(8))
        assert np.abs(est - exact).max() < 0.35
        # Strongly correlated pairs stay strongly correlated.
        strong = exact > 0.8
        assert np.all(est[strong] > 0.4)

    def test_not_guaranteed_superset(self, proj_data):
        """Unlike the DFT prefix, projections can under-estimate corr."""
        exact = baseline_correlation_matrix(proj_data)
        sketch = build_projection_sketch(proj_data, 50, n_components=8,
                                         seed=1)
        est = projection_correlation(sketch, np.arange(8))
        # Some pair is under-estimated (both signs of error appear).
        assert (est - exact).min() < 0.0

    def test_rejects_bad_selection(self, proj_data):
        sketch = build_projection_sketch(proj_data, 50, n_components=8)
        with pytest.raises(SketchError):
            projection_correlation(sketch, np.array([], dtype=np.int64))
        with pytest.raises(SketchError):
            projection_correlation(sketch, np.array([99]))

    def test_rejects_1d(self, rng):
        with pytest.raises(DataError):
            build_projection_sketch(rng.normal(size=100), 10, 4)


class TestAlgorithm4AutoDispatch:
    def test_homogeneous_windows_pick_average(self, rng):
        """Stationary series -> low drift -> averaging branch."""
        data = rng.normal(size=(6, 400))
        sketch = build_approx_sketch(data, 50, method="fft")
        idx = np.arange(8)
        drift = window_statistics_spread(sketch, idx)
        assert drift < 1.0
        auto = approximate_correlation_matrix(
            sketch, idx, method="auto", drift_tolerance=drift + 0.01
        )
        average = approximate_correlation_matrix(sketch, idx, "average")
        np.testing.assert_array_equal(auto, average)

    def test_drifting_windows_pick_eq5(self, rng):
        data = rng.normal(size=(6, 400))
        data += np.linspace(0, 20, 400)[None, :] * rng.normal(size=(6, 1))
        sketch = build_approx_sketch(data, 50, method="fft")
        idx = np.arange(8)
        assert window_statistics_spread(sketch, idx) > 0.25
        auto = approximate_correlation_matrix(sketch, idx, method="auto")
        eq5 = approximate_correlation_matrix(sketch, idx, "eq5")
        np.testing.assert_array_equal(auto, eq5)

    def test_spread_zero_for_identical_windows(self, rng):
        block = rng.normal(size=(4, 50))
        data = np.tile(block, (1, 4))
        sketch = build_approx_sketch(data, 50, method="fft")
        assert window_statistics_spread(sketch, np.arange(4)) == pytest.approx(
            0.0, abs=1e-9
        )
