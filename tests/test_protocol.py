"""Tests for the versioned wire protocol (repro.api.protocol)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.client import TsubasaClient
from repro.api.protocol import (
    PROTOCOL_VERSION,
    ErrorEnvelope,
    Request,
    Response,
    StreamEvent,
    parse_frame,
    parse_request,
    value_from_payload,
)
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.sketch import build_sketch
from repro.engine.providers import InMemoryProvider
from repro.exceptions import (
    DataError,
    ServiceError,
    SketchError,
    TsubasaError,
    error_code_for,
)

WINDOW = WindowSpec(end=599, length=200)


def spec_for(op: str, **extra) -> QuerySpec:
    defaults = {
        "matrix": {},
        "network": {"theta": 0.5},
        "top_k": {"k": 5},
        "anticorrelated": {"k": 5},
        "neighbors": {"node": "stn000", "theta": 0.5},
        "pairs_in_range": {"low": 0.2, "high": 0.6},
        "degree": {"theta": 0.5},
        "diff_network": {
            "baseline": WindowSpec(end=399, length=200),
            "theta": 0.5,
        },
    }[op]
    defaults.update(extra)
    return QuerySpec(op=op, window=WINDOW, **defaults)


class TestRequestFrames:
    def test_framed_round_trip(self):
        request = Request(spec=spec_for("network"), id="dash-7")
        payload = json.loads(request.to_json())
        assert payload["protocol"] == PROTOCOL_VERSION
        parsed = parse_request(payload)
        assert parsed.spec == request.spec
        assert parsed.id == "dash-7"

    def test_inline_legacy_form(self):
        """The pre-protocol serve format still parses into the same frame."""
        payload = {
            "id": 3,
            "op": "network",
            "window": {"end": 599, "length": 200},
            "theta": 0.5,
        }
        parsed = parse_request(payload)
        assert parsed.spec == spec_for("network")
        assert parsed.id == 3

    def test_missing_id_is_none(self):
        parsed = parse_request({"spec": spec_for("matrix").to_dict()})
        assert parsed.id is None

    @pytest.mark.parametrize("bad_id", [1.5, True, ["x"], {"a": 1}])
    def test_rejects_non_scalar_ids(self, bad_id):
        with pytest.raises(DataError):
            parse_request(
                {"id": bad_id, "spec": spec_for("matrix").to_dict()}
            )

    def test_version_negotiation(self):
        frame = {"protocol": 3, "spec": spec_for("matrix").to_dict()}
        with pytest.raises(DataError, match="unsupported protocol version 3"):
            parse_request(frame)
        # Explicit known versions and omitted version all parse; v2 requests
        # are framed identically to v1 (only completions change encoding).
        assert parse_request(
            {"protocol": 1, "spec": spec_for("matrix").to_dict()}
        ).spec == spec_for("matrix")
        assert parse_request(
            {"protocol": 2, "spec": spec_for("matrix").to_dict()}
        ).spec == spec_for("matrix")

    @pytest.mark.parametrize(
        "frame",
        [
            "not a dict",
            42,
            None,
            [],
            {"protocol": "one", "spec": {"op": "matrix"}},
            {"spec": {"op": "matrix"}},  # spec missing window
            {"spec": spec_for("matrix").to_dict(), "extra": 1},
            {"spec": {"op": "matrix", "window": {"end": 599, "length": 200},
                      "bogus": True}},
        ],
    )
    def test_rejects_malformed_frames(self, frame):
        with pytest.raises(DataError):
            parse_request(frame)

    def test_subscribe_spec_parses(self):
        parsed = parse_request(
            {"spec": {"op": "subscribe",
                      "window": {"start": 0, "stop": 300},
                      "theta": 0.6}}
        )
        assert parsed.spec.op == "subscribe"
        assert parsed.spec.theta == 0.6


class TestCompletionFrames:
    def test_response_round_trip(self):
        response = Response(
            result={"pairs": [["a", "b", 0.9]]},
            id=11,
            seconds=0.25,
            provenance={"backend": "mmap"},
        )
        parsed = parse_frame(json.loads(response.to_json()))
        assert isinstance(parsed, Response)
        assert parsed == response

    def test_error_round_trip_and_code_taxonomy(self):
        exc = SketchError("window not aligned")
        envelope = ErrorEnvelope.from_exception(exc, "q1")
        assert envelope.code == error_code_for(exc) == 2
        parsed = parse_frame(json.loads(envelope.to_json()))
        assert isinstance(parsed, ErrorEnvelope)
        assert parsed == envelope
        rebuilt = parsed.to_exception()
        assert isinstance(rebuilt, SketchError)
        assert str(rebuilt) == "window not aligned"

    def test_non_library_error_envelope(self):
        envelope = ErrorEnvelope.from_exception(RuntimeError("numpy blew up"))
        assert envelope.code is None
        rebuilt = envelope.to_exception()
        assert isinstance(rebuilt, TsubasaError)
        assert "RuntimeError" in str(rebuilt)

    def test_stream_event_round_trip(self):
        event = StreamEvent(
            id="sub", seq=4,
            event={"timestamp": 450, "n_edges": 3, "edges": []},
        )
        parsed = parse_frame(json.loads(event.to_json()))
        assert isinstance(parsed, StreamEvent)
        assert parsed == event

    @pytest.mark.parametrize(
        "frame",
        [
            {"protocol": 1, "ok": False},          # error without error body
            {"protocol": 1, "ok": True},           # neither result nor event
            {"protocol": 1, "id": 1, "ok": True, "event": {}},  # missing seq
            {"protocol": 1, "id": 1, "ok": "yes", "result": {}},
            {"protocol": 3, "id": 1, "ok": True, "result": {}},
            {"protocol": 1, "id": 1, "ok": True, "result": {},
             "seconds": "fast"},
            [],
        ],
    )
    def test_rejects_malformed_completions(self, frame):
        with pytest.raises(DataError):
            parse_frame(frame)

    def test_subscribe_is_rejected_by_inprocess_surfaces(self, small_matrix):
        client = TsubasaClient(
            provider=InMemoryProvider(build_sketch(small_matrix, 50))
        )
        with pytest.raises(ServiceError, match="streaming"):
            client.execute(
                QuerySpec(op="subscribe", window=WINDOW, theta=0.5)
            )


class TestValuePayloadInverse:
    """value_from_payload is the exact inverse of QueryResult.payload."""

    @pytest.fixture()
    def client(self, small_dataset):
        sketch = build_sketch(
            small_dataset.values, 50, names=small_dataset.names
        )
        return TsubasaClient(provider=InMemoryProvider(sketch))

    @pytest.mark.parametrize(
        "op",
        ["matrix", "top_k", "anticorrelated", "neighbors",
         "pairs_in_range", "degree", "diff_network"],
    )
    def test_bit_identical_round_trip(self, client, op):
        spec = spec_for(op)
        result = client.execute(spec)
        # Through real JSON, like the wire does.
        payload = json.loads(json.dumps(result.payload()))
        value = value_from_payload(spec, payload)
        if op == "matrix":
            assert value.names == result.value.names
            np.testing.assert_array_equal(value.values, result.value.values)
        else:
            assert value == result.value

    def test_network_round_trip(self, client):
        spec = spec_for("network")
        result = client.execute(spec)
        payload = json.loads(json.dumps(result.payload()))
        network = value_from_payload(spec, payload)
        original = result.value
        assert network.names == original.names
        assert network.threshold == original.threshold
        assert network.edge_set() == original.edge_set()
        np.testing.assert_array_equal(network.adjacency, original.adjacency)
        for a, b in original.edge_set():
            assert network.edge_weight(a, b) == original.edge_weight(a, b)

    def test_malformed_payload_raises_data_error(self):
        with pytest.raises(DataError):
            value_from_payload(spec_for("matrix"), {"names": ["a"]})
        with pytest.raises(DataError):
            value_from_payload(spec_for("degree"), {"degree": "nope"})
        with pytest.raises(DataError):
            value_from_payload(spec_for("matrix"), "not an object")
