"""Tests for repro.data (generators, grid utilities, file formats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.grid import (
    grid_node_name,
    haversine_km,
    regular_grid,
    station_node_name,
)
from repro.data.gridded import load_gridded_npz, save_gridded_npz
from repro.data.synthetic import (
    StationDataset,
    ar1_series,
    generate_gridded_dataset,
    generate_station_dataset,
)
from repro.data.uscrn import (
    MISSING_SENTINEL,
    interpolate_missing,
    load_uscrn_directory,
    read_uscrn_file,
    write_uscrn_file,
)
from repro.exceptions import DataError


class TestGridUtilities:
    def test_haversine_known_distance(self):
        # New York -> Los Angeles is roughly 3,940 km.
        distance = haversine_km(40.71, -74.01, 34.05, -118.24)
        assert 3900 < distance < 4000

    def test_haversine_zero(self):
        assert haversine_km(45.0, -100.0, 45.0, -100.0) == 0.0

    def test_haversine_broadcasts(self):
        lats = np.array([10.0, 20.0, 30.0])
        distances = haversine_km(lats, 0.0, 0.0, 0.0)
        assert distances.shape == (3,)
        assert np.all(np.diff(distances) > 0)

    def test_regular_grid(self):
        lats, lons = regular_grid(0.0, 2.0, 10.0, 11.0, 1.0)
        assert lats.size == 3 * 2
        assert lats.min() == 0.0 and lats.max() == 2.0

    def test_regular_grid_rejects_bad_bounds(self):
        with pytest.raises(DataError):
            regular_grid(2.0, 0.0, 0.0, 1.0, 1.0)
        with pytest.raises(DataError):
            regular_grid(0.0, 1.0, 0.0, 1.0, 0.0)

    def test_node_names(self):
        assert station_node_name(7) == "stn007"
        name = grid_node_name(41.0, -87.5)
        assert name == "g+041.00-0087.50"


class TestAr1Series:
    def test_shape_and_stationarity(self, rng):
        series = ar1_series(rng, n=200, length=500, phi=0.8, scale=2.0)
        assert series.shape == (200, 500)
        # Stationary std should be near `scale`.
        assert series.std() == pytest.approx(2.0, rel=0.1)

    def test_autocorrelation_increases_with_phi(self, rng):
        low = ar1_series(rng, 1, 4000, phi=0.1, scale=1.0)[0]
        high = ar1_series(rng, 1, 4000, phi=0.95, scale=1.0)[0]
        lag1 = lambda x: np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1(high) > lag1(low)

    def test_rejects_bad_phi(self, rng):
        with pytest.raises(DataError):
            ar1_series(rng, 1, 10, phi=1.0, scale=1.0)


class TestStationDataset:
    def test_default_shape_matches_paper(self):
        dataset = generate_station_dataset(n_stations=10, n_points=100, seed=0)
        assert dataset.n_series == 10
        assert dataset.n_points == 100
        assert len(dataset.coordinates) == 10

    def test_deterministic(self):
        a = generate_station_dataset(n_stations=5, n_points=50, seed=42)
        b = generate_station_dataset(n_stations=5, n_points=50, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seeds_differ(self):
        a = generate_station_dataset(n_stations=5, n_points=50, seed=1)
        b = generate_station_dataset(n_stations=5, n_points=50, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_nearby_stations_more_correlated(self):
        """The substitution requirement: distance-decaying correlation."""
        dataset = generate_station_dataset(n_stations=80, n_points=3000, seed=7)
        corr = np.corrcoef(dataset.values)
        dist = haversine_km(
            dataset.lats[:, None], dataset.lons[:, None],
            dataset.lats[None, :], dataset.lons[None, :],
        )
        mask = ~np.eye(80, dtype=bool)
        near = corr[(dist < 500) & mask]
        far = corr[(dist > 3000) & mask]
        assert near.size and far.size
        assert near.mean() > far.mean() + 0.2

    def test_network_nontrivial_at_paper_threshold(self):
        dataset = generate_station_dataset(n_stations=60, n_points=2000, seed=3)
        corr = np.corrcoef(dataset.values)
        edges = int(np.triu(corr > 0.75, k=1).sum())
        total = 60 * 59 // 2
        assert 0 < edges < total

    def test_anomaly_false_adds_cycles(self):
        raw = generate_station_dataset(
            n_stations=5, n_points=500, seed=1, anomaly=False
        )
        anom = generate_station_dataset(
            n_stations=5, n_points=500, seed=1, anomaly=True
        )
        assert raw.values.std() > anom.values.std()

    def test_subset(self):
        dataset = generate_station_dataset(n_stations=10, n_points=50, seed=0)
        sub = dataset.subset(4)
        assert sub.n_series == 4
        np.testing.assert_array_equal(sub.values, dataset.values[:4])
        with pytest.raises(DataError):
            dataset.subset(11)

    def test_rejects_bad_args(self):
        with pytest.raises(DataError):
            generate_station_dataset(n_stations=0, n_points=10)

    def test_validation(self, rng):
        with pytest.raises(DataError):
            StationDataset(
                names=["a"],
                values=rng.normal(size=(2, 5)),
                lats=np.zeros(2),
                lons=np.zeros(2),
                resolution_hours=1.0,
            )


class TestGriddedDataset:
    def test_shapes(self):
        dataset = generate_gridded_dataset(
            lat_min=30, lat_max=34, lon_min=-100, lon_max=-96,
            resolution_deg=2.0, n_points=200, seed=5,
        )
        assert dataset.n_series == 3 * 3
        assert dataset.n_points == 200
        assert dataset.resolution_hours == 24.0

    def test_grid_names(self):
        dataset = generate_gridded_dataset(
            lat_min=30, lat_max=30, lon_min=-100, lon_max=-100,
            resolution_deg=1.0, n_points=50, seed=0,
        )
        assert dataset.names[0] == "g+030.00-0100.00"


class TestUscrnFormat:
    def test_roundtrip(self, tmp_path, rng):
        values = rng.normal(15.0, 5.0, size=200)
        path = tmp_path / "station.txt"
        write_uscrn_file(path, values, station_id=53012)
        loaded = read_uscrn_file(path)
        np.testing.assert_allclose(loaded, values, atol=0.05)  # 1-decimal format

    def test_missing_values_interpolated(self, tmp_path):
        values = np.array([1.0, np.nan, 3.0, np.nan, np.nan, 6.0])
        path = tmp_path / "gaps.txt"
        write_uscrn_file(path, values, station_id=1)
        loaded = read_uscrn_file(path, interpolate=True)
        np.testing.assert_allclose(loaded, [1, 2, 3, 4, 5, 6], atol=0.05)

    def test_missing_values_preserved_without_interpolation(self, tmp_path):
        values = np.array([1.0, np.nan, 3.0])
        path = tmp_path / "nan.txt"
        write_uscrn_file(path, values, station_id=1)
        loaded = read_uscrn_file(path, interpolate=False)
        assert np.isnan(loaded[1])

    def test_sentinel_written(self, tmp_path):
        path = tmp_path / "sent.txt"
        write_uscrn_file(path, np.array([np.nan]), station_id=1)
        assert str(MISSING_SENTINEL) in path.read_text().replace(" ", "")[5:] or \
            "-9999" in path.read_text()

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n")
        with pytest.raises(DataError):
            read_uscrn_file(path)
        path.write_text("1 20200101 0000 notanumber\n")
        with pytest.raises(DataError):
            read_uscrn_file(path)
        path.write_text("")
        with pytest.raises(DataError):
            read_uscrn_file(path)

    def test_load_directory(self, tmp_path, rng):
        for i in range(3):
            write_uscrn_file(
                tmp_path / f"stn{i}.txt",
                rng.normal(size=100 + i * 10),
                station_id=i,
            )
        dataset = load_uscrn_directory(tmp_path)
        assert dataset.n_series == 3
        assert dataset.n_points == 100  # truncated to shortest
        assert dataset.names == ["stn0", "stn1", "stn2"]

    def test_load_empty_directory_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_uscrn_directory(tmp_path)


class TestInterpolateMissing:
    def test_interior_gap(self):
        np.testing.assert_allclose(
            interpolate_missing(np.array([1.0, np.nan, 3.0])), [1, 2, 3]
        )

    def test_leading_trailing_filled_with_nearest(self):
        out = interpolate_missing(np.array([np.nan, 2.0, np.nan]))
        np.testing.assert_allclose(out, [2, 2, 2])

    def test_all_nan_raises(self):
        with pytest.raises(DataError):
            interpolate_missing(np.array([np.nan, np.nan]))

    def test_no_gaps_identity(self, rng):
        values = rng.normal(size=20)
        np.testing.assert_array_equal(interpolate_missing(values), values)


class TestGriddedNpz:
    def test_roundtrip(self, tmp_path, rng):
        lat_axis = np.array([30.0, 31.0])
        lon_axis = np.array([-100.0, -99.0, -98.0])
        cube = rng.normal(size=(2, 3, 50))
        path = tmp_path / "grid.npz"
        save_gridded_npz(path, lat_axis, lon_axis, cube)
        dataset = load_gridded_npz(path)
        assert dataset.n_series == 6
        assert dataset.n_points == 50
        np.testing.assert_allclose(dataset.values[0], cube[0, 0])

    def test_land_mask_filters(self, tmp_path, rng):
        lat_axis = np.array([30.0, 31.0])
        lon_axis = np.array([-100.0, -99.0])
        cube = rng.normal(size=(2, 2, 20))
        mask = np.array([[True, False], [False, True]])
        path = tmp_path / "mask.npz"
        save_gridded_npz(path, lat_axis, lon_axis, cube, land_mask=mask)
        dataset = load_gridded_npz(path)
        assert dataset.n_series == 2

    def test_all_ocean_raises(self, tmp_path, rng):
        path = tmp_path / "ocean.npz"
        save_gridded_npz(
            path,
            np.array([30.0]),
            np.array([-100.0]),
            rng.normal(size=(1, 1, 10)),
            land_mask=np.array([[False]]),
        )
        with pytest.raises(DataError):
            load_gridded_npz(path)

    def test_shape_validation(self, tmp_path, rng):
        with pytest.raises(DataError):
            save_gridded_npz(
                tmp_path / "bad.npz",
                np.array([30.0]),
                np.array([-100.0]),
                rng.normal(size=(2, 1, 10)),
            )

    def test_missing_keys_raise(self, tmp_path, rng):
        path = tmp_path / "broken.npz"
        np.savez(path, lat=np.array([1.0]))
        with pytest.raises(DataError):
            load_gridded_npz(path)
