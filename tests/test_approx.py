"""Tests for the approximate pipeline: sketch, Eq. 5, Algorithm 4, Eq. 6."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import compare_matrices
from repro.approx.combine import (
    eq5_correlation,
    pseudo_covariances,
    statstream_correlation,
)
from repro.approx.network import TsubasaApproximate, approximate_correlation_matrix
from repro.approx.realtime import ApproxSlidingState
from repro.approx.sketch import ApproxSketch, build_approx_sketch, sketch_block
from repro.baseline.naive import baseline_correlation_matrix
from repro.exceptions import DataError, SketchError


@pytest.fixture(scope="module")
def approx_data():
    rng = np.random.default_rng(77)
    base = rng.normal(size=(3, 400))
    mix = rng.normal(size=(10, 3))
    # Nonstationary drift makes the series "uncooperative" (§2.2).
    drift = np.linspace(0, 3, 400) * rng.normal(size=(10, 1))
    return mix @ base + rng.normal(size=(10, 400)) + drift


class TestBuildApproxSketch:
    def test_shapes(self, approx_data):
        sketch = build_approx_sketch(approx_data, window_size=50)
        assert sketch.n_series == 10
        assert sketch.n_windows == 8
        assert sketch.dists_sq.shape == (8, 10, 10)
        assert sketch.n_coeffs == 50

    def test_fraction_configuration(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50, coeff_fraction=0.75)
        assert sketch.n_coeffs == 38

    def test_rejects_both_configs(self, approx_data):
        with pytest.raises(DataError):
            build_approx_sketch(approx_data, 50, n_coeffs=10, coeff_fraction=0.5)

    def test_rejects_bad_n_coeffs(self, approx_data):
        with pytest.raises(DataError):
            build_approx_sketch(approx_data, 50, n_coeffs=51)

    def test_window_correlations_all_coeffs_exact(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        corrs = sketch.window_correlations()
        for j in range(sketch.n_windows):
            block = approx_data[:, j * 50 : (j + 1) * 50]
            expected = np.corrcoef(block)
            np.testing.assert_allclose(corrs[j], expected, atol=1e-9)

    def test_select(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        subset = sketch.select(np.array([0, 2]))
        assert subset.n_windows == 2
        with pytest.raises(SketchError):
            sketch.select(np.array([100]))

    def test_sketch_block_matches_builder(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50, n_coeffs=20)
        mean, std, dist = sketch_block(approx_data[:, :50], 20)
        np.testing.assert_allclose(mean, sketch.means[:, 0])
        np.testing.assert_allclose(std, sketch.stds[:, 0])
        np.testing.assert_allclose(dist, sketch.dists_sq[0], atol=1e-9)


class TestEq5Correlation:
    def test_all_coefficients_is_exact(self, approx_data):
        """§3.2: with n = B the approximation equals the exact correlation."""
        sketch = build_approx_sketch(approx_data, 50)
        corr = eq5_correlation(sketch, np.arange(8))
        np.testing.assert_allclose(
            corr, baseline_correlation_matrix(approx_data), atol=1e-9
        )

    def test_error_decreases_with_coefficients(self, approx_data):
        exact = baseline_correlation_matrix(approx_data)
        errors = []
        for n_coeffs in (5, 15, 30, 50):
            sketch = build_approx_sketch(approx_data, 50, n_coeffs=n_coeffs)
            corr = eq5_correlation(sketch, np.arange(8))
            errors.append(np.abs(corr - exact).max())
        assert errors[-1] == pytest.approx(0.0, abs=1e-9)
        assert errors[0] >= errors[-1]
        # Overall trend decreasing (allow small non-monotonic wiggles).
        assert errors[3] <= errors[1] + 1e-9

    def test_overestimates_correlation(self, approx_data):
        """Prefix distances underestimate => correlations overestimate."""
        exact = baseline_correlation_matrix(approx_data)
        sketch = build_approx_sketch(approx_data, 50, coeff_fraction=0.5)
        corr = eq5_correlation(sketch, np.arange(8))
        assert np.all(corr >= exact - 1e-9)

    def test_rejects_empty_selection(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        with pytest.raises(SketchError):
            eq5_correlation(sketch, np.array([], dtype=np.int64))

    def test_pseudo_covariances_all_coeffs(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        covs = pseudo_covariances(sketch, np.arange(8))
        for j in range(8):
            block = approx_data[:, j * 50 : (j + 1) * 50]
            np.testing.assert_allclose(
                covs[j], np.cov(block, bias=True), atol=1e-9
            )


class TestStatstreamCorrelation:
    def test_unit_diagonal(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        corr = statstream_correlation(sketch, np.arange(8))
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_biased_on_uncooperative_series(self, approx_data):
        """Averaging ignores window-statistics drift; Eq. 5 does not.

        On drifting series the Eq. 5 combination (all coefficients = exact)
        must beat plain averaging.
        """
        exact = baseline_correlation_matrix(approx_data)
        sketch = build_approx_sketch(approx_data, 50)
        avg_err = np.abs(statstream_correlation(sketch, np.arange(8)) - exact)
        eq5_err = np.abs(eq5_correlation(sketch, np.arange(8)) - exact)
        assert eq5_err.max() < avg_err.max()


class TestTsubasaApproximate:
    def test_network_superset_of_exact(self, approx_data):
        """Eq. 4: the approximate network has no false negatives."""
        sketch = build_approx_sketch(approx_data, 50, coeff_fraction=0.5)
        engine = TsubasaApproximate(sketch)
        theta = 0.6
        approx_corr = engine.correlation_matrix((399, 400)).values
        exact = baseline_correlation_matrix(approx_data)
        comparison = compare_matrices(exact, approx_corr, theta)
        assert comparison.is_superset
        assert comparison.approx_edges >= comparison.exact_edges

    def test_rejects_non_aligned_query(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        engine = TsubasaApproximate(sketch)
        with pytest.raises(SketchError):
            engine.correlation_matrix((399, 123))

    def test_methods_dispatch(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        idx = np.arange(8)
        np.testing.assert_array_equal(
            approximate_correlation_matrix(sketch, idx, "eq5"),
            eq5_correlation(sketch, idx),
        )
        np.testing.assert_array_equal(
            approximate_correlation_matrix(sketch, idx, "average"),
            statstream_correlation(sketch, idx),
        )
        with pytest.raises(DataError):
            approximate_correlation_matrix(sketch, idx, "nope")

    def test_network_threshold(self, approx_data):
        sketch = build_approx_sketch(approx_data, 50)
        engine = TsubasaApproximate(sketch)
        network = engine.network((399, 400), theta=0.6)
        matrix = engine.correlation_matrix((399, 400))
        assert network.n_edges == matrix.n_edges(0.6)


class TestApproxSlidingState:
    def test_all_coeffs_matches_exact_sliding(self, approx_data):
        """Eq. 6 with n = B stays exact through slides."""
        sketch = build_approx_sketch(approx_data[:, :300], 50)
        state = ApproxSlidingState(sketch, n_windows=6, dft_method="fft")
        for step in range(2):
            lo = 300 + step * 50
            state.slide_raw(approx_data[:, lo : lo + 50])
            ref = baseline_correlation_matrix(
                approx_data[:, lo + 50 - 300 : lo + 50]
            )
            np.testing.assert_allclose(
                state.correlation_matrix().values, ref, atol=1e-9
            )

    def test_partial_coeffs_tracks_batch_approximation(self, approx_data):
        """Sliding with k coefficients == rebuilding the k-coeff sketch."""
        n_coeffs = 20
        sketch = build_approx_sketch(
            approx_data[:, :300], 50, n_coeffs=n_coeffs
        )
        state = ApproxSlidingState(sketch, n_windows=6, dft_method="fft")
        state.slide_raw(approx_data[:, 300:350])
        full = build_approx_sketch(
            approx_data[:, :350], 50, n_coeffs=n_coeffs
        )
        expected = eq5_correlation(full, np.arange(1, 7))
        np.testing.assert_allclose(
            state.correlation_matrix().values, expected, atol=1e-9
        )

    def test_network(self, approx_data):
        sketch = build_approx_sketch(approx_data[:, :300], 50)
        state = ApproxSlidingState(sketch, n_windows=6)
        network = state.network(theta=0.5)
        assert network.n_nodes == 10

    def test_rejects_bad_shapes(self, approx_data):
        sketch = build_approx_sketch(approx_data[:, :300], 50)
        state = ApproxSlidingState(sketch, n_windows=6)
        with pytest.raises(Exception):
            state.slide_raw(np.zeros((3, 50)))

    def test_rejects_bad_window_counts(self, approx_data):
        sketch = build_approx_sketch(approx_data[:, :300], 50)
        with pytest.raises(SketchError):
            ApproxSlidingState(sketch, n_windows=7)


class TestApproxSketchValidation:
    def test_constructor_validates(self):
        with pytest.raises(SketchError):
            ApproxSketch(
                names=["a"],
                window_size=10,
                n_coeffs=10,
                means=np.zeros((2, 3)),
                stds=np.zeros((2, 3)),
                dists_sq=np.zeros((3, 2, 2)),
                sizes=np.full(3, 10),
            )
