"""Prefix-aggregate sketches: kernels, providers, persistence, and routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.client import AutoPolicy, TsubasaClient
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.lemma1 import combine_matrix, combine_row
from repro.core.prefix import (
    PREFIX_ATOL,
    PrefixAggregates,
    build_prefix_aggregates,
    combine_matrix_prefix,
    combine_row_prefix,
)
from repro.core.sketch import build_sketch
from repro.engine.providers import (
    InMemoryProvider,
    MmapProvider,
    PrefixProvider,
    StoreProvider,
)
from repro.exceptions import SketchError, StorageError
from repro.storage.base import WindowRecord
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch
from repro.storage.sqlite_store import SqliteSketchStore


@pytest.fixture()
def data():
    rng = np.random.default_rng(42)
    base = rng.standard_normal((1, 900))
    noise = rng.standard_normal((9, 900))
    return 0.6 * base + 0.8 * noise + rng.normal(0, 5, (9, 1))


@pytest.fixture()
def sketch(data):
    return build_sketch(data, 15)  # 60 basic windows


def direct_matrix(sketch, lo, hi):
    idx = np.arange(lo, hi)
    return combine_matrix(
        sketch.means[:, idx],
        sketch.stds[:, idx],
        sketch.covs[idx],
        sketch.sizes[idx].astype(np.float64),
    )


class TestKernel:
    def test_matches_direct_kernel_over_ranges(self, sketch):
        aggregates = build_prefix_aggregates(
            sketch.means, sketch.stds, sketch.covs, sketch.sizes
        )
        for lo, hi in [(0, 60), (0, 1), (59, 60), (10, 42), (3, 7)]:
            np.testing.assert_allclose(
                combine_matrix_prefix(aggregates, lo, hi),
                direct_matrix(sketch, lo, hi),
                rtol=0.0,
                atol=PREFIX_ATOL,
            )

    def test_row_kernel_matches_direct(self, sketch):
        aggregates = build_prefix_aggregates(
            sketch.means, sketch.stds, sketch.covs, sketch.sizes
        )
        idx = np.arange(12, 47)
        for row in (0, 4, 8):
            expected = combine_row(
                sketch.means[:, idx],
                sketch.stds[:, idx],
                sketch.covs[idx][:, row, :],
                sketch.sizes[idx].astype(np.float64),
                row,
            )
            got = combine_row_prefix(aggregates, 12, 47, row)
            np.testing.assert_allclose(got, expected, rtol=0.0, atol=PREFIX_ATOL)
            assert got[row] == 1.0

    def test_matrix_properties(self, sketch):
        aggregates = build_prefix_aggregates(
            sketch.means, sketch.stds, sketch.covs, sketch.sizes
        )
        corr = combine_matrix_prefix(aggregates, 5, 55)
        assert np.all(np.diag(corr) == 1.0)
        assert np.all(corr <= 1.0) and np.all(corr >= -1.0)
        np.testing.assert_allclose(corr, corr.T, atol=1e-12)

    def test_constant_series_reports_zero(self):
        data = np.vstack([
            np.full(300, 3.25),
            np.random.default_rng(0).standard_normal(300),
        ])
        sketch = build_sketch(data, 10)
        aggregates = build_prefix_aggregates(
            sketch.means, sketch.stds, sketch.covs, sketch.sizes
        )
        corr = combine_matrix_prefix(aggregates, 4, 26)
        assert corr[0, 1] == 0.0 and corr[1, 0] == 0.0
        assert corr[0, 0] == 1.0

    def test_incremental_extension_matches_full_build(self, sketch):
        full = build_prefix_aggregates(
            sketch.means, sketch.stds, sketch.covs, sketch.sizes
        )
        chunked = PrefixAggregates.allocate(full.offsets, sketch.n_windows)
        for start in range(0, sketch.n_windows, 7):
            stop = min(start + 7, sketch.n_windows)
            chunked.extend(
                sketch.means[:, start:stop],
                sketch.stds[:, start:stop],
                sketch.covs[start:stop],
                sketch.sizes[start:stop].astype(np.float64),
            )
        assert chunked.rows == full.rows == sketch.n_windows + 1
        np.testing.assert_allclose(
            combine_matrix_prefix(chunked, 2, 58),
            combine_matrix_prefix(full, 2, 58),
            rtol=0.0,
            atol=PREFIX_ATOL,
        )

    def test_range_validation(self, sketch):
        aggregates = build_prefix_aggregates(
            sketch.means, sketch.stds, sketch.covs, sketch.sizes
        )
        for lo, hi in [(-1, 5), (5, 5), (7, 3), (0, 61)]:
            with pytest.raises(SketchError):
                combine_matrix_prefix(aggregates, lo, hi)
        with pytest.raises(SketchError):
            combine_row_prefix(aggregates, 0, 10, 99)

    def test_extend_rejects_overflow_and_shape_mismatch(self, sketch):
        aggregates = PrefixAggregates.allocate(np.zeros(sketch.n_series), 10)
        with pytest.raises(SketchError):
            aggregates.extend(
                sketch.means[:, :11],
                sketch.stds[:, :11],
                sketch.covs[:11],
                sketch.sizes[:11].astype(np.float64),
            )
        with pytest.raises(SketchError):
            aggregates.extend(
                sketch.means[:, :4],
                sketch.stds[:, :4],
                sketch.covs[:3],
                sketch.sizes[:4].astype(np.float64),
            )

    def test_read_only_tables_refuse_extension(self, sketch, tmp_path):
        with MmapStore(tmp_path / "ro.mm") as store:
            save_sketch(store, sketch)
            store.build_prefix()
            aggregates = store.read_prefix()
        assert not aggregates.writable
        with pytest.raises(SketchError, match="read-only"):
            aggregates.extend(
                sketch.means[:, :1],
                sketch.stds[:, :1],
                sketch.covs[:1],
                sketch.sizes[:1].astype(np.float64),
            )


class TestPrefixProvider:
    @pytest.fixture()
    def stores(self, sketch, tmp_path):
        sqlite_path = tmp_path / "p.db"
        mmap_path = tmp_path / "p.mm"
        with SqliteSketchStore(sqlite_path) as store:
            save_sketch(store, sketch)
        with MmapStore(mmap_path) as store:
            save_sketch(store, sketch)
            store.build_prefix()
        return sqlite_path, mmap_path

    def spec(self, first=5, count=40):
        return QuerySpec(
            op="matrix", window=WindowSpec(first_window=first, n_windows=count)
        )

    def test_prefix_path_equal_across_backends(self, sketch, data, stores):
        sqlite_path, mmap_path = stores
        reference = TsubasaClient(provider=InMemoryProvider(sketch)).execute(
            self.spec()
        )
        assert reference.provenance.path == "direct"
        providers = {
            "memory": PrefixProvider(InMemoryProvider(sketch)),
            "store": PrefixProvider(StoreProvider(SqliteSketchStore(sqlite_path))),
            "mmap": MmapProvider(mmap_path),
            "mmap-wrapped": PrefixProvider(MmapProvider(mmap_path, prefix=False)),
        }
        for label, provider in providers.items():
            result = TsubasaClient(provider=provider).execute(self.spec())
            assert result.provenance.path == "prefix", label
            assert result.provenance.execution == "serial"
            np.testing.assert_allclose(
                result.value.values,
                reference.value.values,
                rtol=0.0,
                atol=PREFIX_ATOL,
                err_msg=label,
            )

    def test_backend_name_reports_wrapped_backend(self, sketch, stores):
        sqlite_path, _ = stores
        assert PrefixProvider(InMemoryProvider(sketch)).backend_name == "memory"
        provider = PrefixProvider(StoreProvider(SqliteSketchStore(sqlite_path)))
        assert provider.backend_name == "store"

    def test_lazy_build_covers_only_queried_windows(self, sketch):
        provider = PrefixProvider(InMemoryProvider(sketch), chunk_windows=8)
        assert provider.aggregates is None
        provider.prefix_matrix(0, 20)
        assert provider.aggregates.covered == 20  # only what the query needed
        provider.prefix_matrix(0, 60)
        assert provider.aggregates.covered == 60

    def test_fragmented_and_noncontiguous_selections_delegate(
        self, sketch, data
    ):
        provider = PrefixProvider(InMemoryProvider(sketch, data=data))
        client = TsubasaClient(provider=provider)
        fragmented = client.execute(
            QuerySpec(op="matrix", window=WindowSpec(end=899, length=500))
        )
        assert fragmented.provenance.path == "direct"
        engine_values = TsubasaClient(
            provider=InMemoryProvider(sketch, data=data)
        ).execute(
            QuerySpec(op="matrix", window=WindowSpec(end=899, length=500))
        )
        np.testing.assert_array_equal(
            fragmented.value.values, engine_values.value.values
        )

    def test_persisted_tables_adopted_zero_copy(self, stores):
        _, mmap_path = stores
        provider = PrefixProvider(MmapProvider(mmap_path))
        assert provider.aggregates is not None
        assert not provider.aggregates.writable  # mapped views, not a rebuild
        assert provider.thread_safe_reads

    def test_lazy_wrapper_is_not_thread_safe_until_built(self, sketch):
        provider = PrefixProvider(InMemoryProvider(sketch))
        assert not provider.thread_safe_reads
        provider.prefix_matrix(0, sketch.n_windows)
        assert provider.thread_safe_reads

    def test_delegates_backend_surface(self, sketch, stores):
        sqlite_path, _ = stores
        provider = PrefixProvider(StoreProvider(SqliteSketchStore(sqlite_path)))
        assert provider.cache_hits == 0  # passes through to the wrapped LRU
        assert provider.n_windows == sketch.n_windows
        stats = provider.window_stats(np.arange(3))
        assert stats[0].shape == (sketch.n_series, 3)

    def test_auto_policy_stays_serial_on_prefix_ranges(self, sketch):
        policy = AutoPolicy(n_workers=4, min_cells=1)
        client = TsubasaClient(
            provider=PrefixProvider(InMemoryProvider(sketch)), policy=policy
        )
        result = client.execute(self.spec())
        assert result.provenance.execution == "serial"
        assert result.provenance.path == "prefix"
        # Without prefix tables the same policy fans out.
        plain = TsubasaClient(provider=InMemoryProvider(sketch), policy=policy)
        assert plain.execute(self.spec()).provenance.execution == "parallel"

    def test_network_ops_ride_the_prefix_path(self, sketch, stores):
        _, mmap_path = stores
        client = TsubasaClient(provider=MmapProvider(mmap_path))
        serial = TsubasaClient(provider=InMemoryProvider(sketch))
        spec = QuerySpec(
            op="network",
            window=WindowSpec(first_window=0, n_windows=60),
            theta=0.5,
        )
        result = client.execute(spec)
        assert result.provenance.path == "prefix"
        assert result.value.edge_set() == serial.execute(spec).value.edge_set()


class TestMmapPersistence:
    def test_build_read_roundtrip(self, sketch, tmp_path):
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
            generation = store.read_generation()
            covered = store.build_prefix(chunk_windows=17)
            assert covered == sketch.n_windows
            assert store.prefix_rows == sketch.n_windows + 1
            assert store.read_generation() > generation
            assert store.read_generation() % 2 == 0
            aggregates = store.read_prefix()
        np.testing.assert_allclose(
            combine_matrix_prefix(aggregates, 8, 52),
            direct_matrix(sketch, 8, 52),
            rtol=0.0,
            atol=PREFIX_ATOL,
        )

    def test_build_is_idempotent(self, sketch, tmp_path):
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
            assert store.build_prefix() == sketch.n_windows
            generation = store.read_generation()
            assert store.build_prefix() == sketch.n_windows
            assert store.read_generation() == generation  # no-op, no commit

    def test_read_prefix_absent_returns_none(self, sketch, tmp_path):
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
            assert store.read_prefix() is None
        provider = MmapProvider(tmp_path / "s.mm")
        assert provider.persisted_prefix() is None

    def test_mmap_provider_ignores_tables_when_disabled(self, sketch, tmp_path):
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
            store.build_prefix()
        provider = MmapProvider(tmp_path / "s.mm", prefix=False)
        client = TsubasaClient(provider=provider)
        spec = QuerySpec(
            op="matrix", window=WindowSpec(first_window=0, n_windows=60)
        )
        assert client.execute(spec).provenance.path == "direct"

    def append_records(self, sketch_like, indices):
        return [
            WindowRecord(
                index=j,
                means=sketch_like.means[:, j].copy(),
                stds=sketch_like.stds[:, j].copy(),
                pairs=sketch_like.covs[j].copy(),
                size=int(sketch_like.sizes[j]),
            )
            for j in indices
        ]

    def test_append_after_prefix_extends_incrementally(self, data, tmp_path):
        grown = build_sketch(
            np.concatenate(
                [data, np.random.default_rng(9).standard_normal((9, 90))],
                axis=1,
            ),
            15,
        )  # 66 windows; the first 60 match `sketch`
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, build_sketch(data, 15))
            store.build_prefix()
            rows_before = store.prefix_rows
            store.write_windows(self.append_records(grown, range(60, 66)))
            # A pure append leaves the committed rows valid (they cover the
            # old windows only) …
            assert store.prefix_rows == rows_before
            # … and the incremental rebuild extends from the last committed
            # row to cover the appended windows.
            assert store.build_prefix() == 66
            aggregates = store.read_prefix()
        np.testing.assert_allclose(
            combine_matrix_prefix(aggregates, 30, 66),
            direct_matrix(grown, 30, 66),
            rtol=0.0,
            atol=PREFIX_ATOL,
        )

    def test_overwrite_after_prefix_truncates_and_bumps_generation(
        self, sketch, data, tmp_path
    ):
        """Regression: append/overwrite after prefix materialization must
        bump the generation *and* truncate stale prefix rows — a reader
        combining old cumulative sums with rewritten records would silently
        return corrupt correlations."""
        modified = build_sketch(np.ascontiguousarray(data[:, ::-1]), 15)
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
            store.build_prefix()
            generation = store.read_generation()
            store.write_windows(self.append_records(modified, [20]))
            assert store.read_generation() > generation
            assert store.prefix_rows == 21  # rows past the rewrite are stale
            # Ranges ending beyond the truncation are no longer servable …
            aggregates = store.read_prefix()
            assert aggregates.covered == 20
            with pytest.raises(SketchError):
                combine_matrix_prefix(aggregates, 0, 30)
            # … and a fresh provider falls back to the direct path there.
            provider = MmapProvider(store)
            client = TsubasaClient(provider=provider)
            beyond = client.execute(
                QuerySpec(
                    op="matrix", window=WindowSpec(first_window=0, n_windows=40)
                )
            )
            assert beyond.provenance.path == "direct"
            within = client.execute(
                QuerySpec(
                    op="matrix", window=WindowSpec(first_window=0, n_windows=15)
                )
            )
            assert within.provenance.path == "prefix"
            # Rebuild re-covers everything, with the rewritten record.
            assert store.build_prefix() == 60
        fresh = MmapProvider(tmp_path / "s.mm")
        rebuilt = TsubasaClient(provider=fresh).execute(
            QuerySpec(
                op="matrix", window=WindowSpec(first_window=0, n_windows=40)
            )
        )
        assert rebuilt.provenance.path == "prefix"
        # Sanity: the rewrite really changed window 20, so a stale prefix
        # row would have produced a different matrix.
        assert not np.allclose(modified.covs[20], sketch.covs[20])
        direct = TsubasaClient(
            provider=MmapProvider(tmp_path / "s.mm", prefix=False)
        ).execute(
            QuerySpec(
                op="matrix", window=WindowSpec(first_window=0, n_windows=40)
            )
        )
        np.testing.assert_allclose(
            rebuilt.value.values,
            direct.value.values,
            rtol=0.0,
            atol=PREFIX_ATOL,
        )

    def test_prefix_survives_metadata_rewrite(self, sketch, tmp_path):
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
            store.build_prefix()
            store.write_metadata(store.read_metadata())
            assert store.prefix_rows == sketch.n_windows + 1
        with MmapStore(tmp_path / "s.mm", mode="r") as reopened:
            assert reopened.prefix_rows == sketch.n_windows + 1
            assert reopened.read_prefix() is not None

    def test_build_prefix_requires_writable_store(self, sketch, tmp_path):
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
        with MmapStore(tmp_path / "s.mm", mode="r") as readonly:
            with pytest.raises(StorageError, match="read-only"):
                readonly.build_prefix()

    def test_size_bytes_counts_prefix_tables(self, sketch, tmp_path):
        with MmapStore(tmp_path / "s.mm") as store:
            save_sketch(store, sketch)
            before = store.size_bytes()
            store.build_prefix()
            assert store.size_bytes() > before
