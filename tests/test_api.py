"""Public API surface tests: exports resolve, are documented, and cohere."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.approx",
    "repro.baseline",
    "repro.storage",
    "repro.parallel",
    "repro.streams",
    "repro.data",
    "repro.analysis",
]

MODULES = PACKAGES + [
    "repro.exceptions",
    "repro.cli",
    "repro.api.spec",
    "repro.api.client",
    "repro.api.service",
    "repro.core.stats",
    "repro.core.segmentation",
    "repro.core.lemma1",
    "repro.core.lemma2",
    "repro.core.sketch",
    "repro.core.exact",
    "repro.core.realtime",
    "repro.core.pruning",
    "repro.core.matrix",
    "repro.core.network",
    "repro.core.lagged",
    "repro.core.queries",
    "repro.core.significance",
    "repro.core.sweep",
    "repro.approx.dft",
    "repro.approx.sketch",
    "repro.approx.combine",
    "repro.approx.network",
    "repro.approx.realtime",
    "repro.approx.projection",
    "repro.baseline.naive",
    "repro.storage.base",
    "repro.storage.memory",
    "repro.storage.sqlite_store",
    "repro.storage.serialize",
    "repro.storage.live",
    "repro.parallel.partitioning",
    "repro.parallel.executor",
    "repro.streams.sources",
    "repro.streams.ingestion",
    "repro.streams.aligner",
    "repro.data.grid",
    "repro.data.synthetic",
    "repro.data.uscrn",
    "repro.data.gridded",
    "repro.data.indices",
    "repro.analysis.topology",
    "repro.analysis.communities",
    "repro.analysis.dynamics",
    "repro.analysis.accuracy",
    "repro.analysis.geography",
    "repro.analysis.export",
    "repro.analysis.reporting",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", [m for m in MODULES if m != "repro.cli"])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{module_name} lacks __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name, None)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            # Only check items defined in this package (re-exports covered
            # at their definition site).
            if getattr(obj, "__module__", "").startswith("repro"):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_exception_hierarchy():
    from repro.exceptions import (
        DataError,
        SegmentationError,
        ServiceError,
        SketchError,
        StorageError,
        StreamError,
        TsubasaError,
    )

    for exc in (SegmentationError, SketchError, StorageError, StreamError,
                DataError, ServiceError):
        assert issubclass(exc, TsubasaError)
        assert issubclass(exc, Exception)


def test_top_level_quickstart_surface():
    """The README quickstart only touches top-level names."""
    import repro

    for name in ("TsubasaHistorical", "TsubasaRealtime", "TsubasaApproximate",
                 "BaselineExact", "QueryWindow", "generate_station_dataset",
                 "similarity_ratio", "build_sketch", "build_approx_sketch",
                 "TsubasaClient", "TsubasaService", "QuerySpec", "WindowSpec",
                 "QueryResult"):
        assert hasattr(repro, name)
