"""Tests for repro.storage (memory + SQLite stores, sketch roundtrips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx.sketch import build_approx_sketch
from repro.core.sketch import build_sketch
from repro.exceptions import StorageError
from repro.storage.base import StoreMetadata, WindowRecord
from repro.storage.memory import MemorySketchStore
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import (
    load_approx_sketch,
    load_sketch,
    save_approx_sketch,
    save_sketch,
)
from repro.storage.sqlite_store import SqliteSketchStore


@pytest.fixture(params=["memory", "sqlite-file", "sqlite-memory", "mmap"])
def store(request, tmp_path):
    """Every store implementation behind the same interface."""
    if request.param == "memory":
        yield MemorySketchStore()
    elif request.param == "sqlite-memory":
        with SqliteSketchStore(":memory:") as s:
            yield s
    elif request.param == "mmap":
        with MmapStore(tmp_path / "sketch.mm") as s:
            yield s
    else:
        with SqliteSketchStore(tmp_path / "sketch.db") as s:
            yield s


def _record(index, n=4, size=10, seed=0):
    rng = np.random.default_rng(seed + index)
    pairs = rng.normal(size=(n, n))
    pairs = 0.5 * (pairs + pairs.T)
    return WindowRecord(
        index=index,
        means=rng.normal(size=n),
        stds=np.abs(rng.normal(size=n)),
        pairs=pairs,
        size=size,
    )


class TestStoreContract:
    def test_metadata_roundtrip(self, store):
        metadata = StoreMetadata(
            names=("a", "b"), window_size=50, kind="approx", n_coeffs=12
        )
        store.write_metadata(metadata)
        assert store.read_metadata() == metadata

    def test_metadata_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.read_metadata()

    def test_window_roundtrip(self, store):
        records = [_record(i) for i in range(5)]
        store.write_windows(records)
        assert store.window_count() == 5
        loaded = store.read_windows([3, 1])
        assert [r.index for r in loaded] == [3, 1]
        np.testing.assert_allclose(loaded[0].means, records[3].means)
        np.testing.assert_allclose(loaded[0].pairs, records[3].pairs)
        assert loaded[0].size == records[3].size

    def test_missing_window_raises(self, store):
        store.write_windows([_record(0)])
        with pytest.raises(StorageError):
            store.read_windows([7])

    def test_overwrite_window(self, store):
        store.write_windows([_record(0, seed=1)])
        replacement = _record(0, seed=2)
        store.write_windows([replacement])
        assert store.window_count() == 1
        loaded = store.read_windows([0])[0]
        np.testing.assert_allclose(loaded.means, replacement.means)

    def test_size_bytes_grows(self, store):
        store.write_metadata(
            StoreMetadata(names=("a", "b", "c", "d"), window_size=10)
        )
        store.write_windows([_record(0)])
        first = store.size_bytes()
        store.write_windows([_record(i) for i in range(1, 40)])
        assert store.size_bytes() >= first


class TestSqliteBatchedReads:
    """read_windows issues WHERE idx IN (...) chunks, preserving order."""

    def test_requested_order_preserved(self, tmp_path):
        with SqliteSketchStore(tmp_path / "order.db") as store:
            store.write_windows([_record(i) for i in range(10)])
            wanted = [7, 0, 3, 9, 1]
            loaded = store.read_windows(wanted)
            assert [r.index for r in loaded] == wanted

    def test_duplicate_indices_served(self, tmp_path):
        with SqliteSketchStore(tmp_path / "dup.db") as store:
            store.write_windows([_record(i) for i in range(4)])
            loaded = store.read_windows([2, 2, 0, 2])
            assert [r.index for r in loaded] == [2, 2, 0, 2]
            np.testing.assert_array_equal(loaded[0].pairs, loaded[1].pairs)

    def test_reads_span_in_clause_chunks(self, tmp_path, monkeypatch):
        """Selections larger than one IN (...) chunk stay ordered and complete."""
        from repro.storage import sqlite_store as module

        monkeypatch.setattr(module, "_IN_CLAUSE_LIMIT", 3)
        with SqliteSketchStore(tmp_path / "chunk.db") as store:
            records = [_record(i) for i in range(11)]
            store.write_windows(records)
            wanted = [10, 4, 9, 0, 8, 1, 7, 2, 6, 3, 5]
            loaded = store.read_windows(wanted)
            assert [r.index for r in loaded] == wanted
            for got in loaded:
                np.testing.assert_array_equal(got.pairs, records[got.index].pairs)
                assert got.size == records[got.index].size

    def test_missing_index_raises_across_chunks(self, tmp_path, monkeypatch):
        from repro.storage import sqlite_store as module

        monkeypatch.setattr(module, "_IN_CLAUSE_LIMIT", 2)
        with SqliteSketchStore(tmp_path / "miss.db") as store:
            store.write_windows([_record(i) for i in range(5)])
            with pytest.raises(StorageError, match="99"):
                store.read_windows([0, 1, 2, 99, 3])

    def test_batched_read_matches_single_reads(self, tmp_path):
        with SqliteSketchStore(tmp_path / "eq.db") as store:
            store.write_windows([_record(i, n=6) for i in range(8)])
            batched = store.read_windows(list(range(8)))
            for i, record in enumerate(batched):
                single = store.read_windows([i])[0]
                np.testing.assert_array_equal(record.pairs, single.pairs)
                np.testing.assert_array_equal(record.means, single.means)
                np.testing.assert_array_equal(record.stds, single.stds)


class TestSqliteSpecifics:
    def test_file_persists_across_connections(self, tmp_path):
        path = tmp_path / "persist.db"
        with SqliteSketchStore(path) as store:
            store.write_metadata(StoreMetadata(names=("x",), window_size=5))
            store.write_windows([_record(0, n=1)])
        with SqliteSketchStore(path) as store:
            assert store.window_count() == 1
            assert store.read_metadata().names == ("x",)

    def test_size_reflects_file(self, tmp_path):
        path = tmp_path / "size.db"
        with SqliteSketchStore(path) as store:
            store.write_windows([_record(i, n=16) for i in range(20)])
            assert store.size_bytes() == path.stat().st_size

    def test_symmetry_preserved(self, tmp_path):
        with SqliteSketchStore(tmp_path / "sym.db") as store:
            record = _record(0, n=7)
            store.write_windows([record])
            loaded = store.read_windows([0])[0]
            np.testing.assert_allclose(loaded.pairs, loaded.pairs.T)
            np.testing.assert_allclose(loaded.pairs, record.pairs)


class TestSketchSerialization:
    def test_exact_roundtrip(self, small_matrix, tmp_path):
        sketch = build_sketch(small_matrix, window_size=50)
        with SqliteSketchStore(tmp_path / "exact.db") as store:
            save_sketch(store, sketch, batch_size=5)
            loaded = load_sketch(store)
        assert loaded.names == sketch.names
        assert loaded.window_size == sketch.window_size
        np.testing.assert_allclose(loaded.means, sketch.means)
        np.testing.assert_allclose(loaded.stds, sketch.stds)
        np.testing.assert_allclose(loaded.covs, sketch.covs)
        np.testing.assert_array_equal(loaded.sizes, sketch.sizes)

    def test_partial_window_load(self, small_matrix, tmp_path):
        sketch = build_sketch(small_matrix, window_size=50)
        with SqliteSketchStore(tmp_path / "part.db") as store:
            save_sketch(store, sketch)
            loaded = load_sketch(store, indices=[2, 5, 7])
        np.testing.assert_allclose(loaded.means, sketch.means[:, [2, 5, 7]])

    def test_approx_roundtrip(self, small_matrix, tmp_path):
        sketch = build_approx_sketch(small_matrix, 50, n_coeffs=20)
        with SqliteSketchStore(tmp_path / "approx.db") as store:
            save_approx_sketch(store, sketch)
            loaded = load_approx_sketch(store)
        assert loaded.n_coeffs == 20
        np.testing.assert_allclose(loaded.dists_sq, sketch.dists_sq)

    def test_kind_mismatch_raises(self, small_matrix, tmp_path):
        sketch = build_sketch(small_matrix, window_size=50)
        with SqliteSketchStore(tmp_path / "kind.db") as store:
            save_sketch(store, sketch)
            with pytest.raises(StorageError):
                load_approx_sketch(store)

    def test_loaded_sketch_answers_queries(self, small_matrix, tmp_path):
        """End-to-end: sketch -> disk -> load -> exact correlation."""
        from repro.core.lemma1 import combine_matrix

        sketch = build_sketch(small_matrix, window_size=50)
        with SqliteSketchStore(tmp_path / "query.db") as store:
            save_sketch(store, sketch)
            loaded = load_sketch(store)
        corr = combine_matrix(
            loaded.means, loaded.stds, loaded.covs, loaded.sizes
        )
        np.testing.assert_allclose(corr, np.corrcoef(small_matrix), atol=1e-10)
