"""Tests for repro.analysis.export (interchange-format writers)."""

from __future__ import annotations

import csv

import networkx as nx
import numpy as np
import pytest

from repro.analysis.export import (
    read_adjacency_npz,
    write_adjacency_npz,
    write_edge_csv,
    write_graphml,
    write_matrix_csv,
)
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.exceptions import DataError


@pytest.fixture()
def network():
    values = np.array(
        [[1.0, 0.9, 0.1], [0.9, 1.0, 0.8], [0.1, 0.8, 1.0]]
    )
    matrix = CorrelationMatrix(names=["a", "b", "c"], values=values)
    coords = {"a": (40.0, -100.0), "b": (41.0, -99.0), "c": (42.0, -98.0)}
    return ClimateNetwork.from_matrix(matrix, theta=0.5, coordinates=coords)


class TestEdgeCsv:
    def test_rows_and_header(self, network, tmp_path):
        path = tmp_path / "edges.csv"
        n_rows = write_edge_csv(network, path)
        assert n_rows == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][:3] == ["source", "target", "weight"]
        assert len(rows) == 3
        edge_rows = {(r[0], r[1]): float(r[2]) for r in rows[1:]}
        assert edge_rows[("a", "b")] == pytest.approx(0.9)
        assert edge_rows[("b", "c")] == pytest.approx(0.8)

    def test_coordinates_included(self, network, tmp_path):
        path = tmp_path / "edges.csv"
        write_edge_csv(network, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][3:] == ["source_lat", "source_lon",
                               "target_lat", "target_lon"]
        assert float(rows[1][3]) == 40.0

    def test_no_coordinates_variant(self, tmp_path):
        matrix = CorrelationMatrix(
            names=["x", "y"], values=np.array([[1.0, 0.7], [0.7, 1.0]])
        )
        net = ClimateNetwork.from_matrix(matrix, 0.5)
        path = tmp_path / "plain.csv"
        write_edge_csv(net, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["source", "target", "weight"]


class TestGraphml:
    def test_roundtrip_via_networkx(self, network, tmp_path):
        path = tmp_path / "net.graphml"
        write_graphml(network, path)
        loaded = nx.read_graphml(str(path))
        assert set(loaded.nodes) == {"a", "b", "c"}
        assert loaded.number_of_edges() == 2
        assert loaded.edges[("a", "b")]["weight"] == pytest.approx(0.9)
        assert loaded.nodes["a"]["lat"] == 40.0


class TestAdjacencyNpz:
    def test_roundtrip(self, network, tmp_path):
        path = tmp_path / "net.npz"
        write_adjacency_npz(network, path)
        loaded = read_adjacency_npz(path)
        assert loaded.names == network.names
        assert loaded.threshold == network.threshold
        np.testing.assert_array_equal(loaded.adjacency, network.adjacency)
        np.testing.assert_allclose(loaded.weights, network.weights)
        assert loaded.edge_set() == network.edge_set()

    def test_missing_key_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, names=np.array(["a"]))
        with pytest.raises(DataError):
            read_adjacency_npz(path)


class TestMatrixCsv:
    def test_layout_and_values(self, tmp_path):
        matrix = CorrelationMatrix(
            names=["p", "q"], values=np.array([[1.0, -0.25], [-0.25, 1.0]])
        )
        path = tmp_path / "matrix.csv"
        write_matrix_csv(matrix, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["", "p", "q"]
        assert rows[1][0] == "p"
        assert float(rows[1][2]) == pytest.approx(-0.25)
        assert float(rows[2][2]) == 1.0
