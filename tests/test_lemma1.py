"""Tests for Lemma 1 — exact correlation from basic-window statistics.

The central invariant of the paper: combining per-window sketches yields the
*exact* Pearson correlation, for equal and variable window sizes alike.
Verified against numpy.corrcoef, including with hypothesis-generated data
and window partitions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lemma1 import (
    combine_matrix,
    combine_pair,
    combine_pair_arrays,
    pooled_mean,
    pooled_variance,
)
from repro.core.stats import pair_window_stats, window_stats
from repro.exceptions import SketchError


def _split_stats(x, y, boundaries):
    xs, ys, ps = [], [], []
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        xs.append(window_stats(x[lo:hi]))
        ys.append(window_stats(y[lo:hi]))
        ps.append(pair_window_stats(x[lo:hi], y[lo:hi]))
    return xs, ys, ps


def _random_partition(rng, length, max_windows=8):
    n_cuts = int(rng.integers(0, min(max_windows, length) - 1))
    cuts = sorted(rng.choice(np.arange(1, length), size=n_cuts, replace=False))
    return np.array([0, *cuts, length], dtype=np.int64)


class TestPooledHelpers:
    def test_pooled_mean_weighted(self):
        means = np.array([1.0, 3.0])
        sizes = np.array([1.0, 3.0])
        assert pooled_mean(means, sizes) == pytest.approx(2.5)

    def test_pooled_variance_matches_numpy(self, rng):
        x = rng.normal(size=90)
        bounds = np.array([0, 20, 50, 90])
        means = np.array([x[lo:hi].mean() for lo, hi in zip(bounds[:-1], bounds[1:])])
        stds = np.array([x[lo:hi].std() for lo, hi in zip(bounds[:-1], bounds[1:])])
        sizes = np.diff(bounds)
        assert pooled_variance(means, stds, sizes) == pytest.approx(x.var())


class TestCombinePair:
    def test_equal_windows_match_numpy(self, rng):
        x = rng.normal(size=100)
        y = 0.4 * x + rng.normal(size=100)
        bounds = np.arange(0, 101, 20)
        xs, ys, ps = _split_stats(x, y, bounds)
        expected = np.corrcoef(x, y)[0, 1]
        assert combine_pair(xs, ys, ps) == pytest.approx(expected)

    def test_variable_windows_match_numpy(self, rng):
        """The key Lemma 1 generalization: arbitrary window sizes."""
        x = rng.normal(size=100)
        y = rng.normal(size=100)
        bounds = np.array([0, 7, 30, 31, 77, 100])
        xs, ys, ps = _split_stats(x, y, bounds)
        expected = np.corrcoef(x, y)[0, 1]
        assert combine_pair(xs, ys, ps) == pytest.approx(expected)

    def test_single_window_degenerates_to_direct(self, rng):
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        xs, ys, ps = _split_stats(x, y, np.array([0, 40]))
        assert combine_pair(xs, ys, ps) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_constant_series_yields_zero(self, rng):
        x = np.full(60, 2.0)
        y = rng.normal(size=60)
        xs, ys, ps = _split_stats(x, y, np.array([0, 30, 60]))
        assert combine_pair(xs, ys, ps) == 0.0

    def test_result_clipped_to_valid_range(self, rng):
        x = rng.normal(size=50)
        xs, ys, ps = _split_stats(x, x, np.array([0, 25, 50]))
        assert combine_pair(xs, ys, ps) == pytest.approx(1.0)
        assert combine_pair(xs, ys, ps) <= 1.0

    def test_rejects_mismatched_lengths(self, rng):
        x = rng.normal(size=40)
        xs, ys, ps = _split_stats(x, x, np.array([0, 20, 40]))
        with pytest.raises(SketchError):
            combine_pair(xs[:1], ys, ps)

    def test_rejects_empty(self):
        with pytest.raises(SketchError):
            combine_pair([], [], [])

    def test_rejects_size_mismatch_across_series(self, rng):
        x = rng.normal(size=40)
        xs, _, ps = _split_stats(x, x, np.array([0, 20, 40]))
        ys_bad, _, _ = _split_stats(
            rng.normal(size=30), rng.normal(size=30), np.array([0, 15, 30])
        )
        with pytest.raises(SketchError):
            combine_pair(xs, ys_bad, ps)

    @given(seed=st.integers(0, 2**31 - 1), length=st.integers(8, 200))
    @settings(max_examples=100, deadline=None)
    def test_property_random_partitions_exact(self, seed, length):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=length)
        y = rng.normal(scale=2.0, size=length) + 0.3 * x
        bounds = _random_partition(rng, length)
        xs, ys, ps = _split_stats(x, y, bounds)
        expected = np.corrcoef(x, y)[0, 1]
        assert combine_pair(xs, ys, ps) == pytest.approx(expected, abs=1e-9)


class TestCombinePairArrays:
    def test_agrees_with_dataclass_form(self, rng):
        x = rng.normal(size=80)
        y = rng.normal(size=80)
        bounds = np.array([0, 25, 50, 80])
        xs, ys, ps = _split_stats(x, y, bounds)
        direct = combine_pair(xs, ys, ps)
        arrays_form = combine_pair_arrays(
            np.array([s.mean for s in xs]),
            np.array([s.std for s in xs]),
            np.array([s.mean for s in ys]),
            np.array([s.std for s in ys]),
            np.array([p.cov for p in ps]),
            np.diff(bounds),
        )
        assert arrays_form == pytest.approx(direct)


class TestCombineMatrix:
    def _sketch_arrays(self, data, bounds):
        from repro.core.stats import (
            pairwise_window_covariances,
            series_window_stats,
        )

        means, stds, sizes = series_window_stats(data, bounds)
        covs = pairwise_window_covariances(data, bounds)
        return means, stds, covs, sizes

    def test_matches_numpy_corrcoef(self, rng):
        data = rng.normal(size=(8, 120))
        bounds = np.arange(0, 121, 30)
        corr = combine_matrix(*self._sketch_arrays(data, bounds))
        np.testing.assert_allclose(corr, np.corrcoef(data), atol=1e-10)

    def test_variable_window_sizes(self, rng):
        data = rng.normal(size=(5, 100))
        bounds = np.array([0, 13, 50, 61, 100])
        corr = combine_matrix(*self._sketch_arrays(data, bounds))
        np.testing.assert_allclose(corr, np.corrcoef(data), atol=1e-10)

    def test_unit_diagonal_and_symmetry(self, rng):
        data = rng.normal(size=(6, 90))
        corr = combine_matrix(*self._sketch_arrays(data, np.array([0, 45, 90])))
        np.testing.assert_allclose(np.diag(corr), 1.0)
        np.testing.assert_allclose(corr, corr.T)

    def test_constant_series_row_is_zero(self, rng):
        data = rng.normal(size=(4, 60))
        data[2] = -1.0
        corr = combine_matrix(*self._sketch_arrays(data, np.array([0, 30, 60])))
        off_diag = np.delete(corr[2], 2)
        np.testing.assert_array_equal(off_diag, 0.0)
        assert corr[2, 2] == 1.0

    def test_agrees_with_pairwise_combine(self, rng):
        data = rng.normal(size=(4, 80))
        bounds = np.array([0, 20, 40, 80])
        corr = combine_matrix(*self._sketch_arrays(data, bounds))
        xs, ys, ps = [], [], []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            xs.append(window_stats(data[0, lo:hi]))
            ys.append(window_stats(data[3, lo:hi]))
            ps.append(pair_window_stats(data[0, lo:hi], data[3, lo:hi]))
        assert corr[0, 3] == pytest.approx(combine_pair(xs, ys, ps))

    def test_shape_validation(self, rng):
        data = rng.normal(size=(3, 40))
        means, stds, covs, sizes = self._sketch_arrays(data, np.array([0, 20, 40]))
        with pytest.raises(SketchError):
            combine_matrix(means, stds[:, :1], covs, sizes)
        with pytest.raises(SketchError):
            combine_matrix(means, stds, covs[:1], sizes)
        with pytest.raises(SketchError):
            combine_matrix(means, stds, covs, sizes[:1])

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_series=st.integers(2, 10),
        length=st.integers(6, 120),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matrix_exactness(self, seed, n_series, length):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n_series, length))
        bounds = _random_partition(rng, length)
        corr = combine_matrix(*self._sketch_arrays(data, bounds))
        np.testing.assert_allclose(corr, np.corrcoef(data), atol=1e-8)
