"""Paper-scale smoke tests: the exact dataset shapes the paper evaluates.

These run the real shapes (157 stations x 8,760 hourly points for the
in-memory experiments; a four-digit-node gridded subset for the scalability
path) end to end, asserting exactness and interactive latencies rather than
micro-benchmarks — proof that the library handles the paper's workloads, not
just toy sizes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.exact import TsubasaHistorical
from repro.core.realtime import TsubasaRealtime
from repro.data.synthetic import generate_gridded_dataset, generate_station_dataset


@pytest.fixture(scope="module")
def ncea_full():
    """The paper's NCEA shape: 157 stations x 8,760 hourly points."""
    return generate_station_dataset(n_stations=157, n_points=8760, seed=2022)


class TestNceaScale:
    def test_sketch_and_full_query(self, ncea_full):
        start = time.perf_counter()
        engine = TsubasaHistorical(ncea_full.values, window_size=200,
                                   names=ncea_full.names)
        sketch_seconds = time.perf_counter() - start
        assert engine.sketch.n_windows == 44  # 43 full + trailing 160

        start = time.perf_counter()
        matrix = engine.correlation_matrix((8759, 8760))
        query_seconds = time.perf_counter() - start
        np.testing.assert_allclose(
            matrix.values, np.corrcoef(ncea_full.values), atol=1e-9
        )
        # Interactivity: sketch well under a minute, query well under a second.
        assert sketch_seconds < 60.0
        assert query_seconds < 1.0

    def test_paper_query_window(self, ncea_full):
        """The evaluation's standard query window: 3,000 points."""
        engine = TsubasaHistorical(ncea_full.values, window_size=200)
        matrix = engine.correlation_matrix((8759, 3000))
        expected = np.corrcoef(ncea_full.values[:, 5760:8760])
        np.testing.assert_allclose(matrix.values, expected, atol=1e-9)

    def test_arbitrary_window_at_scale(self, ncea_full):
        engine = TsubasaHistorical(ncea_full.values, window_size=200)
        matrix = engine.correlation_matrix((7123, 2917))
        expected = np.corrcoef(ncea_full.values[:, 7123 - 2917 + 1 : 7124])
        np.testing.assert_allclose(matrix.values, expected, atol=1e-9)

    def test_realtime_updates_at_scale(self, ncea_full):
        engine = TsubasaRealtime(ncea_full.values[:, :3000], window_size=200,
                                 names=ncea_full.names)
        start = time.perf_counter()
        for step in range(5):
            lo = 3000 + step * 200
            engine.ingest(ncea_full.values[:, lo : lo + 200])
        per_update = (time.perf_counter() - start) / 5
        ref = np.corrcoef(ncea_full.values[:, 1000:4000])
        np.testing.assert_allclose(
            engine.correlation_matrix().values, ref, atol=1e-9
        )
        assert per_update < 0.5  # interactive updates at paper scale


class TestGriddedScale:
    def test_thousand_node_grid(self):
        """A 1,000-node subset of the Berkeley-like grid, B=120, query 960."""
        dataset = generate_gridded_dataset(
            lat_min=20.0, lat_max=55.0, lon_min=-130.0, lon_max=-60.0,
            resolution_deg=1.4, n_points=1920, seed=9,
        ).subset(1000)
        start = time.perf_counter()
        engine = TsubasaHistorical(dataset.values, window_size=120,
                                   keep_raw=False)
        sketch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        matrix = engine.correlation_matrix((959, 960))
        query_seconds = time.perf_counter() - start
        expected = np.corrcoef(dataset.values[:, :960])
        np.testing.assert_allclose(matrix.values, expected, atol=1e-8)
        assert sketch_seconds < 120.0
        assert query_seconds < 10.0
