"""Tests for repro.parallel (partitioning and the §3.4 executor)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sketch import build_sketch
from repro.exceptions import DataError
from repro.parallel.executor import (
    parallel_query,
    parallel_sketch,
    query_partition,
    sketch_partition,
)
from repro.parallel.partitioning import (
    partition_pair_counts,
    partition_rows,
    row_pair_counts,
)
from repro.storage.sqlite_store import SqliteSketchStore


class TestPartitioning:
    def test_row_pair_counts(self):
        np.testing.assert_array_equal(row_pair_counts(4), [3, 2, 1, 0])

    def test_partitions_cover_all_rows(self):
        partitions = partition_rows(17, 4)
        rows = np.concatenate(partitions)
        assert sorted(rows.tolist()) == list(range(17))

    def test_total_pairs_preserved(self):
        partitions = partition_rows(23, 5)
        counts = partition_pair_counts(partitions, 23)
        assert sum(counts) == 23 * 22 // 2

    def test_load_balance(self):
        """Max/min partition pair counts within one row's weight."""
        n = 100
        partitions = partition_rows(n, 8)
        counts = partition_pair_counts(partitions, n)
        assert max(counts) - min(counts) <= n

    def test_more_partitions_than_rows(self):
        partitions = partition_rows(3, 10)
        assert len(partitions) <= 3
        rows = np.concatenate(partitions)
        assert sorted(rows.tolist()) == [0, 1, 2]

    def test_single_partition(self):
        partitions = partition_rows(6, 1)
        assert len(partitions) == 1
        np.testing.assert_array_equal(partitions[0], np.arange(6))

    def test_rejects_bad_args(self):
        with pytest.raises(DataError):
            partition_rows(5, 0)
        with pytest.raises(DataError):
            row_pair_counts(0)


class TestSketchPartition:
    def test_partition_rows_match_full_sketch(self, small_matrix):
        full = build_sketch(small_matrix, window_size=50)
        bounds = np.arange(0, 601, 50)
        rows = np.array([0, 5, 19])
        got_rows, means, stds, blocks = sketch_partition(
            rows, small_matrix, bounds
        )
        np.testing.assert_array_equal(got_rows, rows)
        np.testing.assert_allclose(means, full.means[rows])
        np.testing.assert_allclose(stds, full.stds[rows])
        for j in range(full.n_windows):
            np.testing.assert_allclose(blocks[j], full.covs[j][rows], atol=1e-12)


class TestParallelSketch:
    def test_serial_equals_build_sketch(self, small_matrix):
        result = parallel_sketch(small_matrix, 50, n_workers=1)
        full = build_sketch(small_matrix, window_size=50)
        np.testing.assert_allclose(result.sketch.means, full.means)
        np.testing.assert_allclose(result.sketch.covs, full.covs, atol=1e-12)
        assert result.n_partitions == 1
        assert result.write_seconds == 0.0

    def test_parallel_equals_serial(self, small_matrix):
        serial = parallel_sketch(small_matrix, 50, n_workers=1)
        parallel = parallel_sketch(small_matrix, 50, n_workers=3)
        np.testing.assert_allclose(
            parallel.sketch.covs, serial.sketch.covs, atol=1e-12
        )
        assert parallel.n_partitions == 3

    def test_writes_to_store(self, small_matrix, tmp_path):
        path = tmp_path / "par.db"
        result = parallel_sketch(small_matrix, 50, n_workers=2, store_path=path)
        assert result.write_seconds > 0.0
        with SqliteSketchStore(path) as store:
            assert store.window_count() == 12
            assert len(store.read_metadata().names) == 20

    def test_rejects_conflicting_store_args(self, small_matrix, tmp_path):
        from repro.storage.memory import MemorySketchStore

        with pytest.raises(DataError):
            parallel_sketch(
                small_matrix,
                50,
                n_workers=1,
                store=MemorySketchStore(),
                store_path=tmp_path / "x.db",
            )

    def test_rejects_bad_workers(self, small_matrix):
        with pytest.raises(DataError):
            parallel_sketch(small_matrix, 50, n_workers=0)


class TestParallelQuery:
    def test_in_memory_matches_numpy(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        result = parallel_query(np.arange(12), n_workers=3, sketch=sketch)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )

    def test_window_subset(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        result = parallel_query(np.arange(6, 12), n_workers=2, sketch=sketch)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix[:, 300:]), atol=1e-10
        )

    def test_disk_based_matches(self, small_matrix, tmp_path):
        path = tmp_path / "disk.db"
        parallel_sketch(small_matrix, 50, n_workers=1, store_path=path)
        result = parallel_query(np.arange(12), n_workers=2, store_path=path)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )
        assert result.read_seconds > 0.0

    def test_query_partition_serial(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        rows = np.array([1, 4])
        got_rows, block, read_time = query_partition(
            rows, np.arange(12), sketch, None
        )
        ref = np.corrcoef(small_matrix)
        np.testing.assert_allclose(block, ref[rows], atol=1e-10)
        assert read_time == 0.0

    def test_rejects_no_source(self):
        with pytest.raises(DataError):
            parallel_query(np.arange(3), n_workers=1)

    def test_rejects_sketch_plus_store_path(self, small_matrix, tmp_path):
        """Ambiguous sources must be rejected: the answering backend must
        not silently depend on the worker count."""
        path = tmp_path / "both.db"
        parallel_sketch(small_matrix, 50, n_workers=1, store_path=path)
        sketch = build_sketch(small_matrix, window_size=50)
        for n_workers in (1, 2):
            with pytest.raises(DataError, match="not both"):
                parallel_query(
                    np.arange(12), n_workers=n_workers,
                    sketch=sketch, store_path=path,
                )

    def test_timing_fields_populated(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        result = parallel_query(np.arange(12), n_workers=2, sketch=sketch)
        assert result.total_seconds >= result.calc_seconds >= 0.0

    def test_time_split_invariants(self, small_matrix, tmp_path):
        """read = slowest worker's read; calc >= 0; total = read + calc."""
        path = tmp_path / "split.db"
        parallel_sketch(small_matrix, 50, n_workers=1, store_path=path)
        result = parallel_query(np.arange(12), n_workers=3, store_path=path)
        assert len(result.worker_read_seconds) == result.n_partitions
        assert all(t > 0.0 for t in result.worker_read_seconds)
        # The reported read phase is the per-worker maximum, not the mean:
        # the mean of concurrent reads can exceed wall time under skew and
        # push the derived calc share negative-then-clamped.
        assert result.read_seconds == max(result.worker_read_seconds)
        assert result.calc_seconds >= 0.0
        assert result.total_seconds == pytest.approx(
            result.read_seconds + result.calc_seconds
        )

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_in_memory_mode_reports_zero_reads(self, small_matrix, n_workers):
        """Same backend, same split semantics at any worker count."""
        sketch = build_sketch(small_matrix, window_size=50)
        result = parallel_query(np.arange(12), n_workers=n_workers, sketch=sketch)
        assert result.worker_read_seconds == [0.0] * result.n_partitions
        assert result.read_seconds == 0.0
        assert result.calc_seconds == result.total_seconds


class TestSharedMemoryFanOut:
    """The sketch= path ships covariances via multiprocessing.shared_memory."""

    def test_sketch_mode_fans_out_without_pickling_covs(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        result = parallel_query(np.arange(12), n_workers=3, sketch=sketch)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix), atol=1e-10
        )
        assert result.n_partitions == 3

    def test_no_shared_memory_leak(self, small_matrix, monkeypatch):
        """Every segment this query creates is unlinked by the time it
        returns (tracked by name, so concurrent processes can't interfere)."""
        from multiprocessing import shared_memory

        from repro.parallel import executor

        created: list[str] = []
        real = shared_memory.SharedMemory

        def recording(*args, **kwargs):
            block = real(*args, **kwargs)
            if kwargs.get("create", False):
                created.append(block.name)
            return block

        monkeypatch.setattr(executor.shared_memory, "SharedMemory", recording)
        sketch = build_sketch(small_matrix, window_size=50)
        for _ in range(3):
            parallel_query(np.arange(12), n_workers=2, sketch=sketch)
        assert len(created) == 3
        for name in created:
            with pytest.raises(FileNotFoundError):
                real(name=name, create=False)

    def test_window_subset_through_shared_memory(self, small_matrix):
        sketch = build_sketch(small_matrix, window_size=50)
        result = parallel_query(np.arange(3, 9), n_workers=2, sketch=sketch)
        np.testing.assert_allclose(
            result.matrix, np.corrcoef(small_matrix[:, 150:450]), atol=1e-10
        )
