"""Tests for SO_REUSEPORT multi-process serving.

The contract: N acceptor processes answer identically over one shared
port, a crashed worker is replaced without dropping the address, and
SIGTERM drains every worker cleanly — programmatically via
:class:`~repro.api.supervisor.AcceptorSupervisor` and end to end through
``tsubasa serve --http --workers N``.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api.remote import TsubasaRemoteClient
from repro.api.spec import QuerySpec, WindowSpec
from repro.api.supervisor import AcceptorSupervisor, WorkerConfig
from repro.core.sketch import build_sketch
from repro.exceptions import DataError, ServiceError
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT is not available on this platform",
)

SPEC = QuerySpec(op="matrix", window=WindowSpec(end=599, length=200))


@pytest.fixture(scope="module")
def mmap_store_dir(small_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("sup") / "sketch.mm"
    sketch = build_sketch(small_dataset.values, 50, names=small_dataset.names)
    with MmapStore(path) as store:
        save_sketch(store, sketch)
    return path


def collect_pids(address, attempts=60):
    """Fresh connections until both workers have answered (4-tuple hash)."""
    pids = set()
    reference = None
    for _ in range(attempts):
        with TsubasaRemoteClient(address) as client:
            pids.add(client.health()["pid"])
            values = client.execute(SPEC).value.values
        if reference is None:
            reference = values
        else:
            np.testing.assert_array_equal(values, reference)
        if len(pids) >= 2:
            break
    return pids, reference


class TestAcceptorSupervisor:
    def test_lifecycle_spread_restart_drain(self, mmap_store_dir):
        config = WorkerConfig(store=str(mmap_store_dir), backend="mmap")
        supervisor = AcceptorSupervisor(config, workers=2, port=0)
        with supervisor:
            assert supervisor.n_alive() == 2
            started = set(supervisor.pids())
            assert len(started) == 2

            # Every worker answers identically on the shared port; the
            # kernel's 4-tuple hash spreads fresh connections over both.
            pids, reference = collect_pids(supervisor.address)
            assert pids == started

            # A killed worker is replaced; the address keeps serving.
            victim = sorted(supervisor.pids())[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                alive = supervisor.pids()
                if len(alive) == 2 and victim not in alive:
                    break
                time.sleep(0.2)
            assert supervisor.n_alive() == 2
            assert victim not in supervisor.pids()
            assert supervisor.restarts == 1
            with TsubasaRemoteClient(supervisor.address) as client:
                np.testing.assert_array_equal(
                    client.execute(SPEC).value.values, reference
                )
        # Context exit is stop(): SIGTERM + drain.
        assert supervisor.n_alive() == 0

    def test_validation(self, mmap_store_dir):
        config = WorkerConfig(store=str(mmap_store_dir))
        with pytest.raises(DataError, match="workers"):
            AcceptorSupervisor(config, workers=0)
        with pytest.raises(DataError, match="WorkerConfig"):
            AcceptorSupervisor({"store": "x"})
        supervisor = AcceptorSupervisor(config, workers=1)
        with pytest.raises(ServiceError, match="not started"):
            supervisor.port


class TestServeWorkersCli:
    def test_cli_multi_worker_serve_and_drain(self, mmap_store_dir):
        env_cmd = [sys.executable, "-m", "repro.cli"]
        process = subprocess.Popen(
            [*env_cmd, "serve", "--store", str(mmap_store_dir),
             "--backend", "mmap", "--http", "127.0.0.1:0", "--workers", "2"],
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "serving on http://" in banner
            assert "2 SO_REUSEPORT workers" in banner
            address = banner.split("http://", 1)[1].split()[0]
            pids, _reference = collect_pids(address)
            assert len(pids) == 2
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=60)
            assert process.returncode == 0
            assert "stopped 2 worker(s)" in stderr
            # Each worker reports its own drain on the way out.
            assert stderr.count("drained after") == 2
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_workers_reject_stream_data(self, mmap_store_dir, tmp_path):
        from repro.cli import main

        code = main([
            "serve", "--store", str(mmap_store_dir), "--backend", "mmap",
            "--http", "127.0.0.1:0", "--workers", "2",
            "--stream-data", str(tmp_path / "missing.npz"),
        ])
        assert code != 0
