"""Tests for repro.core.sweep (prefix-sum window sweeps)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch import build_sketch
from repro.core.sweep import SweepPlan, sliding_networks
from repro.exceptions import SketchError


class TestSweepPlan:
    def test_full_range_matches_numpy(self, small_matrix):
        plan = SweepPlan(build_sketch(small_matrix, 50))
        matrix = plan.correlation_matrix(0, 12)
        np.testing.assert_allclose(
            matrix.values, np.corrcoef(small_matrix), atol=1e-10
        )

    def test_every_contiguous_range_exact(self, small_matrix):
        """Exhaustive: all O(ns^2) ranges equal direct recomputation."""
        sketch = build_sketch(small_matrix, 50)
        plan = SweepPlan(sketch)
        for first in range(12):
            for count in range(1, 12 - first + 1):
                got = plan.correlation_matrix(first, count).values
                raw = small_matrix[:, first * 50 : (first + count) * 50]
                np.testing.assert_allclose(got, np.corrcoef(raw), atol=1e-8)

    def test_matches_lemma1_query(self, small_matrix):
        from repro.core.lemma1 import combine_matrix

        sketch = build_sketch(small_matrix, 50)
        plan = SweepPlan(sketch)
        idx = np.arange(3, 9)
        direct = combine_matrix(
            sketch.means[:, idx], sketch.stds[:, idx], sketch.covs[idx],
            sketch.sizes[idx],
        )
        np.testing.assert_allclose(
            plan.correlation_matrix(3, 6).values, direct, atol=1e-9
        )

    def test_rejects_bad_ranges(self, small_sketch):
        plan = SweepPlan(small_sketch)
        with pytest.raises(SketchError):
            plan.correlation_matrix(0, 0)
        with pytest.raises(SketchError):
            plan.correlation_matrix(10, 5)
        with pytest.raises(SketchError):
            plan.correlation_matrix(-1, 3)

    def test_network_threshold(self, small_sketch):
        plan = SweepPlan(small_sketch)
        network = plan.network(0, 6, theta=0.5)
        matrix = plan.correlation_matrix(0, 6)
        assert network.n_edges == matrix.n_edges(0.5)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_range_exactness(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(4, 120))
        sketch = build_sketch(data, 12)
        plan = SweepPlan(sketch)
        first = int(rng.integers(0, 9))
        count = int(rng.integers(1, 10 - first + 1))
        got = plan.correlation_matrix(first, count).values
        raw = data[:, first * 12 : (first + count) * 12]
        np.testing.assert_allclose(got, np.corrcoef(raw), atol=1e-8)


class TestSlidingNetworks:
    def test_positions_and_count(self, small_sketch):
        results = sliding_networks(small_sketch, n_windows=4, theta=0.5,
                                   stride_windows=2)
        assert [pos for pos, _ in results] == [0, 2, 4, 6, 8]

    def test_matches_individual_queries(self, small_matrix):
        from repro.core.exact import TsubasaHistorical

        sketch = build_sketch(small_matrix, 50)
        engine = TsubasaHistorical(small_matrix, 50)
        results = sliding_networks(sketch, n_windows=6, theta=0.4)
        for first, network in results:
            end = (first + 6) * 50 - 1
            expected = engine.network((end, 300), 0.4)
            assert network.edge_set() == expected.edge_set()

    def test_coordinates_attached(self, small_dataset):
        sketch = build_sketch(small_dataset.values, 50,
                              names=small_dataset.names)
        results = sliding_networks(
            sketch, 4, 0.5, coordinates=small_dataset.coordinates
        )
        graph = results[0][1].to_networkx()
        assert "lat" in graph.nodes[small_dataset.names[0]]

    def test_rejects_bad_args(self, small_sketch):
        with pytest.raises(SketchError):
            sliding_networks(small_sketch, 4, 0.5, stride_windows=0)
        with pytest.raises(SketchError):
            sliding_networks(small_sketch, 99, 0.5)

    def test_feeds_dynamics_analysis(self, small_sketch):
        from repro.analysis import summarize_dynamics

        results = sliding_networks(small_sketch, 4, 0.4)
        dynamics = summarize_dynamics([net for _, net in results])
        assert dynamics.n_snapshots == 9
