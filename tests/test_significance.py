"""Tests for repro.core.significance (correlation significance testing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.significance import (
    correlation_pvalues,
    critical_correlation,
    significant_adjacency,
)
from repro.exceptions import DataError


class TestCriticalCorrelation:
    def test_known_value(self):
        """r_crit for m=100, alpha=0.05 is about 0.197 (standard tables)."""
        assert critical_correlation(100, 0.05) == pytest.approx(0.197, abs=0.002)

    def test_decreases_with_samples(self):
        values = [critical_correlation(m) for m in (10, 50, 200, 1000)]
        assert values == sorted(values, reverse=True)

    def test_stricter_alpha_raises_threshold(self):
        assert critical_correlation(50, 0.01) > critical_correlation(50, 0.05)

    def test_bonferroni_raises_threshold(self):
        plain = critical_correlation(100, 0.05)
        corrected = critical_correlation(100, 0.05, n_comparisons=1000)
        assert corrected > plain

    def test_in_unit_interval(self):
        for m in (4, 30, 10000):
            assert 0.0 < critical_correlation(m) < 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(DataError):
            critical_correlation(2)
        with pytest.raises(DataError):
            critical_correlation(10, alpha=0.0)
        with pytest.raises(DataError):
            critical_correlation(10, n_comparisons=0)


class TestCorrelationPvalues:
    def test_matches_scipy_pearsonr(self, rng):
        from scipy import stats

        x = rng.normal(size=80)
        y = 0.3 * x + rng.normal(size=80)
        corr = np.corrcoef(np.vstack([x, y]))
        pvals = correlation_pvalues(corr, 80)
        expected = stats.pearsonr(x, y).pvalue
        assert pvals[0, 1] == pytest.approx(expected, rel=1e-6)

    def test_diagonal_zero(self, rng):
        corr = np.corrcoef(rng.normal(size=(4, 50)))
        pvals = correlation_pvalues(corr, 50)
        np.testing.assert_array_equal(np.diag(pvals), 0.0)

    def test_perfect_correlation_p_zero(self):
        corr = np.array([[1.0, 1.0], [1.0, 1.0]])
        pvals = correlation_pvalues(corr, 30)
        assert pvals[0, 1] == 0.0

    def test_zero_correlation_p_one(self):
        corr = np.array([[1.0, 0.0], [0.0, 1.0]])
        pvals = correlation_pvalues(corr, 30)
        assert pvals[0, 1] == pytest.approx(1.0)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(DataError):
            correlation_pvalues(np.zeros((2, 3)), 10)
        with pytest.raises(DataError):
            correlation_pvalues(np.eye(2), 2)

    @given(r=st.floats(-0.99, 0.99), m=st.integers(5, 500))
    @settings(max_examples=60, deadline=None)
    def test_property_pvalues_in_unit_interval(self, r, m):
        corr = np.array([[1.0, r], [r, 1.0]])
        pvals = correlation_pvalues(corr, m)
        assert 0.0 <= pvals[0, 1] <= 1.0
        # Stronger correlation on the same sample => smaller p-value.
        weaker = correlation_pvalues(
            np.array([[1.0, r / 2], [r / 2, 1.0]]), m
        )
        assert pvals[0, 1] <= weaker[0, 1] + 1e-12


class TestSignificantAdjacency:
    def test_equivalent_to_thresholding(self, rng):
        corr = np.corrcoef(rng.normal(size=(8, 60)))
        adjacency = significant_adjacency(corr, 60, alpha=0.05)
        theta = critical_correlation(60, 0.05, n_comparisons=8 * 7 // 2)
        expected = corr > theta
        np.fill_diagonal(expected, False)
        np.testing.assert_array_equal(adjacency, expected)

    def test_consistency_with_pvalues_uncorrected(self, rng):
        corr = np.corrcoef(rng.normal(size=(6, 40)))
        adjacency = significant_adjacency(corr, 40, alpha=0.05,
                                          correction="none")
        pvals = correlation_pvalues(corr, 40)
        rows, cols = np.triu_indices(6, k=1)
        for i, j in zip(rows, cols):
            if adjacency[i, j]:
                assert pvals[i, j] < 0.05
                assert corr[i, j] > 0

    def test_strongly_correlated_pair_detected(self, rng):
        x = rng.normal(size=200)
        data = np.vstack([x, x + 0.1 * rng.normal(size=200),
                          rng.normal(size=200)])
        corr = np.corrcoef(data)
        adjacency = significant_adjacency(corr, 200, alpha=0.01)
        assert adjacency[0, 1]
        assert not adjacency[0, 2]

    def test_no_self_loops(self, rng):
        corr = np.corrcoef(rng.normal(size=(5, 30)))
        adjacency = significant_adjacency(corr, 30)
        assert not adjacency.diagonal().any()

    def test_rejects_unknown_correction(self, rng):
        with pytest.raises(DataError):
            significant_adjacency(np.eye(3), 30, correction="fdr")
