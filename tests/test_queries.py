"""Tests for repro.core.queries (matrix query operators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrix import CorrelationMatrix
from repro.core.queries import (
    _top_order,
    degree_at_threshold,
    most_anticorrelated_pairs,
    neighbors,
    pairs_in_range,
    top_k_pairs,
)
from repro.exceptions import DataError


@pytest.fixture()
def matrix():
    values = np.array(
        [
            [1.0, 0.9, 0.2, -0.8],
            [0.9, 1.0, 0.5, -0.1],
            [0.2, 0.5, 1.0, 0.3],
            [-0.8, -0.1, 0.3, 1.0],
        ]
    )
    return CorrelationMatrix(names=["a", "b", "c", "d"], values=values)


class TestTopKPairs:
    def test_order_and_content(self, matrix):
        top = top_k_pairs(matrix, 2)
        assert top[0] == ("a", "b", 0.9)
        assert top[1] == ("b", "c", 0.5)

    def test_k_larger_than_pairs(self, matrix):
        top = top_k_pairs(matrix, 100)
        assert len(top) == 6

    def test_rejects_nonpositive_k(self, matrix):
        with pytest.raises(DataError):
            top_k_pairs(matrix, 0)

    def test_matches_numpy_on_random(self, rng):
        values = np.corrcoef(rng.normal(size=(10, 50)))
        m = CorrelationMatrix(
            names=[f"n{i}" for i in range(10)], values=values
        )
        top = top_k_pairs(m, 3)
        rows, cols = np.triu_indices(10, k=1)
        best = np.sort(values[rows, cols])[::-1][:3]
        np.testing.assert_allclose([t[2] for t in top], best)


def _tied_matrix():
    """A matrix whose off-diagonal values repeat heavily (tie torture)."""
    n = 8
    values = np.eye(n)
    rows, cols = np.triu_indices(n, k=1)
    # Only four distinct correlations across 28 pairs.
    pool = np.array([0.75, -0.25, 0.75, 0.5])
    pair_vals = pool[np.arange(rows.size) % pool.size]
    values[rows, cols] = pair_vals
    values[cols, rows] = pair_vals
    return CorrelationMatrix(names=[f"n{i}" for i in range(n)], values=values)


class TestTopOrderPartition:
    """The argpartition fast path must equal the stable full sort exactly."""

    def test_matches_stable_argsort_with_ties(self, rng):
        for _ in range(50):
            p = int(rng.integers(1, 60))
            values = rng.choice(np.round(rng.normal(size=4), 1), size=p)
            for k in range(1, p + 1):
                expected = np.argsort(-values, kind="stable")[:k]
                np.testing.assert_array_equal(_top_order(values, k), expected)

    def test_tie_order_is_row_order(self):
        matrix = _tied_matrix()
        rows, cols = np.triu_indices(8, k=1)
        values = matrix.values[rows, cols]
        for k in (1, 3, 5, 10, 28):
            got = top_k_pairs(matrix, k)
            order = np.argsort(-values, kind="stable")[:k]
            expected = [
                (matrix.names[rows[i]], matrix.names[cols[i]], float(values[i]))
                for i in order
            ]
            assert got == expected

    def test_anticorrelated_tie_order(self):
        matrix = _tied_matrix()
        rows, cols = np.triu_indices(8, k=1)
        values = matrix.values[rows, cols]
        for k in (1, 4, 9, 28):
            got = most_anticorrelated_pairs(matrix, k)
            order = np.argsort(values, kind="stable")[:k]
            expected = [
                (matrix.names[rows[i]], matrix.names[cols[i]], float(values[i]))
                for i in order
            ]
            assert got == expected

    def test_boundary_all_equal(self):
        values = np.full(17, 0.5)
        for k in (1, 8, 17):
            np.testing.assert_array_equal(_top_order(values, k), np.arange(k))

    def test_nan_values_keep_stable_argsort_behavior(self):
        """A constant series yields NaN correlations via np.corrcoef; k above
        the finite count must still return k entries, NaNs ranked last."""
        values = np.array([np.nan, 0.5, 0.3, 0.7, np.nan, np.nan])
        for k in range(1, values.size + 1):
            expected = np.argsort(-values, kind="stable")[:k]
            np.testing.assert_array_equal(_top_order(values, k), expected)
            down = np.argsort(values, kind="stable")[:k]
            np.testing.assert_array_equal(_top_order(-values, k), down)


class TestMostAnticorrelated:
    def test_order(self, matrix):
        bottom = most_anticorrelated_pairs(matrix, 2)
        assert bottom[0] == ("a", "d", -0.8)
        assert bottom[1] == ("b", "d", -0.1)

    def test_rejects_nonpositive_k(self, matrix):
        with pytest.raises(DataError):
            most_anticorrelated_pairs(matrix, -1)


class TestNeighbors:
    def test_sorted_descending(self, matrix):
        result = neighbors(matrix, "b", theta=0.0)
        assert result == [("a", 0.9), ("c", 0.5)]

    def test_excludes_self(self, matrix):
        result = neighbors(matrix, "a", theta=-2.0)
        assert "a" not in [name for name, _ in result]

    def test_threshold_applied(self, matrix):
        assert neighbors(matrix, "c", theta=0.45) == [("b", 0.5)]

    def test_unknown_name(self, matrix):
        with pytest.raises(DataError):
            neighbors(matrix, "zzz", theta=0.5)


class TestPairsInRange:
    def test_inclusive_range(self, matrix):
        result = pairs_in_range(matrix, 0.2, 0.5)
        assert set((a, b) for a, b, _ in result) == {
            ("a", "c"), ("b", "c"), ("c", "d")
        }

    def test_empty_range_rejected(self, matrix):
        with pytest.raises(DataError):
            pairs_in_range(matrix, 0.5, 0.2)

    def test_uncertain_band_use_case(self, matrix):
        """The band around theta that Eq. 7 inference cannot decide."""
        theta = 0.4
        band = pairs_in_range(matrix, theta - 0.15, theta + 0.15)
        assert ("b", "c", 0.5) in band


class TestDegreeAtThreshold:
    def test_matches_network(self, matrix):
        degrees = degree_at_threshold(matrix, 0.4)
        assert degrees == {"a": 1, "b": 2, "c": 1, "d": 0}

    def test_consistent_with_climate_network(self, matrix):
        from repro.core.network import ClimateNetwork

        network = ClimateNetwork.from_matrix(matrix, 0.4)
        degrees = degree_at_threshold(matrix, 0.4)
        for name in matrix.names:
            assert degrees[name] == network.degree(name)
