"""Tests for repro.core.queries (matrix query operators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrix import CorrelationMatrix
from repro.core.queries import (
    degree_at_threshold,
    most_anticorrelated_pairs,
    neighbors,
    pairs_in_range,
    top_k_pairs,
)
from repro.exceptions import DataError


@pytest.fixture()
def matrix():
    values = np.array(
        [
            [1.0, 0.9, 0.2, -0.8],
            [0.9, 1.0, 0.5, -0.1],
            [0.2, 0.5, 1.0, 0.3],
            [-0.8, -0.1, 0.3, 1.0],
        ]
    )
    return CorrelationMatrix(names=["a", "b", "c", "d"], values=values)


class TestTopKPairs:
    def test_order_and_content(self, matrix):
        top = top_k_pairs(matrix, 2)
        assert top[0] == ("a", "b", 0.9)
        assert top[1] == ("b", "c", 0.5)

    def test_k_larger_than_pairs(self, matrix):
        top = top_k_pairs(matrix, 100)
        assert len(top) == 6

    def test_rejects_nonpositive_k(self, matrix):
        with pytest.raises(DataError):
            top_k_pairs(matrix, 0)

    def test_matches_numpy_on_random(self, rng):
        values = np.corrcoef(rng.normal(size=(10, 50)))
        m = CorrelationMatrix(
            names=[f"n{i}" for i in range(10)], values=values
        )
        top = top_k_pairs(m, 3)
        rows, cols = np.triu_indices(10, k=1)
        best = np.sort(values[rows, cols])[::-1][:3]
        np.testing.assert_allclose([t[2] for t in top], best)


class TestMostAnticorrelated:
    def test_order(self, matrix):
        bottom = most_anticorrelated_pairs(matrix, 2)
        assert bottom[0] == ("a", "d", -0.8)
        assert bottom[1] == ("b", "d", -0.1)

    def test_rejects_nonpositive_k(self, matrix):
        with pytest.raises(DataError):
            most_anticorrelated_pairs(matrix, -1)


class TestNeighbors:
    def test_sorted_descending(self, matrix):
        result = neighbors(matrix, "b", theta=0.0)
        assert result == [("a", 0.9), ("c", 0.5)]

    def test_excludes_self(self, matrix):
        result = neighbors(matrix, "a", theta=-2.0)
        assert "a" not in [name for name, _ in result]

    def test_threshold_applied(self, matrix):
        assert neighbors(matrix, "c", theta=0.45) == [("b", 0.5)]

    def test_unknown_name(self, matrix):
        with pytest.raises(DataError):
            neighbors(matrix, "zzz", theta=0.5)


class TestPairsInRange:
    def test_inclusive_range(self, matrix):
        result = pairs_in_range(matrix, 0.2, 0.5)
        assert set((a, b) for a, b, _ in result) == {
            ("a", "c"), ("b", "c"), ("c", "d")
        }

    def test_empty_range_rejected(self, matrix):
        with pytest.raises(DataError):
            pairs_in_range(matrix, 0.5, 0.2)

    def test_uncertain_band_use_case(self, matrix):
        """The band around theta that Eq. 7 inference cannot decide."""
        theta = 0.4
        band = pairs_in_range(matrix, theta - 0.15, theta + 0.15)
        assert ("b", "c", 0.5) in band


class TestDegreeAtThreshold:
    def test_matches_network(self, matrix):
        degrees = degree_at_threshold(matrix, 0.4)
        assert degrees == {"a": 1, "b": 2, "c": 1, "d": 0}

    def test_consistent_with_climate_network(self, matrix):
        from repro.core.network import ClimateNetwork

        network = ClimateNetwork.from_matrix(matrix, 0.4)
        degrees = degree_at_threshold(matrix, 0.4)
        for name in matrix.names:
            assert degrees[name] == network.degree(name)
