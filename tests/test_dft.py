"""Tests for repro.approx.dft (normalization, DFT, distances, Eq. 3–4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.dft import (
    coefficient_count,
    correlation_to_distance_sq,
    dft_coefficients,
    dft_matrix,
    distance_to_correlation,
    epsilon_for_threshold,
    normalize_windows,
    pairwise_sq_distances,
)
from repro.exceptions import DataError


class TestNormalizeWindows:
    def test_unit_norm_zero_mean(self, rng):
        blocks = rng.normal(size=(5, 32))
        normalized = normalize_windows(blocks)
        np.testing.assert_allclose(normalized.mean(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(
            np.linalg.norm(normalized, axis=1), 1.0, atol=1e-12
        )

    def test_constant_window_becomes_zero(self, rng):
        blocks = np.vstack([np.full(16, 3.0), rng.normal(size=16)])
        normalized = normalize_windows(blocks)
        np.testing.assert_array_equal(normalized[0], 0.0)

    def test_correlation_identity(self, rng):
        """Eq. 3 pre-image: d^2(x_hat, y_hat) = 2 * (1 - corr(x, y))."""
        x = rng.normal(size=64)
        y = 0.7 * x + rng.normal(size=64)
        normalized = normalize_windows(np.vstack([x, y]))
        dist_sq = np.sum((normalized[0] - normalized[1]) ** 2)
        corr = np.corrcoef(x, y)[0, 1]
        assert dist_sq == pytest.approx(2.0 * (1.0 - corr))

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            normalize_windows(np.zeros(8))


class TestDftMatrix:
    def test_unitary(self):
        f = dft_matrix(16)
        np.testing.assert_allclose(f @ f.conj().T, np.eye(16), atol=1e-12)

    def test_cached_instance(self):
        assert dft_matrix(8) is dft_matrix(8)

    def test_rejects_nonpositive(self):
        with pytest.raises(DataError):
            dft_matrix(0)


class TestDftCoefficients:
    def test_direct_matches_fft(self, rng):
        windows = normalize_windows(rng.normal(size=(4, 32)))
        direct = dft_coefficients(windows, 32, method="direct")
        fft = dft_coefficients(windows, 32, method="fft")
        np.testing.assert_allclose(direct, fft, atol=1e-10)

    def test_parseval(self, rng):
        """Unitary scaling preserves energy, hence distances."""
        windows = normalize_windows(rng.normal(size=(3, 24)))
        coeffs = dft_coefficients(windows, 24)
        np.testing.assert_allclose(
            np.sum(np.abs(coeffs) ** 2, axis=1),
            np.sum(windows**2, axis=1),
            atol=1e-12,
        )

    def test_prefix_selection(self, rng):
        windows = normalize_windows(rng.normal(size=(2, 16)))
        full = dft_coefficients(windows, 16)
        prefix = dft_coefficients(windows, 5)
        np.testing.assert_allclose(prefix, full[:, :5], atol=1e-12)

    def test_rejects_bad_counts(self, rng):
        windows = rng.normal(size=(2, 16))
        with pytest.raises(DataError):
            dft_coefficients(windows, 0)
        with pytest.raises(DataError):
            dft_coefficients(windows, 17)
        with pytest.raises(DataError):
            dft_coefficients(windows, 4, method="nope")


class TestCoefficientCount:
    def test_fraction(self):
        assert coefficient_count(200, 0.75) == 150
        assert coefficient_count(200, 1.0) == 200

    def test_minimum_one(self):
        assert coefficient_count(10, 0.01) == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(DataError):
            coefficient_count(10, 0.0)
        with pytest.raises(DataError):
            coefficient_count(10, 1.5)


class TestPairwiseSqDistances:
    def test_matches_direct_computation(self, rng):
        coeffs = rng.normal(size=(5, 8)) + 1j * rng.normal(size=(5, 8))
        dists = pairwise_sq_distances(coeffs)
        for i in range(5):
            for j in range(5):
                expected = np.sum(np.abs(coeffs[i] - coeffs[j]) ** 2)
                assert dists[i, j] == pytest.approx(expected, abs=1e-9)

    def test_zero_diagonal_nonnegative(self, rng):
        coeffs = rng.normal(size=(6, 4)).astype(complex)
        dists = pairwise_sq_distances(coeffs)
        np.testing.assert_array_equal(np.diag(dists), 0.0)
        assert np.all(dists >= 0.0)


class TestDistanceCorrelationMaps:
    def test_roundtrip(self):
        corr = np.array([-1.0, 0.0, 0.5, 1.0])
        np.testing.assert_allclose(
            distance_to_correlation(correlation_to_distance_sq(corr)), corr
        )

    def test_epsilon_for_threshold(self):
        assert epsilon_for_threshold(1.0) == 0.0
        assert epsilon_for_threshold(0.0) == 2.0
        assert epsilon_for_threshold(0.75) == pytest.approx(0.5)
        with pytest.raises(DataError):
            epsilon_for_threshold(2.0)


class TestPrefixUnderestimation:
    """The property that makes Eq. 4 a no-false-negative filter."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_coeffs=st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_prefix_distance_underestimates(self, seed, n_coeffs):
        rng = np.random.default_rng(seed)
        windows = normalize_windows(rng.normal(size=(4, 32)))
        full = pairwise_sq_distances(dft_coefficients(windows, 32))
        prefix = pairwise_sq_distances(dft_coefficients(windows, n_coeffs))
        assert np.all(prefix <= full + 1e-9)

    def test_all_coefficients_exact(self, rng):
        x = rng.normal(size=40)
        y = 0.2 * x + rng.normal(size=40)
        windows = normalize_windows(np.vstack([x, y]))
        dists = pairwise_sq_distances(dft_coefficients(windows, 40))
        corr = distance_to_correlation(dists[0, 1])
        assert corr == pytest.approx(np.corrcoef(x, y)[0, 1], abs=1e-9)
