"""Cross-cutting property-based tests over the whole pipeline.

Each property here spans multiple modules — the invariants a user of the
library implicitly relies on when mixing engines, stores, and analysis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.naive import baseline_correlation_matrix
from repro.core.exact import TsubasaHistorical
from repro.core.lemma2 import SlidingCorrelationState
from repro.core.matrix import similarity_ratio, threshold_adjacency
from repro.core.sketch import build_sketch
from repro.core.sweep import SweepPlan
from repro.parallel.executor import parallel_query
from repro.storage.memory import MemorySketchStore
from repro.storage.serialize import load_sketch, save_sketch


def _correlated_data(seed: int, n: int, length: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    k = max(2, n // 4)
    base = rng.normal(size=(k, length))
    mix = rng.normal(size=(n, k))
    return mix @ base + rng.normal(size=(n, length))


class TestEngineAgreement:
    """Every exact path gives the same matrix, for any aligned window."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_five_exact_paths_agree(self, seed, data):
        values = _correlated_data(seed, n=6, length=240)
        window_size = data.draw(st.sampled_from([20, 30, 40, 60]))
        n_windows = 240 // window_size
        first = data.draw(st.integers(0, n_windows - 1))
        count = data.draw(st.integers(1, n_windows - first))

        start, stop = first * window_size, (first + count) * window_size
        truth = baseline_correlation_matrix(values[:, start:stop])

        sketch = build_sketch(values, window_size)
        idx = np.arange(first, first + count)

        # 1. Historical engine (Lemma 1).
        engine = TsubasaHistorical(values, window_size)
        a = engine.correlation_matrix((stop - 1, stop - start)).values
        # 2. Prefix-sum sweep plan.
        b = SweepPlan(sketch).correlation_matrix(first, count).values
        # 3. Parallel partitioned query.
        c = parallel_query(idx, n_workers=2, sketch=sketch).matrix
        # 4. Sliding state seeded at the window (via a sub-sketch).
        sub = sketch.select(idx)
        d = SlidingCorrelationState(sub, count).correlation_matrix()
        # 5. Store round-trip then Lemma 1.
        store = MemorySketchStore()
        save_sketch(store, sketch)
        from repro.core.lemma1 import combine_matrix

        loaded = load_sketch(store, indices=[int(j) for j in idx])
        e = combine_matrix(loaded.means, loaded.stds, loaded.covs,
                           loaded.sizes)

        for result in (a, b, c, d, e):
            np.testing.assert_allclose(result, truth, atol=1e-8)


class TestThresholdConsistency:
    @given(
        seed=st.integers(0, 2**31 - 1),
        theta=st.floats(0.1, 0.9),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_network_matches_matrix_threshold(self, seed, theta):
        values = _correlated_data(seed, n=8, length=200)
        engine = TsubasaHistorical(values, 50)
        matrix = engine.correlation_matrix((199, 200))
        network = engine.network((199, 200), float(theta))
        np.testing.assert_array_equal(
            network.adjacency, threshold_adjacency(matrix.values, float(theta))
        )
        assert network.n_edges == matrix.n_edges(float(theta))

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_similarity_of_nested_thresholds(self, seed):
        """Networks at nearby thresholds are more similar than distant ones."""
        values = _correlated_data(seed, n=10, length=300)
        corr = baseline_correlation_matrix(values)
        a = threshold_adjacency(corr, 0.3)
        b = threshold_adjacency(corr, 0.4)
        c = threshold_adjacency(corr, 0.8)
        assert similarity_ratio(a, b) >= similarity_ratio(a, c) - 1e-12


class TestRealtimeHistoricalDuality:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_slides=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_streaming_equals_batch(self, seed, n_slides):
        from repro.core.realtime import TsubasaRealtime

        window_size, initial = 25, 150
        total = initial + n_slides * window_size
        values = _correlated_data(seed, n=5, length=total)
        realtime = TsubasaRealtime(values[:, :initial], window_size)
        realtime.ingest(values[:, initial:])
        batch = TsubasaHistorical(values, window_size)
        expected = batch.correlation_matrix((total - 1, initial)).values
        np.testing.assert_allclose(
            realtime.correlation_matrix().values, expected, atol=1e-8
        )


class TestSketchComposability:
    @given(seed=st.integers(0, 2**31 - 1), cut=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_property_append_equals_rebuild(self, seed, cut):
        """Sketching in two halves equals sketching in one pass."""
        values = _correlated_data(seed, n=4, length=180)
        window_size = 30
        split = cut * window_size
        incremental = build_sketch(values[:, :split], window_size)
        for j in range(cut, 6):
            incremental.append_window(
                values[:, j * window_size : (j + 1) * window_size]
            )
        full = build_sketch(values, window_size)
        np.testing.assert_allclose(incremental.means, full.means, atol=1e-12)
        np.testing.assert_allclose(incremental.covs, full.covs, atol=1e-12)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_drop_then_query_consistent(self, seed):
        values = _correlated_data(seed, n=4, length=200)
        sketch = build_sketch(values, 25)
        sketch.drop_leading_windows(3)
        from repro.core.lemma1 import combine_matrix

        corr = combine_matrix(sketch.means, sketch.stds, sketch.covs,
                              sketch.sizes)
        expected = baseline_correlation_matrix(values[:, 75:])
        np.testing.assert_allclose(corr, expected, atol=1e-8)
