"""Tests for Lemma 2 — incremental sliding-window correlation updates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lemma2 import (
    PairWindowSnapshot,
    SlidingCorrelationState,
    lemma2_update_pair,
)
from repro.core.sketch import build_sketch
from repro.exceptions import SketchError, StreamError


def _pair_snapshot(x_block, y_block):
    return PairWindowSnapshot(
        size=x_block.size,
        mean_x=float(x_block.mean()),
        mean_y=float(y_block.mean()),
        var_x=float(x_block.var()),
        var_y=float(y_block.var()),
        cov=float(np.mean((x_block - x_block.mean()) * (y_block - y_block.mean()))),
    )


class TestLemma2UpdatePair:
    def _run_slides(self, x, y, window, block, n_slides):
        """Seed from [0, window) then slide n_slides times; check each step."""
        cur_x, cur_y = x[:window], y[:window]
        corr = float(np.corrcoef(cur_x, cur_y)[0, 1])
        std_x, std_y = float(cur_x.std()), float(cur_y.std())
        grand_x, grand_y = float(cur_x.mean()), float(cur_y.mean())
        total = float(window)
        for step in range(n_slides):
            lo = step * block
            new_lo = window + step * block
            leaving = _pair_snapshot(x[lo : lo + block], y[lo : lo + block])
            entering = _pair_snapshot(
                x[new_lo : new_lo + block], y[new_lo : new_lo + block]
            )
            result = lemma2_update_pair(
                corr, std_x, std_y, grand_x, grand_y, total, leaving, entering
            )
            corr, std_x, std_y = result.corr, result.std_x, result.std_y
            grand_x, grand_y, total = result.grand_x, result.grand_y, result.total

            ref_x = x[lo + block : new_lo + block]
            ref_y = y[lo + block : new_lo + block]
            assert corr == pytest.approx(np.corrcoef(ref_x, ref_y)[0, 1], abs=1e-9)
            assert std_x == pytest.approx(ref_x.std(), abs=1e-9)
            assert grand_x == pytest.approx(ref_x.mean(), abs=1e-9)

    def test_single_slide_matches_recompute(self, rng):
        x = rng.normal(size=200)
        y = 0.5 * x + rng.normal(size=200)
        self._run_slides(x, y, window=100, block=20, n_slides=1)

    def test_many_slides_stay_exact(self, rng):
        x = rng.normal(size=600)
        y = rng.normal(size=600) + 0.2 * x
        self._run_slides(x, y, window=200, block=25, n_slides=16)

    def test_nonstationary_series(self, rng):
        """Means/stds drift across the stream; Lemma 2 must still be exact."""
        t = np.arange(400, dtype=float)
        x = np.sin(t / 15.0) * (1 + t / 200.0) + rng.normal(size=400) * 0.3
        y = np.cos(t / 11.0) + t / 100.0 + rng.normal(size=400) * 0.3
        self._run_slides(x, y, window=160, block=40, n_slides=6)

    @given(seed=st.integers(0, 2**31 - 1), block=st.integers(5, 40))
    @settings(max_examples=40, deadline=None)
    def test_property_slide_equals_recompute(self, seed, block):
        rng = np.random.default_rng(seed)
        window = 4 * block
        total = window + 3 * block
        x = rng.normal(size=total)
        y = rng.normal(size=total)
        self._run_slides(x, y, window=window, block=block, n_slides=3)


class TestSlidingCorrelationState:
    def test_initial_matrix_matches_numpy(self, rng):
        data = rng.normal(size=(6, 300))
        sketch = build_sketch(data, window_size=50)
        state = SlidingCorrelationState(sketch, n_windows=4)
        ref = np.corrcoef(data[:, 100:300])
        np.testing.assert_allclose(state.correlation_matrix(), ref, atol=1e-10)

    def test_slide_raw_matches_recompute(self, rng):
        data = rng.normal(size=(5, 400))
        sketch = build_sketch(data[:, :300], window_size=50)
        state = SlidingCorrelationState(sketch, n_windows=6)
        for step in range(2):
            lo = 300 + step * 50
            state.slide_raw(data[:, lo : lo + 50])
            ref = np.corrcoef(data[:, lo + 50 - 300 : lo + 50])
            np.testing.assert_allclose(state.correlation_matrix(), ref, atol=1e-9)

    def test_long_run_no_drift(self, rng):
        """Hundreds of slides (past the rebuild interval) remain exact."""
        n, window_size = 4, 10
        data = rng.normal(size=(n, 600))
        sketch = build_sketch(data[:, :100], window_size=window_size)
        state = SlidingCorrelationState(sketch, n_windows=10, rebuild_every=64)
        for step in range((600 - 100) // window_size):
            lo = 100 + step * window_size
            state.slide_raw(data[:, lo : lo + window_size])
        ref = np.corrcoef(data[:, 500:600])
        np.testing.assert_allclose(state.correlation_matrix(), ref, atol=1e-8)

    def test_total_points_constant_under_equal_blocks(self, rng):
        data = rng.normal(size=(3, 200))
        sketch = build_sketch(data, window_size=40)
        state = SlidingCorrelationState(sketch, n_windows=5)
        assert state.total_points == 200
        state.slide_raw(rng.normal(size=(3, 40)))
        assert state.total_points == 200
        assert state.n_windows == 5

    def test_variable_size_entering_block(self, rng):
        data = rng.normal(size=(3, 200))
        sketch = build_sketch(data, window_size=40)
        state = SlidingCorrelationState(sketch, n_windows=5)
        block = rng.normal(size=(3, 25))
        state.slide_raw(block)
        full = np.concatenate([data[:, 40:], block], axis=1)
        np.testing.assert_allclose(
            state.correlation_matrix(), np.corrcoef(full), atol=1e-9
        )
        assert state.total_points == 185

    def test_rejects_bad_shapes(self, rng):
        data = rng.normal(size=(3, 100))
        sketch = build_sketch(data, window_size=20)
        state = SlidingCorrelationState(sketch, n_windows=5)
        with pytest.raises(StreamError):
            state.slide_raw(rng.normal(size=(4, 20)))
        with pytest.raises(StreamError):
            state.slide(np.zeros(2), np.zeros(3), np.zeros((3, 3)), 10)
        with pytest.raises(StreamError):
            state.slide(np.zeros(3), np.zeros(3), np.zeros((2, 2)), 10)
        with pytest.raises(StreamError):
            state.slide(np.zeros(3), np.zeros(3), np.zeros((3, 3)), 0)

    def test_rejects_bad_window_counts(self, rng):
        sketch = build_sketch(rng.normal(size=(3, 100)), window_size=20)
        with pytest.raises(StreamError):
            SlidingCorrelationState(sketch, n_windows=0)
        with pytest.raises(SketchError):
            SlidingCorrelationState(sketch, n_windows=6)
        with pytest.raises(StreamError):
            SlidingCorrelationState(sketch, n_windows=2, rebuild_every=0)

    def test_names_preserved(self, rng):
        data = rng.normal(size=(3, 100))
        sketch = build_sketch(data, window_size=20, names=["a", "b", "c"])
        state = SlidingCorrelationState(sketch, n_windows=5)
        assert state.names == ["a", "b", "c"]
