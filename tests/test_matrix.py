"""Tests for repro.core.matrix (matrices, thresholds, similarity ratio)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.matrix import (
    CorrelationMatrix,
    count_edges,
    similarity_ratio,
    threshold_adjacency,
)
from repro.exceptions import DataError


def _labeled(values):
    names = [f"n{i}" for i in range(values.shape[0])]
    return CorrelationMatrix(names=names, values=values)


class TestCorrelationMatrix:
    def test_get_by_name(self):
        values = np.array([[1.0, 0.5], [0.5, 1.0]])
        matrix = CorrelationMatrix(names=["a", "b"], values=values)
        assert matrix.get("a", "b") == 0.5
        assert matrix.n_series == 2

    def test_threshold_excludes_diagonal(self):
        matrix = _labeled(np.array([[1.0, 0.9], [0.9, 1.0]]))
        adj = matrix.threshold(0.5)
        assert not adj[0, 0]
        assert adj[0, 1]

    def test_threshold_strict_inequality(self):
        matrix = _labeled(np.array([[1.0, 0.5], [0.5, 1.0]]))
        assert matrix.n_edges(0.5) == 0
        assert matrix.n_edges(0.4999) == 1

    def test_edges_sorted_pairs(self):
        values = np.array(
            [[1.0, 0.9, 0.1], [0.9, 1.0, 0.8], [0.1, 0.8, 1.0]]
        )
        matrix = _labeled(values)
        edges = matrix.edges(0.5)
        assert ("n0", "n1", 0.9) in edges
        assert ("n1", "n2", 0.8) in edges
        assert len(edges) == 2

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            CorrelationMatrix(names=["a"], values=np.zeros((2, 2)))

    def test_rejects_duplicate_names(self):
        with pytest.raises(DataError):
            CorrelationMatrix(names=["a", "a"], values=np.eye(2))


class TestThresholdAdjacency:
    def test_basic(self):
        values = np.array([[1.0, 0.6], [0.6, 1.0]])
        adj = threshold_adjacency(values, 0.5)
        assert adj[0, 1] and adj[1, 0]
        assert not adj[0, 0]

    def test_negative_correlations_not_edges(self):
        values = np.array([[1.0, -0.9], [-0.9, 1.0]])
        assert count_edges(threshold_adjacency(values, 0.5)) == 0

    def test_rejects_non_square(self):
        with pytest.raises(DataError):
            threshold_adjacency(np.zeros((2, 3)), 0.5)


class TestCountEdges:
    def test_counts_upper_triangle_only(self):
        adj = np.array(
            [[False, True, True], [True, False, False], [True, False, False]]
        )
        assert count_edges(adj) == 2

    def test_empty(self):
        assert count_edges(np.zeros((4, 4), dtype=bool)) == 0

    def test_complete(self):
        adj = np.ones((5, 5), dtype=bool)
        np.fill_diagonal(adj, False)
        assert count_edges(adj) == 10


class TestSimilarityRatio:
    def test_paper_example(self):
        """The worked 2/3 example from §4.1."""
        a = np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]], dtype=bool)
        b = np.array([[1, 0, 0], [0, 1, 1], [0, 1, 1]], dtype=bool)
        assert similarity_ratio(a, b) == pytest.approx(2.0 / 3.0)

    def test_identical_is_one(self, rng):
        adj = rng.random((6, 6)) > 0.5
        adj = adj | adj.T
        assert similarity_ratio(adj, adj) == 1.0

    def test_complement_is_zero(self):
        a = np.zeros((4, 4), dtype=bool)
        b = np.ones((4, 4), dtype=bool)
        assert similarity_ratio(a, b) == 0.0

    def test_single_node(self):
        assert similarity_ratio(np.zeros((1, 1)), np.ones((1, 1))) == 1.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            similarity_ratio(np.zeros((2, 2)), np.zeros((3, 3)))

    @given(
        data=arrays(np.bool_, (5, 5)),
        other=arrays(np.bool_, (5, 5)),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_symmetric_and_bounded(self, data, other):
        ratio = similarity_ratio(data, other)
        assert 0.0 <= ratio <= 1.0
        assert ratio == similarity_ratio(other, data)

    @given(data=arrays(np.bool_, (6, 6)))
    @settings(max_examples=50, deadline=None)
    def test_property_self_similarity_is_one(self, data):
        assert similarity_ratio(data, data) == 1.0

    @given(n_flips=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_property_each_flip_costs_fixed_amount(self, n_flips, rng):
        n = 8
        a = np.zeros((n, n), dtype=bool)
        b = a.copy()
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for i, j in pairs[:n_flips]:
            b[i, j] = b[j, i] = True
        expected = 1.0 - 2.0 * n_flips / (n * (n - 1))
        assert similarity_ratio(a, b) == pytest.approx(expected)
