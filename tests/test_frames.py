"""Tests for the binary columnar wire format (protocol v2 frames).

The frame codec is the foundation of wire-speed serving: encoding must be
a straight memory copy of kernel output, decoding must be zero-copy and
bit-exact, and every malformed input must be rejected with a
:class:`~repro.exceptions.DataError` (never a crash, never silent
garbage) because frames arrive from the network.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.api.frames import (
    CONTENT_TYPE_V2,
    FRAME_HEADER,
    MAGIC,
    decode_frame,
    encode_envelope,
    encode_frame,
    encode_response_v2,
    value_from_payload_v2,
)
from repro.api.protocol import PROTOCOL_V2
from repro.api.spec import QueryResult, QuerySpec, WindowSpec
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.exceptions import DataError

WINDOW = WindowSpec(end=599, length=200)


def make_matrix(n=6, seed=3):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal((n, n))
    values = (values + values.T) / 2
    np.fill_diagonal(values, 1.0)
    names = [f"s{i}" for i in range(n)]
    return CorrelationMatrix(names=names, values=values)


def make_network(n=6, seed=4, theta=0.3):
    matrix = make_matrix(n, seed)
    adjacency = np.abs(matrix.values) >= theta
    np.fill_diagonal(adjacency, False)
    weights = np.where(adjacency, matrix.values, 0.0)
    return ClimateNetwork(
        names=matrix.names,
        adjacency=adjacency,
        weights=weights,
        threshold=theta,
    )


class TestFrameCodec:
    def test_round_trip_no_buffers(self):
        meta = {"protocol": PROTOCOL_V2, "id": 7, "ok": True, "result": {}}
        data = encode_frame(meta, [])
        decoded, buffers, offset = decode_frame(data)
        assert decoded == meta
        assert buffers == []
        assert offset == len(data)

    def test_round_trip_buffers_bit_exact(self):
        rng = np.random.default_rng(0)
        f8 = rng.standard_normal((5, 5))
        u4 = rng.integers(0, 100, size=(7, 2)).astype(np.uint32)
        data = encode_frame({"x": {"$buf": 0}, "y": {"$buf": 1}}, [f8, u4])
        meta, buffers, _ = decode_frame(data)
        assert meta == {"x": {"$buf": 0}, "y": {"$buf": 1}}
        assert buffers[0].dtype == np.dtype("<f8")
        assert buffers[1].dtype == np.dtype("<u4")
        np.testing.assert_array_equal(buffers[0], f8)
        np.testing.assert_array_equal(buffers[1], u4)

    def test_decoded_buffers_are_zero_copy_views(self):
        f8 = np.arange(9.0).reshape(3, 3)
        data = encode_frame({"x": {"$buf": 0}}, [f8])
        _, buffers, _ = decode_frame(data)
        # A view over the received bytes, not a copy — and therefore
        # read-only, like the transport buffer it aliases.
        assert not buffers[0].flags.writeable
        assert not buffers[0].flags.owndata

    def test_frames_are_self_delimiting(self):
        one = encode_frame({"id": 1}, [np.zeros((2, 2))])
        two = encode_frame({"id": 2}, [])
        batch = one + two
        meta1, _, offset = decode_frame(batch)
        meta2, _, end = decode_frame(batch, offset)
        assert (meta1["id"], meta2["id"]) == (1, 2)
        assert end == len(batch)

    def test_rejects_non_allowed_dtype(self):
        with pytest.raises(DataError, match="buffers must be one of"):
            encode_frame({"x": {"$buf": 0}}, [np.zeros(3, dtype=np.float32)])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: b"NOPE" + d[4:],                      # bad magic
            lambda d: d[:10],                               # truncated header
            lambda d: d[:-4],                               # truncated body
            lambda d: d[:FRAME_HEADER.size] + b"{not json" + d[FRAME_HEADER.size + 9:],
        ],
    )
    def test_rejects_malformed_bytes(self, mutate):
        data = encode_frame({"x": {"$buf": 0}}, [np.zeros((2, 2))])
        with pytest.raises(DataError):
            decode_frame(mutate(data))

    def test_rejects_wrong_version(self):
        data = bytearray(encode_frame({"a": 1}, []))
        header = FRAME_HEADER.unpack_from(data)
        FRAME_HEADER.pack_into(
            data, 0, MAGIC, 9, header[2], header[3], header[4]
        )
        with pytest.raises(DataError, match="version"):
            decode_frame(bytes(data))

    def test_rejects_buffer_out_of_bounds(self):
        sidecar = json.dumps({
            "buffers": [
                {"dtype": "<f8", "shape": [4], "offset": 0, "nbytes": 64}
            ]
        }).encode()
        body = b"\x00" * 32  # table claims 64 bytes; only 32 present
        data = (
            FRAME_HEADER.pack(MAGIC, 2, 0, len(sidecar), len(body))
            + sidecar
            + body
        )
        with pytest.raises(DataError):
            decode_frame(data)

    def test_rejects_shape_nbytes_mismatch(self):
        sidecar = json.dumps({
            "buffers": [
                {"dtype": "<f8", "shape": [2, 2], "offset": 0, "nbytes": 24}
            ]
        }).encode()
        body = b"\x00" * 24
        data = (
            FRAME_HEADER.pack(MAGIC, 2, 0, len(sidecar), len(body))
            + sidecar
            + body
        )
        with pytest.raises(DataError):
            decode_frame(data)

    def test_content_type_is_stable(self):
        # The negotiation token is part of the wire contract; changing it
        # breaks deployed clients.
        assert CONTENT_TYPE_V2 == "application/x-tsubasa-frame"
        assert struct.calcsize("<4sHHIQ") == FRAME_HEADER.size


class TestResultCodec:
    def test_matrix_round_trip(self):
        matrix = make_matrix()
        spec = QuerySpec(op="matrix", window=WINDOW)
        result = QueryResult(spec=spec, value=matrix)
        data = encode_response_v2(result, request_id=3)
        meta, buffers, _ = decode_frame(data)
        assert meta["protocol"] == PROTOCOL_V2
        assert meta["ok"] is True and meta["id"] == 3
        decoded = value_from_payload_v2(spec, meta["result"], buffers)
        assert decoded.names == matrix.names
        np.testing.assert_array_equal(decoded.values, matrix.values)

    def test_network_round_trip(self):
        network = make_network()
        spec = QuerySpec(op="network", window=WINDOW, theta=0.3)
        result = network_result(network, spec)
        meta, buffers, _ = decode_frame(encode_response_v2(result, 1))
        decoded = value_from_payload_v2(spec, meta["result"], buffers)
        assert decoded.edge_set() == network.edge_set()
        for a, b in network.edge_set():
            assert decoded.edge_weight(a, b) == network.edge_weight(a, b)
        # The decoded matrices are exactly symmetric by construction.
        np.testing.assert_array_equal(decoded.weights, decoded.weights.T)

    def test_network_rejects_out_of_range_edge_index(self):
        network = make_network()
        spec = QuerySpec(op="network", window=WINDOW, theta=0.3)
        meta, buffers, _ = decode_frame(encode_response_v2(network_result(network, spec), 1))
        bad_index = buffers[0].copy()
        bad_index[0, 0] = 10**6
        with pytest.raises(DataError):
            value_from_payload_v2(spec, meta["result"], [bad_index, buffers[1]])

    def test_non_buffer_ops_fall_through_to_v1_payloads(self):
        spec = QuerySpec(op="top_k", window=WINDOW, k=2)
        payload = {"pairs": [["a", "b", 0.9], ["a", "c", 0.8]]}
        value = value_from_payload_v2(spec, payload, [])
        assert value == payload["pairs"] or value is not None

    def test_envelope_encoding_round_trip(self):
        envelope = {"protocol": 1, "id": "x", "ok": False,
                    "error": {"type": "DataError", "message": "no", "code": 2}}
        meta, buffers, _ = decode_frame(encode_envelope(envelope))
        assert meta["protocol"] == PROTOCOL_V2
        assert meta["ok"] is False
        assert meta["error"]["type"] == "DataError"
        assert buffers == []


def network_result(network, spec):
    return QueryResult(spec=spec, value=network)
