"""Tests for the async TsubasaService (repro.api.service).

Acceptance bar: ≥32 concurrent in-flight specs over one shared provider,
answers bit-identical to serial execution, and demonstrated coalescing of
duplicate window selections.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api.client import TsubasaClient
from repro.api.service import TsubasaService, run_specs
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.sketch import build_sketch
from repro.engine.providers import InMemoryProvider, MmapProvider, StoreProvider
from repro.exceptions import ServiceError, SketchError
from repro.storage.mmap_store import MmapStore
from repro.storage.serialize import save_sketch
from repro.storage.sqlite_store import SqliteSketchStore

B = 50
N_POINTS = 600


@pytest.fixture(scope="module")
def data():
    from repro.data.synthetic import generate_station_dataset

    return generate_station_dataset(
        n_stations=14, n_points=N_POINTS, seed=7
    ).values


@pytest.fixture(scope="module")
def sketch(data):
    return build_sketch(data, B)


def overlapping_specs(n: int) -> list[QuerySpec]:
    """``n`` specs over a small pool of overlapping windows (duplicates
    guaranteed, so coalescing must trigger)."""
    windows = [
        WindowSpec(end=599, length=200),
        WindowSpec(end=599, length=400),
        WindowSpec(end=399, length=200),
        WindowSpec(start=200, stop=600),
        WindowSpec(first_window=0, n_windows=8),
    ]
    specs: list[QuerySpec] = []
    for i in range(n):
        window = windows[i % len(windows)]
        kind = i % 4
        if kind == 0:
            specs.append(QuerySpec(op="matrix", window=window))
        elif kind == 1:
            specs.append(QuerySpec(op="network", window=window, theta=0.4))
        elif kind == 2:
            specs.append(QuerySpec(op="top_k", window=window, k=5))
        else:
            specs.append(QuerySpec(op="degree", window=window, theta=0.3))
    return specs


def values_of(result) -> np.ndarray | object:
    """A comparable form of a QueryResult's value."""
    spec = result.spec
    if spec.op == "matrix":
        return result.value.values
    if spec.op == "network":
        return result.value.edge_set()
    return result.value


def assert_identical_to_serial(results, serial_client, specs):
    for result, spec in zip(results, specs):
        expected = serial_client.execute(spec)
        got = values_of(result)
        want = values_of(expected)
        if isinstance(got, np.ndarray):
            np.testing.assert_array_equal(got, want)
        else:
            assert got == want


class TestConcurrentStoreProvider:
    def test_32_concurrent_specs_bit_identical_and_coalesced(
        self, sketch, data, tmp_path
    ):
        store = SqliteSketchStore(tmp_path / "svc.db")
        save_sketch(store, sketch)
        shared = StoreProvider(store, cache_windows=64)
        client = TsubasaClient(provider=shared)
        specs = overlapping_specs(40)

        async def drive():
            async with TsubasaService(client) as service:
                results = await asyncio.gather(
                    *(service.submit(spec) for spec in specs)
                )
                return results, service.stats()

        results, stats = asyncio.run(drive())
        assert stats.submitted == 40
        assert stats.completed == 40
        assert stats.failed == 0
        # 5 distinct windows, 40 requests: coalescing must have fired.
        assert stats.coalesced > 0
        assert stats.matrices_computed < len(specs)
        assert 0.0 < stats.coalesce_rate <= 1.0
        # Bit-identity against a fresh serial client on its own provider.
        serial_store = SqliteSketchStore(tmp_path / "svc.db")
        serial = TsubasaClient(provider=StoreProvider(serial_store))
        assert_identical_to_serial(results, serial, specs)

    def test_batched_prefetch_counts_windows(self, sketch, data, tmp_path):
        store = SqliteSketchStore(tmp_path / "svc2.db")
        save_sketch(store, sketch)
        shared = StoreProvider(store, cache_windows=64)
        client = TsubasaClient(provider=shared)
        specs = overlapping_specs(32)

        async def drive():
            async with TsubasaService(client) as service:
                results = await asyncio.gather(
                    *(service.submit(spec) for spec in specs)
                )
                return results, service.stats()

        _, stats = asyncio.run(drive())
        # The dispatcher saw the queued batch and batch-read the union of
        # its windows (12 basic windows across the pool) exactly once.
        assert stats.prefetched_windows == 12
        assert shared.windows_read == 12

    def test_prefetch_disabled_reads_more(self, sketch, tmp_path):
        store = SqliteSketchStore(tmp_path / "svc3.db")
        save_sketch(store, sketch)
        shared = StoreProvider(store, cache_windows=0)  # no cache at all
        client = TsubasaClient(provider=shared)
        specs = overlapping_specs(8)

        async def drive():
            async with TsubasaService(client, prefetch=False) as service:
                await asyncio.gather(*(service.submit(s) for s in specs))
                return service.stats()

        stats = asyncio.run(drive())
        assert stats.prefetched_windows == 0
        assert shared.windows_read > 12  # every matrix re-read its windows


class TestConcurrentMmapProvider:
    def test_32_concurrent_specs_multithreaded(self, sketch, data, tmp_path):
        with MmapStore(tmp_path / "svc.mm") as store:
            save_sketch(store, sketch)
        shared = MmapProvider(tmp_path / "svc.mm")
        client = TsubasaClient(provider=shared)
        specs = overlapping_specs(48)

        # The mmap arrays are read-only — multiple executor threads may
        # compute matrices concurrently over the one shared mapping.
        results, stats = run_specs(client, specs, max_workers=4)
        assert stats.completed == 48
        assert stats.coalesced > 0
        assert stats.backend_latency["mmap"].count == stats.matrices_computed
        assert stats.backend_latency["mmap"].mean_seconds > 0.0
        serial = TsubasaClient(provider=MmapProvider(tmp_path / "svc.mm"))
        assert_identical_to_serial(results, serial, specs)

    def test_duplicate_specs_coalesce_fully(self, sketch, tmp_path):
        with MmapStore(tmp_path / "dup.mm") as store:
            save_sketch(store, sketch)
        client = TsubasaClient(provider=MmapProvider(tmp_path / "dup.mm"))
        spec = QuerySpec(op="network", window=WindowSpec(end=599, length=400),
                         theta=0.4)
        results, stats = run_specs(client, [spec] * 32)
        assert stats.matrices_computed == 1
        assert stats.coalesced == 31
        edge_sets = {frozenset(r.value.edge_set()) for r in results}
        assert len(edge_sets) == 1
        assert sum(r.provenance.coalesced for r in results) == 31


class TestDiffNetworkCoalescing:
    def test_diff_shares_windows_with_plain_queries(self, sketch, tmp_path):
        with MmapStore(tmp_path / "diff.mm") as store:
            save_sketch(store, sketch)
        client = TsubasaClient(provider=MmapProvider(tmp_path / "diff.mm"))
        current = WindowSpec(end=599, length=200)
        previous = WindowSpec(end=399, length=200)
        specs = [
            QuerySpec(op="network", window=current, theta=0.4),
            QuerySpec(op="network", window=previous, theta=0.4),
            QuerySpec(op="diff_network", window=current, baseline=previous,
                      theta=0.4),
        ]
        results, stats = run_specs(client, specs)
        # Both of the diff's windows ride on the plain queries' matrices.
        assert stats.matrices_computed == 2
        assert stats.coalesced == 2
        appeared, disappeared = results[2].value
        assert appeared == (
            results[0].value.edge_set() - results[1].value.edge_set()
        )
        assert disappeared == (
            results[1].value.edge_set() - results[0].value.edge_set()
        )


class TestErrorsAndLifecycle:
    def test_invalid_window_raises_in_submitter(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        bad = QuerySpec(op="matrix", window=WindowSpec(end=587, length=173))

        async def drive():
            async with TsubasaService(client) as service:
                with pytest.raises(SketchError):
                    await service.submit(bad)
                # The service keeps serving after a failed request.
                ok = await service.submit(
                    QuerySpec(op="matrix", window=WindowSpec(end=599,
                                                             length=200))
                )
                return ok, service.stats()

        ok, stats = asyncio.run(drive())
        assert stats.failed == 1
        assert stats.completed == 1
        assert ok.value.values.shape == (sketch.n_series, sketch.n_series)

    def test_multiworker_rejected_for_unsafe_backend(self, sketch, tmp_path):
        store = SqliteSketchStore(tmp_path / "mt.db")
        save_sketch(store, sketch)
        client = TsubasaClient(provider=StoreProvider(store))
        with pytest.raises(ServiceError, match="concurrent reads"):
            TsubasaService(client, max_workers=4)

    def test_submit_requires_started_service(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        service = TsubasaService(client)

        async def drive():
            with pytest.raises(ServiceError, match="not started"):
                await service.submit(
                    QuerySpec(op="matrix", window=WindowSpec(end=599,
                                                             length=200))
                )

        asyncio.run(drive())

    def test_submit_after_close_raises(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))

        async def drive():
            service = TsubasaService(client)
            await service.start()
            await service.aclose()
            with pytest.raises(ServiceError, match="closed"):
                await service.submit(
                    QuerySpec(op="matrix", window=WindowSpec(end=599,
                                                             length=200))
                )

        asyncio.run(drive())

    def test_stats_snapshot_before_start(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        stats = TsubasaService(client).stats()
        assert stats.submitted == 0
        assert stats.queue_depth == 0
        assert stats.coalesce_rate == 0.0

    def test_queue_drains_by_close(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        specs = overlapping_specs(16)

        async def drive():
            service = TsubasaService(client)
            await service.start()
            tasks = [
                asyncio.get_running_loop().create_task(service.submit(s))
                for s in specs
            ]
            await asyncio.sleep(0)  # let every submit reach the queue
            await service.aclose()  # must drain the accepted requests
            return await asyncio.gather(*tasks), service.stats()

        results, stats = asyncio.run(drive())
        assert len(results) == 16
        assert stats.completed == 16
        assert stats.queue_depth == 0
        assert stats.in_flight == 0


class TestResultCache:
    """The bounded LRU of finished matrices (result_cache > 0)."""

    def submit_sequentially(self, service, specs):
        async def drive():
            results = []
            for spec in specs:
                results.append(await service.submit(spec))
            return results

        return drive()

    def test_repeat_specs_served_from_cache(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        spec = QuerySpec(op="matrix", window=WindowSpec(end=599, length=200))

        async def drive():
            async with TsubasaService(client, result_cache=8) as service:
                first = await service.submit(spec)
                second = await service.submit(spec)
                third = await service.submit(spec)
                return first, second, third, service.stats()

        first, second, third, stats = asyncio.run(drive())
        assert not first.provenance.cache
        assert second.provenance.cache and third.provenance.cache
        np.testing.assert_array_equal(first.value.values, second.value.values)
        np.testing.assert_array_equal(first.value.values, third.value.values)
        assert stats.matrices_computed == 1
        assert stats.result_cache_hits == 2
        assert stats.result_cache_misses == 1
        assert stats.result_cache_hit_rate == pytest.approx(2 / 3)

    def test_cache_shared_across_ops_via_matrix_key(self, sketch):
        """Different ops over the same window reuse one cached matrix."""
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        window = WindowSpec(end=599, length=200)
        specs = [
            QuerySpec(op="matrix", window=window),
            QuerySpec(op="network", window=window, theta=0.4),
            QuerySpec(op="top_k", window=window, k=3),
        ]

        async def drive():
            async with TsubasaService(client, result_cache=8) as service:
                results = await self.submit_sequentially(service, specs)
                return results, service.stats()

        results, stats = asyncio.run(drive())
        assert stats.matrices_computed == 1
        assert stats.result_cache_hits == 2
        assert [r.provenance.cache for r in results] == [False, True, True]

    def test_disabled_cache_recomputes(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        spec = QuerySpec(op="matrix", window=WindowSpec(end=599, length=200))

        async def drive():
            async with TsubasaService(client) as service:  # default: off
                await service.submit(spec)
                result = await service.submit(spec)
                return result, service.stats()

        result, stats = asyncio.run(drive())
        assert not result.provenance.cache
        assert stats.matrices_computed == 2
        assert stats.result_cache_hits == 0
        assert stats.result_cache_misses == 0

    def test_lru_bound_evicts_oldest(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        windows = [
            WindowSpec(first_window=i, n_windows=2) for i in range(4)
        ]
        specs = [QuerySpec(op="matrix", window=w) for w in windows]

        async def drive():
            async with TsubasaService(client, result_cache=2) as service:
                for spec in specs:  # fill: 0, 1 evicted by 2, 3
                    await service.submit(spec)
                evicted = await service.submit(specs[0])
                kept = await service.submit(specs[3])
                return evicted, kept, service.stats()

        evicted, kept, stats = asyncio.run(drive())
        assert not evicted.provenance.cache  # recomputed after eviction
        assert kept.provenance.cache
        assert stats.matrices_computed == 5

    def test_cached_results_match_fresh_store_queries(self, sketch, tmp_path):
        store = SqliteSketchStore(tmp_path / "cache.db")
        save_sketch(store, sketch)
        client = TsubasaClient(provider=StoreProvider(store, cache_windows=64))
        specs = overlapping_specs(24)

        async def drive():
            async with TsubasaService(client, result_cache=16) as service:
                results = await self.submit_sequentially(service, specs)
                return results, service.stats()

        results, stats = asyncio.run(drive())
        assert stats.result_cache_hits > 0
        serial = TsubasaClient(
            provider=StoreProvider(SqliteSketchStore(tmp_path / "cache.db"))
        )
        assert_identical_to_serial(results, serial, specs)

    def test_cached_execution_reports_no_provider_reads(self, sketch, tmp_path):
        store = SqliteSketchStore(tmp_path / "cache2.db")
        save_sketch(store, sketch)
        provider = StoreProvider(store, cache_windows=0)  # no record LRU
        client = TsubasaClient(provider=provider)
        spec = QuerySpec(op="matrix", window=WindowSpec(end=599, length=400))

        async def drive():
            async with TsubasaService(client, result_cache=4) as service:
                await service.submit(spec)
                reads_after_first = provider.windows_read
                result = await service.submit(spec)
                return result, reads_after_first, provider.windows_read

        result, before, after = asyncio.run(drive())
        assert result.provenance.cache
        assert after == before  # replay touched no window records
        assert result.provenance.cache_hits == 0
        assert result.provenance.cache_misses == 0

    def test_rejects_negative_capacity(self, sketch):
        client = TsubasaClient(provider=InMemoryProvider(sketch))
        from repro.exceptions import DataError

        with pytest.raises(DataError):
            TsubasaService(client, result_cache=-1)
