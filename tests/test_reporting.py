"""Tests for repro.analysis.reporting (text reports and ASCII maps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import (
    ascii_degree_map,
    dynamics_report,
    topology_report,
)
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.exceptions import DataError


def _network(values, names, coords=None, theta=0.5):
    matrix = CorrelationMatrix(names=names, values=np.asarray(values))
    return ClimateNetwork.from_matrix(matrix, theta, coordinates=coords)


@pytest.fixture()
def geo_network():
    names = ["nw", "ne", "sw", "se"]
    coords = {
        "nw": (45.0, -120.0),
        "ne": (45.0, -80.0),
        "sw": (30.0, -120.0),
        "se": (30.0, -80.0),
    }
    values = np.eye(4)
    values[0, 1] = values[1, 0] = 0.9
    values[0, 2] = values[2, 0] = 0.8
    values[0, 3] = values[3, 0] = 0.7
    return _network(values, names, coords)


class TestAsciiDegreeMap:
    def test_dimensions(self, geo_network):
        art = ascii_degree_map(geo_network, width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_north_up_and_intensity(self, geo_network):
        art = ascii_degree_map(geo_network, width=20, height=5)
        lines = art.split("\n")
        # nw (degree 3, max) renders as the top-left, highest intensity char.
        assert lines[0][0] == "@"
        # se (degree 1) is bottom-right with a lower intensity char.
        assert lines[-1][-1] not in (" ", "@")

    def test_empty_cells_blank(self, geo_network):
        art = ascii_degree_map(geo_network, width=20, height=5)
        assert " " in art

    def test_requires_coordinates(self):
        net = _network(np.eye(2), ["a", "b"])
        with pytest.raises(DataError):
            ascii_degree_map(net)

    def test_rejects_tiny_grid(self, geo_network):
        with pytest.raises(DataError):
            ascii_degree_map(geo_network, width=1, height=5)


class TestTopologyReport:
    def test_contains_key_lines(self, geo_network):
        report = topology_report(geo_network)
        assert "nodes              4" in report
        assert "edges              3" in report
        assert "hubs" in report
        assert "nw(3)" in report

    def test_edgeless_network_omits_hubs(self):
        net = _network(np.eye(3), ["a", "b", "c"])
        report = topology_report(net)
        assert "hubs" not in report
        assert "edges              0" in report


class TestDynamicsReport:
    def test_sparkline_and_counts(self):
        names = ["a", "b", "c"]

        def with_edges(pairs):
            values = np.eye(3)
            index = {n: i for i, n in enumerate(names)}
            for x, y in pairs:
                values[index[x], index[y]] = values[index[y], index[x]] = 0.9
            return _network(values, names)

        nets = [
            with_edges([("a", "b")]),
            with_edges([("a", "b"), ("b", "c")]),
            with_edges([]),
        ]
        report = dynamics_report(nets)
        assert "snapshots       3" in report
        assert "(max 2)" in report
        assert "mean churn" in report
