"""Pair partitioning for parallel TSUBASA (§3.4).

The all-pairs workload is split "similar to the parallel block nested loop
join": each partition is a group of *rows* of the correlation matrix — a
subset of series paired with all series. Exploiting symmetry, row ``i`` owns
the ``n - 1 - i`` pairs ``(i, j > i)``, so equal-row partitions would be
badly skewed; TSUBASA load-balances by assigning the same number of *pairs*
to each worker. We use a greedy longest-processing-time assignment over rows,
which keeps partitions contiguous in memory access while balancing pair
counts to within one row's weight.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

__all__ = ["row_pair_counts", "partition_rows", "partition_pair_counts"]


def row_pair_counts(n_series: int) -> np.ndarray:
    """Number of owned pairs per row under upper-triangle ownership."""
    if n_series <= 0:
        raise DataError("n_series must be positive")
    return np.arange(n_series - 1, -1, -1, dtype=np.int64)


def partition_rows(n_series: int, n_partitions: int) -> list[np.ndarray]:
    """Split rows into pair-count-balanced partitions (greedy LPT).

    Args:
        n_series: Number of series ``N``.
        n_partitions: Number of workers; capped at ``N``.

    Returns:
        A list of row-index arrays, one per (non-empty) partition. Every row
        appears in exactly one partition.
    """
    if n_partitions <= 0:
        raise DataError("n_partitions must be positive")
    n_partitions = min(n_partitions, n_series)
    weights = row_pair_counts(n_series)
    # Heaviest rows first; ties broken by row order for determinism.
    order = np.argsort(-weights, kind="stable")
    loads = np.zeros(n_partitions, dtype=np.int64)
    buckets: list[list[int]] = [[] for _ in range(n_partitions)]
    for row in order:
        target = int(np.argmin(loads))
        buckets[target].append(int(row))
        loads[target] += weights[row]
    return [np.array(sorted(bucket), dtype=np.int64) for bucket in buckets if bucket]


def partition_pair_counts(partitions: list[np.ndarray], n_series: int) -> list[int]:
    """Pairs owned by each partition (for balance assertions and reporting)."""
    weights = row_pair_counts(n_series)
    return [int(weights[part].sum()) for part in partitions]
