"""Parallel and disk-based TSUBASA execution (§3.4).

The paper's deployment: the pair workload is partitioned across *computation
workers*; one *database worker* owns all writes to the sketch database.
During sketching each computation worker sketches its partition and ships
batches to the database worker; during querying each worker reads the
sketches it needs straight from the database and emits a sub-matrix (a block
of rows) of the correlation matrix.

This module reproduces that architecture with ``multiprocessing`` (fork) and
the SQLite store standing in for PostgreSQL:

* :func:`parallel_sketch` — fan out per-partition sketch computation, funnel
  results through the single writer (the driver process plays the database
  worker), and report the calculation/write split of Fig. 6a.
* :func:`parallel_query` — fan out per-partition Lemma 1 row-block
  computation over **any** sketch provider and report the read/calculation
  split of Fig. 6b. No provider is materialized before fan-out; each backend
  has a native worker handoff instead:

  * mmap-backed providers hand workers the store *directory path* — each
    worker re-maps the arrays in its own process and reads its row block
    zero-copy through the OS page cache;
  * SQLite-backed providers (and the legacy ``store_path`` argument) hand
    workers the database path — each worker opens its own connection, as in
    §3.4;
  * every other provider (in-memory sketches, chunked builds, stores without
    a filesystem path) streams the selection's covariance tensor into one
    ``multiprocessing.shared_memory`` block that all workers attach to and
    slice — the tensor crosses the process boundary zero times instead of
    being pickled per worker.

``n_workers=1`` short-circuits to in-process execution (no fork, no shared
memory), which keeps tests deterministic and makes the worker functions
unit-testable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from pathlib import Path

import numpy as np

from repro.core.lemma1 import combine_rows
from repro.core.segmentation import BasicWindowPlan
from repro.core.sketch import Sketch
from repro.exceptions import DataError
from repro.parallel.partitioning import partition_rows
from repro.storage.base import SketchStore
from repro.storage.sqlite_store import SqliteSketchStore

__all__ = [
    "ParallelSketchResult",
    "ParallelQueryResult",
    "parallel_sketch",
    "parallel_query",
    "sketch_partition",
    "query_partition",
]

#: Windows per chunk when streaming a provider's selection into shared memory.
SHM_FILL_CHUNK_WINDOWS = 64

# Worker globals installed by the pool initializer (fork-safe, read-only).
_WORKER_DATA: np.ndarray | None = None
_WORKER_BOUNDS: np.ndarray | None = None
_WORKER_QUERY_SPEC: dict | None = None


def _init_sketch_worker(data: np.ndarray, bounds: np.ndarray) -> None:
    global _WORKER_DATA, _WORKER_BOUNDS
    _WORKER_DATA = data
    _WORKER_BOUNDS = bounds


def _init_query_worker(spec: dict) -> None:
    global _WORKER_QUERY_SPEC
    _WORKER_QUERY_SPEC = spec


def _attach_shared_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block without tracker side effects.

    On Python >= 3.13 ``track=False`` skips resource-tracker registration
    outright. Older versions register every attach, but the ``fork`` workers
    share the parent's tracker process, whose registry is a *set*: the
    duplicate registrations collapse and the parent's final ``unlink()``
    retires the name exactly once — so the plain attach is already balanced
    and must NOT be paired with a manual unregister.
    """
    try:  # Python >= 3.13
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name, create=False)


@dataclass
class ParallelSketchResult:
    """Outcome of a parallel sketch run.

    Attributes:
        sketch: The assembled full sketch.
        calc_seconds: Wall time of the parallel sketch-computation phase.
        write_seconds: Wall time spent writing records to the store.
        n_partitions: Number of partitions actually used.
    """

    sketch: Sketch
    calc_seconds: float
    write_seconds: float
    n_partitions: int

    @property
    def total_seconds(self) -> float:
        """Calculation plus write time (the stacked bars of Fig. 6a)."""
        return self.calc_seconds + self.write_seconds


@dataclass
class ParallelQueryResult:
    """Outcome of a parallel query run.

    Attributes:
        matrix: The assembled ``(n, n)`` correlation matrix.
        read_seconds: Store-read time of the slowest worker — the read
            component on the critical path. (Averaging reads across workers
            instead could exceed the measured wall time of a skewed run and
            push the derived calculation share negative.)
        calc_seconds: Wall time of the parallel matrix-calculation phase
            minus the read component.
        n_partitions: Number of partitions actually used.
        worker_read_seconds: Per-worker store-read times, in partition order.
    """

    matrix: np.ndarray
    read_seconds: float
    calc_seconds: float
    n_partitions: int
    worker_read_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Read plus calculation time (the stacked bars of Fig. 6b)."""
        return self.read_seconds + self.calc_seconds

    def as_matrix(self, names: list[str]):
        """The assembled result as a labeled correlation matrix.

        Convenience for callers (the declarative query client) that route a
        parallel run into the same post-processing operators as serial
        execution.
        """
        from repro.core.matrix import CorrelationMatrix

        return CorrelationMatrix(names=list(names), values=self.matrix)


def sketch_partition(
    rows: np.ndarray, data: np.ndarray, bounds: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sketch one row-partition: per-row window stats and cov row-blocks.

    Args:
        rows: Row indices owned by this partition.
        data: Full ``(n, L)`` series matrix.
        bounds: Basic window boundaries, shape ``(ns + 1,)``.

    Returns:
        ``(rows, means_rows, stds_rows, cov_blocks)`` where ``cov_blocks``
        has shape ``(ns, len(rows), n)`` — this partition's rows of every
        per-window covariance matrix.
    """
    sizes = np.diff(bounds)
    n_windows = sizes.size
    means = np.empty((rows.size, n_windows))
    stds = np.empty_like(means)
    blocks = np.empty((n_windows, rows.size, data.shape[0]))
    for j in range(n_windows):
        window = data[:, bounds[j] : bounds[j + 1]]
        centered = window - window.mean(axis=1, keepdims=True)
        means[:, j] = window[rows].mean(axis=1)
        stds[:, j] = window[rows].std(axis=1)
        blocks[j] = centered[rows] @ centered.T / sizes[j]
    return rows, means, stds, blocks


def _sketch_partition_task(rows: np.ndarray):
    assert _WORKER_DATA is not None and _WORKER_BOUNDS is not None
    return sketch_partition(rows, _WORKER_DATA, _WORKER_BOUNDS)


def parallel_sketch(
    data: np.ndarray,
    window_size: int,
    n_workers: int,
    store: SketchStore | None = None,
    store_path: str | Path | None = None,
    names: list[str] | None = None,
    batch_size: int = 16,
) -> ParallelSketchResult:
    """Sketch a collection with partitioned workers and one database writer.

    Args:
        data: ``(n, L)`` series matrix.
        window_size: Basic window size ``B``.
        n_workers: Computation workers (the paper reserves one extra core for
            the database worker; here the driver process plays that role).
        store: Open store to write to; mutually exclusive with ``store_path``.
        store_path: Path for a fresh SQLite store (closed before returning).
        names: Optional series identifiers.
        batch_size: Window records per database write batch.

    Returns:
        A :class:`ParallelSketchResult` with the assembled sketch and the
        calculation/write time split.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    if n_workers <= 0:
        raise DataError("n_workers must be positive")
    if store is not None and store_path is not None:
        raise DataError("give at most one of store / store_path")

    plan = BasicWindowPlan(length=matrix.shape[1], window_size=window_size)
    bounds = plan.boundaries
    partitions = partition_rows(matrix.shape[0], n_workers)

    start = time.perf_counter()
    if n_workers == 1 or len(partitions) == 1:
        results = [sketch_partition(rows, matrix, bounds) for rows in partitions]
    else:
        ctx = get_context("fork")
        with ctx.Pool(
            processes=len(partitions),
            initializer=_init_sketch_worker,
            initargs=(matrix, bounds),
        ) as pool:
            results = pool.map(_sketch_partition_task, partitions)
    calc_seconds = time.perf_counter() - start

    # Assemble the full sketch from the partition row-blocks.
    n = matrix.shape[0]
    n_windows = bounds.size - 1
    means = np.empty((n, n_windows))
    stds = np.empty_like(means)
    covs = np.empty((n_windows, n, n))
    for rows, p_means, p_stds, p_blocks in results:
        means[rows] = p_means
        stds[rows] = p_stds
        covs[:, rows, :] = p_blocks
    # Symmetrize: each partition computed full rows, so covs is already
    # complete; enforce exact symmetry against fp noise from block order.
    covs = 0.5 * (covs + covs.transpose(0, 2, 1))

    if names is None:
        names = [f"s{i:04d}" for i in range(n)]
    sketch = Sketch(
        names=list(names),
        window_size=window_size,
        means=means,
        stds=stds,
        covs=covs,
        sizes=np.diff(bounds),
    )

    write_seconds = 0.0
    owned_store = None
    try:
        target = store
        if store_path is not None:
            owned_store = SqliteSketchStore(store_path)
            target = owned_store
        if target is not None:
            from repro.storage.serialize import save_sketch

            start = time.perf_counter()
            save_sketch(target, sketch, batch_size=batch_size)
            write_seconds = time.perf_counter() - start
    finally:
        if owned_store is not None:
            owned_store.close()

    return ParallelSketchResult(
        sketch=sketch,
        calc_seconds=calc_seconds,
        write_seconds=write_seconds,
        n_partitions=len(partitions),
    )


def query_partition(
    rows: np.ndarray,
    window_indices: np.ndarray,
    sketch: Sketch | None,
    store_path: str | None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Compute one row-block of the Lemma 1 correlation matrix.

    Reads the needed window records from the store when ``store_path`` is
    given (disk-based mode) or slices the in-memory sketch otherwise.

    Args:
        rows: Row indices owned by this partition.
        window_indices: Basic windows forming the query window.
        sketch: In-memory sketch (in-memory mode).
        store_path: SQLite store path (disk-based mode).

    Returns:
        ``(rows, block, read_seconds)`` where ``block`` is the
        ``(len(rows), n)`` correlation slab.
    """
    if store_path is not None:
        return _run_query_partition(
            np.asarray(rows, dtype=np.int64),
            np.asarray(window_indices, dtype=np.int64),
            {"mode": "sqlite", "path": str(store_path)},
        )
    if sketch is None:
        raise DataError("either sketch or store_path must be provided")
    rows = np.asarray(rows, dtype=np.int64)
    idx = np.asarray(window_indices, dtype=np.int64)
    block = combine_rows(
        sketch.means[:, idx],
        sketch.stds[:, idx],
        sketch.covs[idx][:, rows, :],
        sketch.sizes[idx].astype(np.float64),
        rows,
    )
    return rows, block, 0.0


def _provider_partition(
    rows: np.ndarray, window_indices: np.ndarray, provider
) -> tuple[np.ndarray, np.ndarray, float]:
    """One row-block computed straight off a provider (in-process mode)."""
    from repro.engine.providers import InMemoryProvider

    rows = np.asarray(rows, dtype=np.int64)
    idx = np.asarray(window_indices, dtype=np.int64)
    start = time.perf_counter()
    means, stds, sizes = provider.window_stats(idx)
    cov_block = provider.cov_rows(idx, rows)
    read_seconds = time.perf_counter() - start
    if isinstance(provider, InMemoryProvider):
        # Pure array slicing is calculation, not a read phase: keep the
        # Fig. 6b split consistent with the multi-worker shared-memory path,
        # which also reports zero reads for in-memory backends.
        read_seconds = 0.0
    block = combine_rows(means, stds, cov_block, sizes, rows)
    return rows, block, read_seconds


def _run_query_partition(
    rows: np.ndarray, window_indices: np.ndarray, spec: dict
) -> tuple[np.ndarray, np.ndarray, float]:
    """Compute one row-block through a backend handoff spec.

    ``spec["mode"]`` selects the worker-side read path:

    * ``"sqlite"`` — open an own connection to ``spec["path"]`` and read the
      selected window records;
    * ``"mmap"`` — re-map the store directory at ``spec["path"]`` and read
      this partition's covariance rows zero-copy;
    * ``"shm"`` — attach the parent's shared-memory covariance block and
      slice it (no store I/O; the selection's statistics ride in the spec).
    """
    rows = np.asarray(rows, dtype=np.int64)
    mode = spec["mode"]
    if mode == "sqlite":
        start = time.perf_counter()
        with SqliteSketchStore(spec["path"]) as store:
            from repro.storage.serialize import load_sketch

            sketch = load_sketch(store, indices=[int(j) for j in window_indices])
        read_seconds = time.perf_counter() - start
        # load_sketch already restricted the sketch to the selection, in
        # order; gather only this partition's rows of the tensor.
        block = combine_rows(
            sketch.means,
            sketch.stds,
            sketch.covs[:, rows, :],
            sketch.sizes.astype(np.float64),
            rows,
        )
        return rows, block, read_seconds
    if mode == "mmap":
        from repro.engine.providers import MmapProvider

        start = time.perf_counter()
        provider = MmapProvider(spec["path"])
        map_seconds = time.perf_counter() - start
        # The provider's row-gather is the worker's only read of the pairs
        # file: it faults in exactly this partition's rows of the selection.
        rows, block, read_seconds = _provider_partition(
            rows, window_indices, provider
        )
        return rows, block, map_seconds + read_seconds
    if mode == "shm":
        block_shm = _attach_shared_block(spec["shm_name"])
        try:
            covs = np.ndarray(
                spec["covs_shape"], dtype=np.float64, buffer=block_shm.buf
            )
            result = combine_rows(
                spec["means"], spec["stds"], covs[:, rows, :], spec["sizes"], rows
            )
        finally:
            del covs
            block_shm.close()
        return rows, result, 0.0
    raise DataError(f"unknown query partition mode {mode!r}")


def _query_partition_task(args):
    rows, window_indices = args
    assert _WORKER_QUERY_SPEC is not None
    return _run_query_partition(rows, window_indices, _WORKER_QUERY_SPEC)


def _fill_shared_covs(
    provider, window_indices: np.ndarray, n_series: int
) -> tuple[shared_memory.SharedMemory, tuple[int, int, int]]:
    """Stream a provider's selected covariances into a shared-memory block.

    One chunked pass over the provider — the selection tensor is written
    directly into the OS shared segment, never materialized as a
    :class:`Sketch` and never pickled to the workers.
    """
    k = int(window_indices.size)
    shape = (k, n_series, n_series)
    nbytes = max(8 * k * n_series * n_series, 1)
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        covs = np.ndarray(shape, dtype=np.float64, buffer=block.buf)
        offset = 0
        for chunk in provider.iter_cov_chunks(window_indices, SHM_FILL_CHUNK_WINDOWS):
            covs[offset : offset + chunk.shape[0]] = chunk
            offset += chunk.shape[0]
        del covs
    except BaseException:
        block.close()
        block.unlink()
        raise
    return block, shape


def parallel_query(
    window_indices: np.ndarray,
    n_workers: int,
    sketch: Sketch | None = None,
    store_path: str | Path | None = None,
    n_series: int | None = None,
    provider=None,
) -> ParallelQueryResult:
    """All-pairs Lemma 1 query with partitioned workers, over any backend.

    Args:
        window_indices: Basic windows forming the (aligned) query window.
        n_workers: Computation workers.
        sketch: In-memory sketch (fans out through shared memory).
        store_path: SQLite store path (disk-based mode; workers read their
            own sketches, as in §3.4).
        n_series: Required in disk-based mode without a sketch.
        provider: Any :class:`~repro.engine.providers.SketchProvider`
            backend, mutually exclusive with ``sketch``/``store_path``.
            Mmap-backed providers hand workers the store directory (each
            worker re-maps, zero-copy); SQLite-backed providers hand workers
            the database path (own connections); every other backend streams
            the selection's covariances into a ``multiprocessing``
            shared-memory block that workers slice — nothing is materialized
            into a :class:`Sketch` or pickled before fan-out.

    Returns:
        A :class:`ParallelQueryResult` with the full matrix and read/calc
        split.
    """
    window_indices = np.asarray(window_indices, dtype=np.int64)
    if provider is not None and (sketch is not None or store_path is not None):
        raise DataError("give either a provider or sketch/store_path, not both")
    if sketch is not None and store_path is not None:
        # Ambiguous: the two sources could hold different sketches and the
        # answering backend must not depend on the worker count.
        raise DataError("give either sketch or store_path, not both")
    if sketch is not None:
        from repro.engine.providers import InMemoryProvider

        provider = InMemoryProvider(sketch)
    if provider is None and store_path is None:
        raise DataError("either sketch, store_path, or provider must be provided")
    if n_workers <= 0:
        raise DataError("n_workers must be positive")

    spec: dict | None = None
    task_indices = window_indices
    if store_path is not None:
        if n_series is None:
            with SqliteSketchStore(store_path) as store:
                n_series = len(store.read_metadata().names)
        spec = {"mode": "sqlite", "path": str(store_path)}
    else:
        from repro.engine.providers import (
            MmapProvider,
            PrefixProvider,
            StoreProvider,
        )
        from repro.storage.mmap_store import MmapStore

        if isinstance(provider, PrefixProvider):
            # Workers compute row blocks from window records; the wrapper's
            # prefix tables are irrelevant to them, and unwrapping restores
            # the wrapped backend's path handoff (mmap re-map / own SQLite
            # connections) instead of the generic shared-memory ship.
            provider = provider.base
        n_series = provider.n_series
        if isinstance(provider, MmapProvider):
            spec = {"mode": "mmap", "path": provider.path}
        elif isinstance(provider, StoreProvider):
            # The handoff must match the store *kind*, not just the presence
            # of a .path — both SQLite files and mmap directories expose one.
            if isinstance(provider.store, MmapStore):
                spec = {"mode": "mmap", "path": provider.store.path}
            elif (
                isinstance(provider.store, SqliteSketchStore)
                and provider.store.path is not None
            ):
                spec = {"mode": "sqlite", "path": provider.store.path}

    partitions = partition_rows(n_series, n_workers)
    serial = n_workers == 1 or len(partitions) == 1

    shm_block: shared_memory.SharedMemory | None = None
    try:
        if spec is None and not serial:
            # Shared-memory fan-out: one streaming pass into the segment.
            means, stds, sizes = provider.window_stats(window_indices)
            shm_block, covs_shape = _fill_shared_covs(
                provider, window_indices, n_series
            )
            spec = {
                "mode": "shm",
                "shm_name": shm_block.name,
                "covs_shape": covs_shape,
                "means": np.ascontiguousarray(means),
                "stds": np.ascontiguousarray(stds),
                "sizes": np.asarray(sizes, dtype=np.float64),
            }
            task_indices = np.arange(window_indices.size, dtype=np.int64)

        start = time.perf_counter()
        if serial:
            if provider is not None:
                # In-process, use the provider in hand (its open maps, LRU
                # cache) rather than re-opening the store through the spec.
                results = [
                    _provider_partition(rows, task_indices, provider)
                    for rows in partitions
                ]
            else:
                results = [
                    _run_query_partition(rows, task_indices, spec)
                    for rows in partitions
                ]
        else:
            ctx = get_context("fork")
            tasks = [(rows, task_indices) for rows in partitions]
            with ctx.Pool(
                processes=len(partitions),
                initializer=_init_query_worker,
                initargs=(spec,),
            ) as pool:
                results = pool.map(_query_partition_task, tasks)
        wall = time.perf_counter() - start
    finally:
        if shm_block is not None:
            shm_block.close()
            shm_block.unlink()

    matrix = np.empty((n_series, n_series))
    worker_reads: list[float] = []
    for rows, block, read_time in results:
        matrix[rows] = block
        worker_reads.append(read_time)
    matrix = 0.5 * (matrix + matrix.T)
    np.fill_diagonal(matrix, 1.0)
    # The read phase on the critical path is the slowest worker's read:
    # workers read concurrently, so wall time is bounded below by the max,
    # and wall - max is a non-negative calculation share by construction
    # (averaging instead could exceed wall under read skew and clamp to 0).
    max_read = max(worker_reads, default=0.0)
    return ParallelQueryResult(
        matrix=matrix,
        read_seconds=max_read,
        calc_seconds=max(wall - max_read, 0.0),
        n_partitions=len(partitions),
        worker_read_seconds=worker_reads,
    )
