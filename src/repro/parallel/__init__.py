"""Parallel and disk-based TSUBASA execution (§3.4)."""

from repro.parallel.executor import (
    ParallelQueryResult,
    ParallelSketchResult,
    parallel_query,
    parallel_sketch,
    query_partition,
    sketch_partition,
)
from repro.parallel.partitioning import (
    partition_pair_counts,
    partition_rows,
    row_pair_counts,
)

__all__ = [
    "ParallelQueryResult",
    "ParallelSketchResult",
    "parallel_query",
    "parallel_sketch",
    "query_partition",
    "sketch_partition",
    "partition_pair_counts",
    "partition_rows",
    "row_pair_counts",
]
