"""Sketch ↔ store conversion (the disk-based deployment's read/write path).

These helpers move whole sketches between the array-of-windows layout that
the query engines consume (:class:`~repro.core.sketch.Sketch`,
:class:`~repro.approx.sketch.ApproxSketch`) and the per-window records that
:class:`~repro.storage.base.SketchStore` persists. Writes are batched
(``batch_size`` windows per store call) to mirror the paper's batched
database writes; reads can select only the windows a query needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.sketch import Sketch
from repro.exceptions import StorageError
from repro.storage.base import SketchStore, StoreMetadata, WindowRecord

if TYPE_CHECKING:
    from repro.approx.sketch import ApproxSketch

__all__ = [
    "save_sketch",
    "load_sketch",
    "save_approx_sketch",
    "load_approx_sketch",
    "convert_store",
]


def _window_records(
    means: np.ndarray, stds: np.ndarray, pairs: np.ndarray, sizes: np.ndarray
) -> list[WindowRecord]:
    return [
        WindowRecord(
            index=j,
            means=means[:, j].copy(),
            stds=stds[:, j].copy(),
            pairs=pairs[j].copy(),
            size=int(sizes[j]),
        )
        for j in range(sizes.size)
    ]


def _write_batched(
    store: SketchStore, records: list[WindowRecord], batch_size: int
) -> None:
    if batch_size <= 0:
        raise StorageError("batch_size must be positive")
    for start in range(0, len(records), batch_size):
        store.write_windows(records[start : start + batch_size])


def _read_all(
    store: SketchStore, indices: list[int] | None
) -> tuple[StoreMetadata, list[WindowRecord]]:
    metadata = store.read_metadata()
    if indices is None:
        indices = list(range(store.window_count()))
    records = store.read_windows(indices)
    if not records:
        raise StorageError("no window records selected")
    return metadata, records


def _stack(records: list[WindowRecord]) -> tuple[np.ndarray, ...]:
    means = np.stack([r.means for r in records], axis=1)
    stds = np.stack([r.stds for r in records], axis=1)
    pairs = np.stack([r.pairs for r in records], axis=0)
    sizes = np.array([r.size for r in records], dtype=np.int64)
    return means, stds, pairs, sizes


def save_sketch(store: SketchStore, sketch: Sketch, batch_size: int = 64) -> None:
    """Persist an exact sketch (metadata + all window records)."""
    store.write_metadata(
        StoreMetadata(
            names=tuple(sketch.names),
            window_size=sketch.window_size,
            kind="exact",
        )
    )
    records = _window_records(sketch.means, sketch.stds, sketch.covs, sketch.sizes)
    _write_batched(store, records, batch_size)


def load_sketch(store: SketchStore, indices: list[int] | None = None) -> Sketch:
    """Load an exact sketch (optionally only selected windows)."""
    metadata, records = _read_all(store, indices)
    if metadata.kind != "exact":
        raise StorageError(
            f"store holds a {metadata.kind!r} sketch, expected 'exact'"
        )
    means, stds, pairs, sizes = _stack(records)
    return Sketch(
        names=list(metadata.names),
        window_size=metadata.window_size,
        means=means,
        stds=stds,
        covs=pairs,
        sizes=sizes,
    )


def convert_store(
    src: SketchStore, dst: SketchStore, batch_size: int = 64
) -> int:
    """Migrate a sketch store between backends, one record batch at a time.

    Streams metadata plus every window record from ``src`` into ``dst``
    (e.g. SQLite → mmap for the zero-copy read path, or back) without ever
    holding more than ``batch_size`` records in memory. Window indices are
    assumed contiguous from 0, which both shipped backends guarantee for
    complete sketches. The destination must be empty: neither backend
    deletes records, so converting over a larger existing store would leave
    stale windows beyond ``src``'s count and silently mix two sketches.

    Returns:
        The number of window records migrated.
    """
    if batch_size <= 0:
        raise StorageError("batch_size must be positive")
    existing = dst.window_count()
    if existing > 0:
        raise StorageError(
            f"destination store already holds {existing} window records; "
            "convert into a fresh store"
        )
    dst.write_metadata(src.read_metadata())
    count = src.window_count()
    for start in range(0, count, batch_size):
        indices = list(range(start, min(start + batch_size, count)))
        dst.write_windows(src.read_windows(indices))
    return count


def save_approx_sketch(
    store: SketchStore, sketch: ApproxSketch, batch_size: int = 64
) -> None:
    """Persist an approximate (DFT) sketch."""
    store.write_metadata(
        StoreMetadata(
            names=tuple(sketch.names),
            window_size=sketch.window_size,
            kind="approx",
            n_coeffs=sketch.n_coeffs,
        )
    )
    records = _window_records(
        sketch.means, sketch.stds, sketch.dists_sq, sketch.sizes
    )
    _write_batched(store, records, batch_size)


def load_approx_sketch(
    store: SketchStore, indices: list[int] | None = None
) -> "ApproxSketch":
    """Load an approximate sketch (optionally only selected windows)."""
    from repro.approx.sketch import ApproxSketch

    metadata, records = _read_all(store, indices)
    if metadata.kind != "approx":
        raise StorageError(
            f"store holds a {metadata.kind!r} sketch, expected 'approx'"
        )
    means, stds, pairs, sizes = _stack(records)
    return ApproxSketch(
        names=list(metadata.names),
        window_size=metadata.window_size,
        n_coeffs=metadata.n_coeffs,
        means=means,
        stds=stds,
        dists_sq=pairs,
        sizes=sizes,
    )
