"""Disk-based sketch store on SQLite (PostgreSQL substitute, §3.4).

The paper stores sketches in PostgreSQL; this offline environment has no
database server, so we use the standard library's ``sqlite3`` behind the same
:class:`~repro.storage.base.SketchStore` interface. The deployment shape is
preserved: sketches are written in batches by a dedicated database worker at
ingestion time, read back in batches at query time, and the database file's
size is the space-overhead measure of Fig. 6d.

Schema::

    meta(key TEXT PRIMARY KEY, value TEXT)              -- names, B, kind
    windows(idx INTEGER PRIMARY KEY, size INTEGER,
            means BLOB, stds BLOB, pairs BLOB)          -- float64 arrays

Arrays are stored as raw little-endian float64 blobs; the pair matrix is
stored as its upper triangle (including the diagonal) since both covariance
and distance matrices are symmetric — the same halving the paper applies to
its ``N * (N - 1) / 2`` pair statistics.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.storage.base import SketchStore, StoreMetadata, WindowRecord

__all__ = ["SqliteSketchStore"]

#: Maximum window indices per ``WHERE idx IN (...)`` clause. SQLite's default
#: bound-variable limit is 999 (SQLITE_MAX_VARIABLE_NUMBER); staying well
#: under it keeps one prepared statement per few hundred records instead of
#: one per record.
_IN_CLAUSE_LIMIT = 500


def _pack_symmetric(matrix: np.ndarray) -> bytes:
    n = matrix.shape[0]
    return np.ascontiguousarray(matrix[np.triu_indices(n)], dtype="<f8").tobytes()


def _unpack_symmetric(blob: bytes, n: int) -> np.ndarray:
    if len(blob) % 8 != 0:
        raise StorageError(
            f"corrupt pair blob: {len(blob)} bytes is not a whole number of "
            "float64 values"
        )
    flat = np.frombuffer(blob, dtype="<f8")
    expected = n * (n + 1) // 2
    if flat.size != expected:
        raise StorageError(
            f"corrupt pair blob: {flat.size} values, expected {expected}"
        )
    matrix = np.zeros((n, n))
    upper = np.triu_indices(n)
    matrix[upper] = flat
    matrix.T[upper] = flat
    return matrix


class SqliteSketchStore(SketchStore):
    """SQLite-backed sketch store.

    Args:
        path: Database file path; created if absent. ``":memory:"`` gives an
            ephemeral store useful in tests.

    The connection is opened with ``check_same_thread=False`` so a store
    handle may move between threads — the async query service computes
    matrices on an executor thread while the handle was opened on the main
    one. Access must still be *serialized* (sqlite3 objects are not
    concurrency-safe); the service guarantees that by running store-backed
    computations on a single executor thread.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = str(path)
        try:
            self._conn = sqlite3.connect(self._path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open sketch database {path}: {exc}") from exc
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS windows ("
            "idx INTEGER PRIMARY KEY, size INTEGER NOT NULL, "
            "means BLOB NOT NULL, stds BLOB NOT NULL, pairs BLOB NOT NULL)"
        )
        self._conn.commit()

    @property
    def path(self) -> str | None:
        """Database file path; ``None`` for ephemeral ``":memory:"`` stores.

        A real path means other processes (the parallel executor's workers)
        can open their own connections to the same sketch database.
        """
        return None if self._path == ":memory:" else self._path

    def write_metadata(self, metadata: StoreMetadata) -> None:
        payload = json.dumps(
            {
                "names": list(metadata.names),
                "window_size": metadata.window_size,
                "kind": metadata.kind,
                "n_coeffs": metadata.n_coeffs,
            }
        )
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('collection', ?)",
                (payload,),
            )

    def read_metadata(self) -> StoreMetadata:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'collection'"
        ).fetchone()
        if row is None:
            raise StorageError(f"no metadata in sketch database {self._path}")
        payload = json.loads(row[0])
        return StoreMetadata(
            names=tuple(payload["names"]),
            window_size=int(payload["window_size"]),
            kind=payload["kind"],
            n_coeffs=int(payload["n_coeffs"]),
        )

    def write_windows(self, records: list[WindowRecord]) -> None:
        rows = [
            (
                record.index,
                record.size,
                np.ascontiguousarray(record.means, dtype="<f8").tobytes(),
                np.ascontiguousarray(record.stds, dtype="<f8").tobytes(),
                _pack_symmetric(np.asarray(record.pairs, dtype=np.float64)),
            )
            for record in records
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO windows (idx, size, means, stds, pairs) "
                "VALUES (?, ?, ?, ?, ?)",
                rows,
            )

    def read_windows(self, indices: list[int]) -> list[WindowRecord]:
        # One batched SELECT per _IN_CLAUSE_LIMIT distinct indices instead of
        # one statement per record (the §3.4 batched reads); the requested
        # order — including duplicates — is restored from the fetched map.
        wanted = [int(index) for index in indices]
        unique = list(dict.fromkeys(wanted))
        fetched: dict[int, WindowRecord] = {}
        for start in range(0, len(unique), _IN_CLAUSE_LIMIT):
            chunk = unique[start : start + _IN_CLAUSE_LIMIT]
            placeholders = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                "SELECT idx, size, means, stds, pairs FROM windows "
                f"WHERE idx IN ({placeholders})",
                chunk,
            ).fetchall()
            for idx, size, means_blob, stds_blob, pairs_blob in rows:
                means = np.frombuffer(means_blob, dtype="<f8")
                fetched[int(idx)] = WindowRecord(
                    index=int(idx),
                    means=means,
                    stds=np.frombuffer(stds_blob, dtype="<f8"),
                    pairs=_unpack_symmetric(pairs_blob, means.size),
                    size=int(size),
                )
        missing = [index for index in unique if index not in fetched]
        if missing:
            raise StorageError(
                f"window record {missing[0]} missing from store"
            )
        return [fetched[index] for index in wanted]

    def window_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM windows").fetchone()[0])

    def size_bytes(self) -> int:
        if self._path == ":memory:":
            page_count = self._conn.execute("PRAGMA page_count").fetchone()[0]
            page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
            return int(page_count) * int(page_size)
        self._conn.commit()
        return Path(self._path).stat().st_size

    def close(self) -> None:
        self._conn.close()
