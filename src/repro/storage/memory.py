"""In-memory sketch store (the paper's in-memory configuration, §4.2)."""

from __future__ import annotations

import sys

import numpy as np

from repro.exceptions import StorageError
from repro.storage.base import SketchStore, StoreMetadata, WindowRecord

__all__ = ["MemorySketchStore"]


class MemorySketchStore(SketchStore):
    """Dictionary-backed store used for in-memory experiments and tests."""

    def __init__(self) -> None:
        self._metadata: StoreMetadata | None = None
        self._records: dict[int, WindowRecord] = {}

    def write_metadata(self, metadata: StoreMetadata) -> None:
        self._metadata = metadata

    def read_metadata(self) -> StoreMetadata:
        if self._metadata is None:
            raise StorageError("no metadata written to this store")
        return self._metadata

    def write_windows(self, records: list[WindowRecord]) -> None:
        for record in records:
            self._records[record.index] = record

    def read_windows(self, indices: list[int]) -> list[WindowRecord]:
        missing = [i for i in indices if i not in self._records]
        if missing:
            raise StorageError(f"window records missing from store: {missing}")
        return [self._records[i] for i in indices]

    def window_count(self) -> int:
        return len(self._records)

    def size_bytes(self) -> int:
        total = 0
        for record in self._records.values():
            total += record.means.nbytes + record.stds.nbytes + record.pairs.nbytes
            total += sys.getsizeof(record.index) + sys.getsizeof(record.size)
        return total
