"""Durable real-time operation: persist sketches as the stream flows.

The paper's architecture (Fig. 3) sketches newly ingested basic windows "on
the fly"; a production deployment also needs those sketches *persisted* so
that (a) a crashed consumer can warm-start from disk and (b) historical
queries over the already-streamed past stay answerable. This module couples
a :class:`~repro.core.realtime.TsubasaRealtime` engine with a
:class:`~repro.storage.base.SketchStore`: every completed basic window is
appended to the store as it is folded into the sliding network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.realtime import TsubasaRealtime

if TYPE_CHECKING:
    from repro.core.matrix import CorrelationMatrix
    from repro.core.network import ClimateNetwork
from repro.core.sketch import build_sketch
from repro.exceptions import StreamError
from repro.storage.base import SketchStore, StoreMetadata, WindowRecord
from repro.storage.serialize import save_sketch

__all__ = ["PersistentRealtime"]


class PersistentRealtime:
    """A real-time engine whose sketches are durably appended to a store.

    Args:
        engine: The wrapped real-time engine.
        store: Open sketch store; receives the initial window's sketch on
            construction and one record per completed basic window after.
    """

    def __init__(self, engine: TsubasaRealtime, store: SketchStore) -> None:
        self._engine = engine
        self._store = store
        self._next_index = self._bootstrap()

    def _bootstrap(self) -> int:
        """Ensure store metadata exists and matches; return the next index."""
        from repro.exceptions import StorageError

        try:
            metadata = self._store.read_metadata()
        except StorageError:
            self._store.write_metadata(
                StoreMetadata(
                    names=tuple(self._engine.names),
                    window_size=self._engine.window_size,
                    kind="exact",
                )
            )
        else:
            if list(metadata.names) != list(self._engine.names):
                raise StreamError(
                    "store metadata names do not match the engine's series"
                )
            if metadata.window_size != self._engine.window_size:
                raise StreamError(
                    f"store window size {metadata.window_size} != engine's "
                    f"{self._engine.window_size}"
                )
        return self._store.window_count()

    @property
    def engine(self) -> TsubasaRealtime:
        """The wrapped real-time engine."""
        return self._engine

    @property
    def windows_persisted(self) -> int:
        """Number of window records currently in the store."""
        return self._store.window_count()

    @classmethod
    def bootstrap(
        cls,
        initial_data: np.ndarray,
        window_size: int,
        store: SketchStore,
        names: list[str] | None = None,
    ) -> "PersistentRealtime":
        """Create engine + store together, persisting the seed windows.

        Args:
            initial_data: ``(n, m)`` seed matrix (``m`` a multiple of ``B``).
            window_size: Basic window size ``B``.
            store: Open, *empty* sketch store.
            names: Optional series identifiers.

        Returns:
            A ready :class:`PersistentRealtime` with the seed persisted.
        """
        engine = TsubasaRealtime(initial_data, window_size, names=names)
        seed = build_sketch(initial_data, window_size, names=names)
        save_sketch(store, seed)
        return cls(engine, store)

    @classmethod
    def resume(cls, store: SketchStore, query_windows: int) -> "PersistentRealtime":
        """Warm-start from a store written by a previous process.

        Only the trailing ``query_windows`` records are read back — resuming
        off a store holding a long history stays cheap.

        Args:
            store: Store holding the persisted sketches.
            query_windows: Query window length in basic windows; the engine
                resumes over the store's trailing ``query_windows`` records.

        Returns:
            A :class:`PersistentRealtime` whose network state equals the one
            the previous process would have had (tested).
        """
        from repro.engine.providers import StoreProvider

        provider = StoreProvider(store, cache_windows=0)
        if query_windows > provider.n_windows:
            raise StreamError(
                f"store holds {provider.n_windows} windows, cannot resume a "
                f"{query_windows}-window query"
            )
        engine = TsubasaRealtime.from_provider(provider, query_windows)
        return cls(engine, store)

    def ingest(self, values: np.ndarray) -> int:
        """Ingest a batch; every completed window is persisted then slid.

        Returns:
            Number of basic windows completed by this batch.
        """
        batch = np.asarray(values, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[:, None]
        # Reconstruct the raw blocks the engine will fold, so the persisted
        # records match exactly what entered the sliding state.
        pending = np.concatenate([self._pending_buffer(), batch], axis=1)
        window_size = self._engine.window_size
        n_complete = pending.shape[1] // window_size
        records = []
        for j in range(n_complete):
            block = pending[:, j * window_size : (j + 1) * window_size]
            mean = block.mean(axis=1)
            centered = block - mean[:, None]
            records.append(
                WindowRecord(
                    index=self._next_index + j,
                    means=mean,
                    stds=block.std(axis=1),
                    pairs=centered @ centered.T / window_size,
                    size=window_size,
                )
            )
        if records:
            self._store.write_windows(records)
            self._next_index += len(records)
        return self._engine.ingest(batch)

    def _pending_buffer(self) -> np.ndarray:
        return self._engine._buffer  # shared internal, same package

    def network(self, theta: float) -> "ClimateNetwork":
        """Current climate network (delegates to the engine)."""
        return self._engine.network(theta)

    def correlation_matrix(self) -> "CorrelationMatrix":
        """Current correlation matrix (delegates to the engine)."""
        return self._engine.correlation_matrix()
