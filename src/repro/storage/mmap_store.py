"""Zero-copy memory-mapped sketch store (the disk deployment's fast path).

The SQLite store pays a per-record cost at read time: every window record is
``SELECT``-ed, its blobs are copied out of the database pages, and the packed
upper-triangle pair matrix is re-inflated into a fresh ``(n, n)`` array. For
a read-mostly sketch (the paper's historical deployment: write once at
ingestion, query forever) none of that work is necessary — the sketch is just
four fixed-shape numeric arrays.

:class:`MmapStore` therefore lays the window records out as contiguous
little-endian arrays in a directory::

    meta.json     -- JSON sidecar: layout version, n_series, collection meta
    means.f64     -- float64, shape (n_windows, n)
    stds.f64      -- float64, shape (n_windows, n)
    pairs.f64     -- float64, shape (n_windows, n, n)
    sizes.i64     -- int64,   shape (n_windows,)   (0 marks an unwritten slot)

Reads are served straight from read-only ``numpy.memmap`` views: no SQL, no
blob copies, no per-record deserialization — the OS page cache is the read
buffer, and a query touches exactly the bytes it consumes. The dedicated
:class:`~repro.engine.providers.MmapProvider` slices these arrays directly
into the Lemma 1 kernels; :class:`MmapStore` also implements the full
:class:`~repro.storage.base.SketchStore` contract so every generic code path
(``save_sketch``, ``StoreProvider``, ``tsubasa convert``) runs unchanged.
"""

from __future__ import annotations

import json
import mmap
import os
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import StorageError
from repro.storage.base import SketchStore, StoreMetadata, WindowRecord

if TYPE_CHECKING:
    from repro.core.prefix import PrefixAggregates

__all__ = ["MmapStore", "is_mmap_store"]

_FORMAT_VERSION = 1
_META_FILE = "meta.json"
_ARRAY_FILES = {
    "means": "means.f64",
    "stds": "stds.f64",
    "pairs": "pairs.f64",
    "sizes": "sizes.i64",
}
#: Optional prefix-aggregate tables (see :mod:`repro.core.prefix`): row ``k``
#: holds cumulative offset-centered Lemma 1 moments over windows ``[0, k)``,
#: so a contiguous range query is two row reads and a subtraction. ``rows``
#: in the sidecar's ``prefix`` entry counts the committed rows; everything
#: past it is stale or unwritten.
_PREFIX_FILES = {
    "prefix_offsets": "prefix_offsets.f64",
    "prefix_count": "prefix_count.f64",
    "prefix_first": "prefix_first.f64",
    "prefix_second": "prefix_second.f64",
    "prefix_cross": "prefix_cross.f64",
}


def is_mmap_store(path: str | Path) -> bool:
    """Whether ``path`` looks like an :class:`MmapStore` directory."""
    return (Path(path) / _META_FILE).is_file()


class MmapStore(SketchStore):
    """Sketch store over contiguous memory-mapped arrays.

    Args:
        path: Store directory; created (with parents) unless opened
            read-only.
        mode: ``"r+"`` (default) opens for reading and writing, creating the
            directory if needed; ``"r"`` opens an existing store read-only —
            the mode parallel query workers use to re-map a shared store.

    The number of series is fixed by the first metadata or window write and
    enforced thereafter. Window slots are committed sizes-last, so a record
    with ``sizes[j] == 0`` (the unwritten sentinel; real windows are never
    empty) is reported missing rather than returned half-written.

    **Durability and concurrent readers.** Every commit (a ``write_windows``
    batch or a metadata write) runs behind an fsync barrier: the touched
    data pages are msync'ed and the JSON sidecar is replaced atomically
    (write to a temp file, fsync, rename, fsync the directory). A
    monotonically increasing *generation counter* in ``meta.json`` brackets
    each batch seqlock-style: it is bumped to an **odd** value before the
    first data byte is written and back to **even** once the batch (and its
    sizes) are durable. A reader in another process detects a mid-write
    store by sampling :meth:`read_generation` around its reads — an odd
    sample means a write is in progress, and a changed sample means a
    writer overlapped the read (either way the read may be torn and should
    be retried)::

        g0 = store.read_generation()
        records = store.read_windows(indices)
        if g0 % 2 == 1 or store.read_generation() != g0:
            ...  # concurrent write; retry
    """

    def __init__(self, path: str | Path, mode: str = "r+") -> None:
        if mode not in ("r", "r+"):
            raise StorageError(f"mode must be 'r' or 'r+', got {mode!r}")
        self._dir = Path(path)
        self._mode = mode
        # Pathlib arithmetic is a measurable share of a cold open; build
        # every file path exactly once.
        self._meta_path = self._dir / _META_FILE
        self._files = {
            name: self._dir / filename for name, filename in _ARRAY_FILES.items()
        }
        self._prefix_files = {
            name: self._dir / filename for name, filename in _PREFIX_FILES.items()
        }
        self._n: int | None = None
        self._generation = 0
        self._prefix_rows = 0
        self._collection: StoreMetadata | None = None
        self._read_maps: dict[str, np.ndarray] | None = None
        self._write_maps: dict[str, np.ndarray] | None = None
        has_meta = self._meta_path.is_file()
        if mode == "r":
            if not has_meta:
                raise StorageError(
                    f"{self._dir} is not an mmap sketch store (no {_META_FILE})"
                )
        else:
            try:
                self._dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise StorageError(
                    f"cannot create mmap store directory {self._dir}: {exc}"
                ) from exc
        if has_meta:
            self._load_meta()

    # -- sidecar metadata ----------------------------------------------------

    def _load_meta(self) -> None:
        try:
            payload = json.loads(self._meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"cannot read mmap store metadata in {self._dir}: {exc}"
            ) from exc
        if payload.get("version") != _FORMAT_VERSION:
            raise StorageError(
                f"unsupported mmap store version {payload.get('version')!r} "
                f"in {self._dir} (expected {_FORMAT_VERSION})"
            )
        self._n = int(payload["n_series"]) if payload.get("n_series") else None
        # Stores written before the generation counter existed read as 0.
        self._generation = int(payload.get("generation", 0))
        # Stores without prefix tables (or written before they existed) read
        # as 0 committed prefix rows.
        self._prefix_rows = int((payload.get("prefix") or {}).get("rows", 0))
        collection = payload.get("collection")
        if collection is not None:
            self._collection = StoreMetadata(
                names=tuple(collection["names"]),
                window_size=int(collection["window_size"]),
                kind=collection["kind"],
                n_coeffs=int(collection["n_coeffs"]),
            )

    def _save_meta(self) -> None:
        collection = None
        if self._collection is not None:
            collection = {
                "names": list(self._collection.names),
                "window_size": self._collection.window_size,
                "kind": self._collection.kind,
                "n_coeffs": self._collection.n_coeffs,
            }
        payload = {
            "version": _FORMAT_VERSION,
            "n_series": self._n,
            "generation": self._generation,
            "prefix": {"rows": self._prefix_rows},
            "collection": collection,
        }
        # Atomic replace behind an fsync barrier: a reader (or a crash
        # recovery) sees either the old sidecar or the new one, never a
        # truncated mix, and the rename is durable once the directory entry
        # is synced.
        tmp_path = self._meta_path.with_suffix(".json.tmp")
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, (json.dumps(payload, indent=2) + "\n").encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, self._meta_path)
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        """Flush the store directory's entries (rename/truncate durability)."""
        try:
            fd = os.open(self._dir, os.O_RDONLY)
        except OSError:
            return  # e.g. platforms without directory fds; best effort
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _sync_meta(self) -> None:
        """Fold the on-disk sidecar into this handle before rewriting it.

        A second writer handle (or another process) may have committed
        since this handle loaded its sidecar. Every sidecar rewrite saves
        this handle's full in-memory view, so a stale handle would both
        *regress* the published generation (masking commits from readers)
        and clobber collection metadata another handle wrote. Reloading
        and merging — newest generation wins, this handle's collection
        wins only where it has one — keeps sequential use of multiple
        handles safe. (Truly simultaneous writers remain out of scope:
        the store is single-writer by design.)
        """
        if not self._meta_path.is_file():
            return  # first-ever write; nothing on disk to fold in
        mine_n = self._n
        mine_collection = self._collection
        mine_generation = self._generation
        mine_prefix_rows = self._prefix_rows
        try:
            self._load_meta()
        except StorageError:
            # Unreadable sidecar: keep this handle's view (the rewrite is
            # the recovery).
            self._n = mine_n
            self._collection = mine_collection
            self._generation = mine_generation
            self._prefix_rows = mine_prefix_rows
            return
        self._generation = max(self._generation, mine_generation)
        if mine_collection is not None:
            self._collection = mine_collection
        if mine_n is not None:
            if self._n is not None and self._n != mine_n:
                raise StorageError(
                    f"store {self._dir} holds {self._n}-series records, "
                    f"this handle was writing {mine_n}"
                )
            self._n = mine_n

    def _begin_commit(self, prefix_rows_cap: int | None = None) -> None:
        """Open the seqlock: advance the generation to the next odd value.

        Published (fsync'ed) *before* any record byte is written, so a
        concurrent reader sampling an odd generation knows the arrays may
        be torn mid-overwrite — the sizes-last sentinel only protects
        never-written slots, not rewrites of existing records.

        The parity is computed, not accumulated: if an earlier commit
        failed or crashed between begin and finish (leaving an odd value at
        rest — correctly flagging possibly-torn data), the next commit
        still opens odd and closes even instead of inverting the protocol.

        Args:
            prefix_rows_cap: When the commit is about to (over)write window
                records at indices ``>= prefix_rows_cap - 1``, prefix rows
                past the cap describe sums over records that are changing —
                truncate them *in the opening sidecar write*, so even a
                crash mid-batch never leaves stale prefix rows published
                over rewritten records.
        """
        self._sync_meta()
        if prefix_rows_cap is not None and self._prefix_rows > prefix_rows_cap:
            self._prefix_rows = prefix_rows_cap
        self._generation += 1 + (self._generation % 2)
        self._save_meta()

    def _finish_commit(self) -> None:
        """Close the seqlock: advance the generation to the next even value.

        Called after the batch's data and sizes pages are msync'ed; the
        sidecar replace (itself fsync'ed) publishes the new generation, so
        an even ``generation`` only ever advances past fully durable data.
        """
        self._generation += 2 - (self._generation % 2)
        self._save_meta()

    def _require_writable(self) -> None:
        if self._mode == "r":
            raise StorageError(f"mmap store {self._dir} is open read-only")

    def _set_n_series(self, n: int) -> None:
        if self._n is None:
            # Another handle may have fixed the series count (and advanced
            # the generation) since this one opened; fold that in rather
            # than publishing a stale sidecar.
            self._sync_meta()
        if self._n is None:
            self._n = int(n)
            self._save_meta()
        elif self._n != n:
            raise StorageError(
                f"store {self._dir} holds {self._n}-series records, got {n}"
            )

    # -- array files ---------------------------------------------------------

    @property
    def path(self) -> str:
        """Store directory path (workers re-mmap through it)."""
        return str(self._dir)

    @property
    def n_series(self) -> int | None:
        """Number of series per record, or ``None`` before the first write."""
        return self._n

    @property
    def generation(self) -> int:
        """Commit counter as of this handle's last load or write.

        A writer's own handle tracks its commits; a *reader* polling for
        another process's writes should use :meth:`read_generation`, which
        re-reads the sidecar from disk.
        """
        return self._generation

    def read_generation(self) -> int:
        """Re-read the commit counter from the on-disk sidecar.

        Sampling this before and after a batch of reads detects a
        concurrent writer: an **odd** value means a ``write_windows`` batch
        is in progress right now, and unequal samples mean a commit landed
        in between — either way the read may be torn and should be retried
        (see the class docstring for the pattern). Stores written before
        the counter existed report 0.
        """
        try:
            payload = json.loads(self._meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"cannot read mmap store metadata in {self._dir}: {exc}"
            ) from exc
        return int(payload.get("generation", 0))

    def _capacity(self) -> int:
        try:
            return self._files["sizes"].stat().st_size // 8
        except OSError:
            return 0

    def _shapes(self, capacity: int) -> dict[str, tuple[int, ...]]:
        assert self._n is not None
        n = self._n
        return {
            "means": (capacity, n),
            "stds": (capacity, n),
            "pairs": (capacity, n, n),
            "sizes": (capacity,),
        }

    def _dtype(self, name: str) -> str:
        return "<i8" if name == "sizes" else "<f8"

    def _drop_maps(self) -> None:
        # Deleting the memmap objects flushes dirty pages and releases the
        # mappings, so the files can be re-truncated and re-mapped.
        self._read_maps = None
        self._write_maps = None

    def _open_maps(self, mode: str) -> dict[str, np.ndarray]:
        capacity = self._capacity()
        if capacity == 0 or self._n is None:
            raise StorageError(f"mmap store {self._dir} holds no window records")
        shapes = self._shapes(capacity)
        maps: dict[str, np.ndarray] = {}
        for name, file_path in self._files.items():
            expected = 8 * int(np.prod(shapes[name]))
            try:
                size = file_path.stat().st_size
            except OSError:
                size = -1
            if size != expected:
                raise StorageError(
                    f"mmap store array {file_path} is missing or has the "
                    f"wrong size (expected {expected} bytes)"
                )
            if mode == "r":
                # Raw mmap + frombuffer instead of np.memmap: ~5x cheaper to
                # construct, which is most of a cold query's latency budget.
                # The arrays are read-only views over the mapping (the mmap
                # object stays alive through .base).
                fd = os.open(file_path, os.O_RDONLY)
                try:
                    buf = mmap.mmap(fd, expected, access=mmap.ACCESS_READ)
                finally:
                    os.close(fd)
                maps[name] = np.frombuffer(buf, dtype=self._dtype(name)).reshape(
                    shapes[name]
                )
            else:
                maps[name] = np.memmap(
                    file_path, dtype=self._dtype(name), mode=mode,
                    shape=shapes[name],
                )
        return maps

    def _stale(self, maps: dict[str, np.ndarray] | None) -> bool:
        """Whether cached maps no longer cover the files' current capacity.

        Another handle (or process) growing the store ftruncates the array
        files; mappings made before that only cover the old length, so
        indexing a newly appended record through them would fail even
        though the fresh capacity check passed. Re-stat and remap instead
        — outstanding record views stay valid, they keep the old mapping
        alive through their ``.base``.
        """
        return maps is not None and maps["sizes"].shape[0] != self._capacity()

    def _writable(self) -> dict[str, np.ndarray]:
        if self._write_maps is None or self._stale(self._write_maps):
            self._write_maps = None
            self._write_maps = self._open_maps("r+")
        return self._write_maps

    def _readable(self) -> dict[str, np.ndarray]:
        if self._read_maps is None or self._stale(self._read_maps):
            self._read_maps = None
            self._read_maps = self._open_maps("r")
        return self._read_maps

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The store's raw arrays as read-only memmap views.

        Returns:
            ``(means, stds, pairs, sizes)`` of shapes ``(nw, n)``,
            ``(nw, n)``, ``(nw, n, n)``, ``(nw,)`` — the zero-copy substrate
            :class:`~repro.engine.providers.MmapProvider` slices from.
        """
        maps = self._readable()
        return maps["means"], maps["stds"], maps["pairs"], maps["sizes"]

    # -- prefix-aggregate tables ---------------------------------------------

    @property
    def prefix_rows(self) -> int:
        """Committed prefix-table rows (0 = no prefix tables).

        ``rows`` valid rows cover basic windows ``[0, rows - 1)``; a store
        needs ``rows >= 2`` before any range can be answered from the
        tables.
        """
        return self._prefix_rows

    def _prefix_shapes(self, capacity: int) -> dict[str, tuple[int, ...]]:
        assert self._n is not None
        n = self._n
        return {
            "prefix_offsets": (n,),
            "prefix_count": (capacity + 1,),
            "prefix_first": (capacity + 1, n),
            "prefix_second": (capacity + 1, n),
            "prefix_cross": (capacity + 1, n, n),
        }

    def build_prefix(self, chunk_windows: int = 256) -> int:
        """Build — or incrementally extend — the persisted prefix tables.

        Streams the committed window records (the contiguous run from
        window 0) into cumulative offset-centered Lemma 1 aggregates
        (:mod:`repro.core.prefix`), picking up from the last committed
        prefix row, so re-running after an append only processes the new
        windows. The whole write runs behind the store's fsync/generation
        barrier like any record batch. The per-series centering offsets are
        fixed by the first build and reused by every extension.

        Args:
            chunk_windows: Window records folded per streaming step.

        Returns:
            The number of basic windows the tables now cover.
        """
        from repro.core.prefix import PrefixAggregates

        self._require_writable()
        if chunk_windows <= 0:
            raise StorageError("chunk_windows must be positive")
        capacity = self._capacity()
        if capacity == 0 or self._n is None:
            raise StorageError(f"mmap store {self._dir} holds no window records")
        maps = self._readable()
        sizes = maps["sizes"]
        # The tables cover the contiguous committed run from window 0 —
        # a hole (sizes == 0) ends what any prefix row may aggregate.
        holes = np.nonzero(np.asarray(sizes) == 0)[0]
        committed = int(holes[0]) if holes.size else int(sizes.size)
        if committed == 0:
            raise StorageError(
                f"mmap store {self._dir} holds no committed window records"
            )
        self._sync_meta()
        if self._prefix_rows >= committed + 1:
            return committed  # already covers every committed window
        self._begin_commit()
        shapes = self._prefix_shapes(capacity)
        for name, file_path in self._prefix_files.items():
            # ftruncate grows zero-filled, preserving committed rows; the
            # fsync makes the new length durable before rows are written.
            fd = os.open(file_path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                os.ftruncate(fd, 8 * int(np.prod(shapes[name], dtype=np.int64)))
                os.fsync(fd)
            finally:
                os.close(fd)
        self._fsync_dir()
        tables = {
            name: np.memmap(
                file_path, dtype="<f8", mode="r+", shape=shapes[name]
            )
            for name, file_path in self._prefix_files.items()
        }
        rows = self._prefix_rows
        if rows == 0:
            # First build fixes the centering offsets: the weighted grand
            # mean of the committed windows (exact for any choice; this one
            # minimizes cancellation for stationary series). Row 0 is the
            # zero row — already zero pages from the truncate.
            weights = np.asarray(sizes[:committed], dtype=np.float64)
            tables["prefix_offsets"][:] = (
                np.asarray(maps["means"][:committed]).T @ weights
            ) / float(weights.sum())
            rows = 1
        aggregates = PrefixAggregates(
            offsets=np.asarray(tables["prefix_offsets"]),
            count=tables["prefix_count"],
            first=tables["prefix_first"],
            second=tables["prefix_second"],
            cross=tables["prefix_cross"],
            rows=rows,
        )
        for start in range(rows - 1, committed, chunk_windows):
            stop = min(start + chunk_windows, committed)
            aggregates.extend(
                np.asarray(maps["means"][start:stop]).T,
                np.asarray(maps["stds"][start:stop]).T,
                np.asarray(maps["pairs"][start:stop]),
                np.asarray(sizes[start:stop], dtype=np.float64),
            )
        tables["prefix_offsets"].flush()
        for name in (
            "prefix_count", "prefix_first", "prefix_second", "prefix_cross"
        ):
            self._flush_records(tables[name], max(rows - 1, 0), aggregates.rows)
        del aggregates, tables
        self._prefix_rows = committed + 1
        self._finish_commit()
        return committed

    def read_prefix(self) -> "PrefixAggregates | None":
        """The committed prefix tables as read-only zero-copy views.

        Returns:
            A :class:`~repro.core.prefix.PrefixAggregates` whose arrays are
            read-only mappings of the ``prefix_*`` files (a range query
            touches only the pages of the two rows it reads), or ``None``
            when the store has no usable prefix tables (``prefix_rows <
            2``).

        Raises:
            StorageError: When the sidecar advertises prefix rows but the
                table files are missing or shorter than the committed rows.
        """
        from repro.core.prefix import PrefixAggregates

        rows = self._prefix_rows
        if rows < 2 or self._n is None:
            return None
        n = self._n
        flats: dict[str, np.ndarray] = {}
        for name, file_path in self._prefix_files.items():
            try:
                size = file_path.stat().st_size
            except OSError:
                size = 0
            if size <= 0 or size % 8:
                raise StorageError(
                    f"prefix table {file_path} is missing or truncated "
                    f"({rows} rows are committed)"
                )
            fd = os.open(file_path, os.O_RDONLY)
            try:
                buf = mmap.mmap(fd, size, access=mmap.ACCESS_READ)
            finally:
                os.close(fd)
            flats[name] = np.frombuffer(buf, dtype="<f8")
        offsets = flats["prefix_offsets"]
        first = flats["prefix_first"]
        second = flats["prefix_second"]
        cross = flats["prefix_cross"]
        if (
            offsets.size != n
            or first.size % n
            or second.size % n
            or cross.size % (n * n)
        ):
            raise StorageError(
                f"prefix tables in {self._dir} do not match {n} series"
            )
        aggregates_rows = min(
            flats["prefix_count"].size,
            first.size // n,
            second.size // n,
            cross.size // (n * n),
        )
        if aggregates_rows < rows:
            raise StorageError(
                f"prefix tables in {self._dir} hold {aggregates_rows} rows, "
                f"but {rows} are committed"
            )
        # Trim every table to the shortest file's row count so the
        # dataclass's shape validation holds even when a capacity-growing
        # append resized some files before a rebuild.
        return PrefixAggregates(
            offsets=offsets,
            count=flats["prefix_count"][:aggregates_rows],
            first=first.reshape(-1, n)[:aggregates_rows],
            second=second.reshape(-1, n)[:aggregates_rows],
            cross=cross.reshape(-1, n, n)[:aggregates_rows],
            rows=rows,
        )

    def trim(self) -> int:
        """Compact the store: drop trailing unwritten (or stale) capacity.

        Stores written out of order over-allocate: ``_ensure_capacity``
        grows the array files to the *highest* index ever written, so a
        batch landing at a large index leaves every file sized for slots
        that may never be filled (and, after such a batch, oversized
        ``prefix_*`` tables). ``trim`` truncates all of them back to the
        last committed record, running behind the same fsync/generation
        barrier as any record batch, so concurrent readers observe either
        the old capacity or the new one — never a half-truncated store.

        Interior holes (unwritten slots *below* the last committed record)
        are preserved: window indices are semantic, and renumbering them
        would change what every query means. Committed prefix rows always
        cover a contiguous run from window 0, so they survive unchanged.

        Returns:
            The number of bytes reclaimed (0 when the store is already
            compact).

        Raises:
            StorageError: On a read-only handle or a store with no record
                arrays.
        """
        self._require_writable()
        capacity = self._capacity()
        if capacity == 0 or self._n is None:
            raise StorageError(f"mmap store {self._dir} holds no window records")
        sizes = np.asarray(self._readable()["sizes"])
        written = np.nonzero(sizes)[0]
        committed = int(written[-1]) + 1 if written.size else 0
        has_prefix_files = any(
            file_path.exists() for file_path in self._prefix_files.values()
        )
        before = self.size_bytes()
        expected = {
            name: 8 * int(np.prod(shape, dtype=np.int64))
            for name, shape in self._shapes(capacity).items()
        }
        if has_prefix_files:
            for name, shape in self._prefix_shapes(capacity).items():
                expected[name] = 8 * int(np.prod(shape, dtype=np.int64))
        oversized = any(
            file_path.exists() and file_path.stat().st_size > expected[name]
            for name, file_path in (
                *self._files.items(),
                *(self._prefix_files.items() if has_prefix_files else ()),
            )
        )
        if committed == capacity and not oversized:
            return 0
        self._begin_commit()
        self._drop_maps()
        shapes = dict(self._shapes(committed))
        if has_prefix_files:
            # Prefix tables are sized capacity+1 rows; committed rows (a
            # prefix of the committed run) always fit the trimmed size.
            shapes.update(self._prefix_shapes(committed))
        targets = dict(self._files)
        if has_prefix_files:
            targets.update(self._prefix_files)
        for name, file_path in targets.items():
            if name in self._prefix_files and not file_path.exists():
                continue
            fd = os.open(file_path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                os.ftruncate(
                    fd, 8 * int(np.prod(shapes[name], dtype=np.int64))
                )
                os.fsync(fd)
            finally:
                os.close(fd)
        self._fsync_dir()
        self._finish_commit()
        return before - self.size_bytes()

    def _ensure_capacity(self, needed: int) -> None:
        capacity = self._capacity()
        if needed <= capacity:
            return
        self._drop_maps()
        shapes = self._shapes(needed)
        for name, file_path in self._files.items():
            # Extending with truncate leaves the new (unwritten) slots as
            # zero pages — exactly the sizes sentinel for "missing". The
            # fsync makes the new length durable before any record data is
            # written into the extension.
            fd = os.open(file_path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                os.ftruncate(fd, 8 * int(np.prod(shapes[name])))
                os.fsync(fd)
            finally:
                os.close(fd)
        self._fsync_dir()

    # -- SketchStore contract ------------------------------------------------

    def write_metadata(self, metadata: StoreMetadata) -> None:
        self._require_writable()
        self._set_n_series(len(metadata.names))
        self._collection = metadata
        # The sidecar replace is atomic, so no odd intermediate state is
        # needed — advance by a whole commit, preserving parity: if an
        # interrupted batch left the store flagged odd (possibly torn
        # records), only a *completed* record commit may publish even again.
        self._sync_meta()
        self._generation += 2
        self._save_meta()

    def read_metadata(self) -> StoreMetadata:
        if self._collection is None:
            raise StorageError(f"no metadata in mmap store {self._dir}")
        return self._collection

    def write_windows(self, records: list[WindowRecord]) -> None:
        self._require_writable()
        if not records:
            return
        for record in records:
            means = np.asarray(record.means, dtype=np.float64)
            if means.ndim != 1:
                raise StorageError(
                    f"window record means must be 1-D, got shape {means.shape}"
                )
            self._set_n_series(means.size)
            n = self._n
            if np.asarray(record.stds).shape != (n,):
                raise StorageError(
                    f"window record {record.index} stds shape "
                    f"{np.asarray(record.stds).shape} != ({n},)"
                )
            if np.asarray(record.pairs).shape != (n, n):
                raise StorageError(
                    f"window record {record.index} pairs shape "
                    f"{np.asarray(record.pairs).shape} != ({n}, {n})"
                )
            if record.index < 0:
                raise StorageError(f"negative window index {record.index}")
            if record.size <= 0:
                raise StorageError(
                    f"window record {record.index} has non-positive size "
                    f"{record.size}"
                )
        lo = min(record.index for record in records)
        hi = max(record.index for record in records) + 1
        # Prefix rows past lo+1 aggregate records this batch is rewriting;
        # truncating them inside the opening commit keeps readers from ever
        # combining stale cumulative sums with the new records (regression:
        # append/overwrite after prefix materialization). Pure appends land
        # at lo >= old count, so committed rows (<= count + 1) survive and
        # build_prefix() later extends from the last committed row.
        self._begin_commit(prefix_rows_cap=lo + 1)
        self._ensure_capacity(hi)
        maps = self._writable()
        for record in records:
            j = record.index
            maps["means"][j] = record.means
            maps["stds"][j] = record.stds
            maps["pairs"][j] = np.asarray(record.pairs, dtype=np.float64)
        # Commit sizes last, behind an msync barrier: the data pages reach
        # the file before any nonzero size does, so a crash — process or
        # system — leaves a half-written record with sizes[j] == 0, which
        # readers treat as missing rather than serving partial data.
        for name in ("means", "stds", "pairs"):
            self._flush_records(maps[name], lo, hi)
        for record in records:
            maps["sizes"][record.index] = record.size
        self._flush_records(maps["sizes"], lo, hi)
        # Publish the commit: bump the generation back to even behind its
        # own fsync barrier so concurrent readers can detect both the
        # in-progress window (odd) and the completed change (advanced).
        self._finish_commit()

    @staticmethod
    def _flush_records(mem: np.ndarray, lo: int, hi: int) -> None:
        """msync only the pages covering records ``[lo, hi)``.

        ``np.memmap.flush()`` syncs the whole mapping, which turns batched
        ingestion into quadratic writeback (every batch re-syncs the full
        file). Flushing the touched byte range keeps each batch's cost
        proportional to the batch.
        """
        raw = getattr(mem, "_mmap", None)
        if raw is None:  # not a memmap-backed array; nothing to sync
            return
        record_bytes = mem.itemsize * int(np.prod(mem.shape[1:], dtype=np.int64))
        page = mmap.PAGESIZE
        start = (lo * record_bytes // page) * page
        stop = min(hi * record_bytes, mem.nbytes)
        if stop > start:
            raw.flush(start, stop - start)

    def read_windows(self, indices: list[int]) -> list[WindowRecord]:
        capacity = self._capacity()
        if capacity == 0:
            raise StorageError(
                f"window records missing from store: {list(indices)}"
            )
        maps = self._readable()
        sizes = maps["sizes"]
        records: list[WindowRecord] = []
        for index in indices:
            i = int(index)
            if not 0 <= i < capacity or sizes[i] == 0:
                raise StorageError(f"window record {i} missing from store")
            records.append(
                WindowRecord(
                    index=i,
                    means=maps["means"][i],
                    stds=maps["stds"][i],
                    pairs=maps["pairs"][i],
                    size=int(sizes[i]),
                )
            )
        return records

    def read_windows_consistent(
        self, indices: list[int], attempts: int = 8, backoff: float = 0.005
    ) -> list[WindowRecord]:
        """Seqlock-validated :meth:`read_windows` for concurrent writers.

        Materializes (copies) the requested records between two
        :meth:`read_generation` samples and retries while a commit is in
        progress (odd generation) or landed mid-read (samples differ).
        The copies matter: plain ``read_windows`` returns zero-copy mmap
        views, which stay live — and tearable — after validation.

        Args:
            indices: Window indices to read.
            attempts: Read attempts before giving up (a writer that
                commits continuously can starve readers; bound the wait).
            backoff: Seconds to sleep between attempts.

        Raises:
            StorageError: When a record is missing, or no consistent
                snapshot landed within ``attempts`` tries.
        """
        import time as _time

        if attempts < 1:
            raise StorageError("read_windows_consistent needs attempts >= 1")
        for attempt in range(attempts):
            before = self.read_generation()
            if before % 2 == 1:  # a commit is in flight right now
                _time.sleep(backoff)
                continue
            try:
                records = [
                    WindowRecord(
                        index=record.index,
                        means=np.array(record.means, copy=True),
                        stds=np.array(record.stds, copy=True),
                        pairs=np.array(record.pairs, copy=True),
                        size=record.size,
                    )
                    for record in self.read_windows(indices)
                ]
            except StorageError:
                # The store may be mid-grow (files being swapped); only
                # trust the error once a quiet generation confirms it.
                if self.read_generation() == before:
                    raise
                _time.sleep(backoff)
                continue
            if self.read_generation() == before:
                return records
            _time.sleep(backoff)
        raise StorageError(
            f"no consistent read of windows {list(indices)} within "
            f"{attempts} attempts; a writer is committing continuously"
        )

    def window_count(self) -> int:
        if self._capacity() == 0 or self._n is None:
            return 0
        return int(np.count_nonzero(self._readable()["sizes"]))

    def size_bytes(self) -> int:
        total = 0
        for file_path in (
            self._meta_path, *self._files.values(), *self._prefix_files.values()
        ):
            if file_path.exists():
                total += file_path.stat().st_size
        return total

    def close(self) -> None:
        self._drop_maps()
