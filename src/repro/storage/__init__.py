"""Sketch persistence: in-memory and disk-based (SQLite) stores.

The sketch *providers* (:mod:`repro.engine.providers`) are re-exported here
for convenience — ``StoreProvider`` is how a persisted store plugs straight
into the query engines::

    from repro.storage import SqliteSketchStore, StoreProvider
    from repro import TsubasaHistorical

    with SqliteSketchStore("sketch.db") as store:
        engine = TsubasaHistorical(provider=StoreProvider(store))
        network = engine.network((8759, 3000), theta=0.75)

(The re-export is lazy to keep the storage ↔ engine import graph acyclic.)
"""

from repro.storage.base import SketchStore, StoreMetadata, WindowRecord
from repro.storage.live import PersistentRealtime
from repro.storage.memory import MemorySketchStore
from repro.storage.mmap_store import MmapStore, is_mmap_store
from repro.storage.serialize import (
    convert_store,
    load_approx_sketch,
    load_sketch,
    save_approx_sketch,
    save_sketch,
)
from repro.storage.sqlite_store import SqliteSketchStore

__all__ = [
    "SketchStore",
    "StoreMetadata",
    "WindowRecord",
    "PersistentRealtime",
    "MemorySketchStore",
    "MmapStore",
    "is_mmap_store",
    "SqliteSketchStore",
    "load_sketch",
    "save_sketch",
    "load_approx_sketch",
    "save_approx_sketch",
    "convert_store",
    "SketchProvider",
    "InMemoryProvider",
    "StoreProvider",
    "ChunkedBuildProvider",
    "MmapProvider",
]

_PROVIDER_EXPORTS = frozenset(
    {
        "SketchProvider",
        "InMemoryProvider",
        "StoreProvider",
        "ChunkedBuildProvider",
        "MmapProvider",
    }
)


def __getattr__(name: str) -> object:
    if name in _PROVIDER_EXPORTS:
        from repro.engine import providers

        return getattr(providers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
