"""Sketch persistence: in-memory and disk-based (SQLite) stores."""

from repro.storage.base import SketchStore, StoreMetadata, WindowRecord
from repro.storage.live import PersistentRealtime
from repro.storage.memory import MemorySketchStore
from repro.storage.serialize import (
    load_approx_sketch,
    load_sketch,
    save_approx_sketch,
    save_sketch,
)
from repro.storage.sqlite_store import SqliteSketchStore

__all__ = [
    "SketchStore",
    "StoreMetadata",
    "WindowRecord",
    "PersistentRealtime",
    "MemorySketchStore",
    "SqliteSketchStore",
    "load_sketch",
    "save_sketch",
    "load_approx_sketch",
    "save_approx_sketch",
]
