"""Sketch store interface (the paper's PostgreSQL role).

The disk-based TSUBASA (§3.4) writes sketches to a database at ingestion time
and reads them back at query time, separating sketch *computation* cost from
database *I/O* cost — Figures 6a/6b break their measurements down exactly
along this line, and Figure 6d measures the store's on-disk size.

:class:`SketchStore` is the minimal contract both deployments share. The
unit of storage is the *window record*: all statistics of one basic window
(per-series means/stds plus the all-pair covariance or DFT-distance matrix),
keyed by window index. Stores also persist the collection metadata (series
names, basic window size, kind of pairwise statistic) so a query-side process
can reconstruct a :class:`~repro.core.sketch.Sketch` without the writer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["StoreMetadata", "WindowRecord", "SketchStore"]


@dataclass(frozen=True)
class StoreMetadata:
    """Collection-level metadata persisted alongside window records.

    Attributes:
        names: Series identifiers, in matrix order.
        window_size: Basic window size ``B``.
        kind: ``"exact"`` (pair covariances) or ``"approx"`` (DFT distances).
        n_coeffs: DFT coefficients used (approx sketches only; 0 for exact).
    """

    names: tuple[str, ...]
    window_size: int
    kind: str = "exact"
    n_coeffs: int = 0


@dataclass(frozen=True)
class WindowRecord:
    """All statistics of one basic window.

    Attributes:
        index: Basic window index (position in the stream).
        means: Per-series means, shape ``(n,)``.
        stds: Per-series population stds, shape ``(n,)``.
        pairs: All-pair matrix, shape ``(n, n)`` — covariances for exact
            sketches, squared DFT coefficient distances for approx sketches.
        size: Number of points in the window.
    """

    index: int
    means: np.ndarray
    stds: np.ndarray
    pairs: np.ndarray
    size: int


class SketchStore(abc.ABC):
    """Abstract persistent store of basic-window sketches."""

    @abc.abstractmethod
    def write_metadata(self, metadata: StoreMetadata) -> None:
        """Persist collection metadata (idempotent overwrite)."""

    @abc.abstractmethod
    def read_metadata(self) -> StoreMetadata:
        """Load collection metadata; raises StorageError when absent."""

    @abc.abstractmethod
    def write_windows(self, records: list[WindowRecord]) -> None:
        """Persist a batch of window records (the §3.4 batched writes)."""

    @abc.abstractmethod
    def read_windows(self, indices: list[int]) -> list[WindowRecord]:
        """Load the given window records, in the requested order."""

    @abc.abstractmethod
    def window_count(self) -> int:
        """Number of window records currently stored."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Current storage footprint in bytes (Fig. 6d's measure)."""

    def close(self) -> None:
        """Release resources; default is a no-op."""

    def __enter__(self) -> "SketchStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
