"""Command-line interface for the TSUBASA reproduction.

Subcommands mirror the system's life cycle::

    tsubasa generate --stations 157 --points 8760 --out data.npz
    tsubasa sketch   --data data.npz --window-size 200 --store sketch.db
    tsubasa sketch   --data data.npz --window-size 200 --store sketch.mm \
                     --store-backend mmap        # zero-copy array layout
    tsubasa sketch   --data data.npz --window-size 200 --store sketch.mm \
                     --store-backend mmap --prefix  # + O(n^2)-query tables
    tsubasa sketch   --data data.npz --window-size 200 --store sketch.db \
                     --chunk-rows 512            # memory-bounded build
    tsubasa query    --store sketch.db --end 8759 --length 3000 --theta 0.75
    tsubasa query    --store sketch.db --backend store --data data.npz \
                     --end 8759 --length 2971    # lazy reads, arbitrary window
    tsubasa query    --store sketch.mm --backend mmap --end 8759 --length 3000
    tsubasa convert  --src sketch.db --dst sketch.mm --dst-backend mmap
    tsubasa stream   --data data.npz --window-size 200 --initial 3000 \
                     --theta 0.75 --updates 10
    tsubasa topk     --store sketch.db --end 8759 --length 3000 --k 10
    tsubasa sweep    --store sketch.db --windows 15 --stride 5 --theta 0.75
    tsubasa info     --store sketch.db
    tsubasa trim     --store sketch.mm           # drop trailing capacity
    tsubasa serve    --store sketch.mm --backend mmap --workers 4
    tsubasa serve    --store sketch.mm --backend mmap --http 0.0.0.0:8787 \
                     --stream-data data.npz      # HTTP + WS, live stream

Datasets travel as ``.npz`` archives with ``values``/``names``/``lats``/
``lons`` arrays (see ``tsubasa generate``). Sketches live either in SQLite
database files or in memory-mapped array directories (:mod:`repro.storage`);
store-reading commands detect the layout from the path, and ``tsubasa
convert`` migrates a sketch between the two.

Query commands choose a sketch backend with ``--backend``: ``memory`` loads
the whole sketch up front (the paper's in-memory configuration), ``store``
reads window records lazily through an LRU-cached
:class:`~repro.engine.providers.StoreProvider` (the disk-based
configuration), and ``mmap`` serves queries zero-copy from a memory-mapped
store's arrays (:class:`~repro.engine.providers.MmapProvider`) — the answers
are identical. Passing ``--data`` enables arbitrary (non-aligned) query
windows by sketching the partial head/tail fragments from raw data at query
time. ``--prefix`` wraps any backend in prefix-aggregate tables
(:mod:`repro.core.prefix`) so contiguous window ranges cost ``O(n^2)``
regardless of their length; the mmap backend picks up tables persisted with
``tsubasa sketch --prefix`` automatically.

Query commands are thin shells over the declarative query API
(:mod:`repro.api`): they build a :class:`~repro.api.spec.QuerySpec` and hand
it to a :class:`~repro.api.client.TsubasaClient`. ``tsubasa serve`` exposes
that surface directly as a long-lived service speaking the versioned wire
protocol (:mod:`repro.api.protocol`): by default as JSON-lines on
stdin/stdout (each input line a request frame, each output line a
completion envelope), or — with ``--http HOST:PORT`` — as a socket server
speaking HTTP/1.1 and WebSockets (:mod:`repro.api.server`), including
streaming ``subscribe`` ops when ``--stream-data`` attaches a live replay.
Concurrent requests over the same window share one matrix computation
(:class:`~repro.api.service.TsubasaService`).

Failures map :class:`~repro.exceptions.TsubasaError` subclasses to distinct
exit codes with a one-line message (no tracebacks): sketch/query errors → 2,
malformed data → 3, bad windows → 4, storage failures → 5, stream errors →
6, service misuse → 7, any other library error → 1.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro.analysis.topology import summarize_topology
from repro.api.client import ParallelPolicy, TsubasaClient
from repro.api.service import TsubasaService
from repro.api.spec import QuerySpec, WindowSpec
from repro.core.exact import TsubasaHistorical
from repro.core.network import ClimateNetwork
from repro.core.realtime import TsubasaRealtime
from repro.core.sketch import build_sketch
from repro.data.synthetic import StationDataset, generate_station_dataset
from repro.engine.providers import (
    ChunkedBuildProvider,
    InMemoryProvider,
    MmapProvider,
    PrefixProvider,
    SketchProvider,
    StoreProvider,
)
from repro.exceptions import (
    DataError,
    ServiceError,
    SketchError,
    StorageError,
    StreamError,
    TsubasaError,
    error_code_for,
)
from repro.storage.base import SketchStore
from repro.storage.mmap_store import MmapStore, is_mmap_store
from repro.storage.serialize import convert_store, load_sketch, save_sketch
from repro.storage.sqlite_store import SqliteSketchStore
from repro.streams.ingestion import StreamIngestor
from repro.streams.sources import ReplaySource

__all__ = ["main", "build_parser", "exit_code_for"]

def exit_code_for(exc: TsubasaError) -> int:
    """The process exit code for a library error (distinct per subclass).

    The codes are the library-wide failure taxonomy
    (:func:`repro.exceptions.error_code_for`), shared with the wire
    protocol's error envelopes.
    """
    return error_code_for(exc)


def _open_store(path: str, backend: str = "auto") -> SketchStore:
    """Open a sketch store, detecting the on-disk layout by default.

    ``backend`` is ``"sqlite"``, ``"mmap"``, or ``"auto"`` (an mmap store is
    a directory with a ``meta.json`` sidecar; everything else is SQLite).
    """
    if backend == "auto":
        backend = "mmap" if is_mmap_store(path) else "sqlite"
    if backend == "mmap":
        return MmapStore(path)
    return SqliteSketchStore(path)


def _save_dataset(path: str, dataset: StationDataset) -> None:
    np.savez_compressed(
        path,
        values=dataset.values,
        names=np.array(dataset.names),
        lats=dataset.lats,
        lons=dataset.lons,
        resolution_hours=np.float64(dataset.resolution_hours),
    )


def _load_dataset(path: str) -> StationDataset:
    with np.load(path) as archive:
        return StationDataset(
            names=[str(n) for n in archive["names"]],
            values=archive["values"],
            lats=archive["lats"],
            lons=archive["lons"],
            resolution_hours=float(archive["resolution_hours"]),
        )


def _print_network(network: ClimateNetwork, max_edges: int) -> None:
    summary = summarize_topology(network)
    print(f"nodes={summary.n_nodes} edges={summary.n_edges} "
          f"density={summary.density:.4f} components={summary.n_components} "
          f"clustering={summary.average_clustering:.3f}")
    edges = sorted(
        network.edge_set(),
        key=lambda e: -network.edge_weight(*e),
    )[:max_edges]
    for a, b in edges:
        print(f"  {a} -- {b}  corr={network.edge_weight(a, b):+.4f}")


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_station_dataset(
        n_stations=args.stations, n_points=args.points, seed=args.seed
    )
    _save_dataset(args.out, dataset)
    print(f"wrote {dataset.n_series} series x {dataset.n_points} points "
          f"to {args.out}")
    return 0


def _cmd_sketch(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.data)
    if args.prefix and args.store_backend != "mmap":
        raise StorageError(
            "--prefix requires --store-backend mmap (prefix-aggregate "
            "tables are persisted as memory-mapped arrays)"
        )
    start = time.perf_counter()
    with _open_store(args.store, args.store_backend) as store:
        if args.chunk_rows:
            provider = ChunkedBuildProvider(
                dataset.values, args.window_size, names=dataset.names,
                chunk_rows=args.chunk_rows,
            )
            provider.save_to(store)
            n_series, n_windows = provider.n_series, provider.n_windows
        else:
            sketch = build_sketch(
                dataset.values, args.window_size, names=dataset.names
            )
            save_sketch(store, sketch)
            n_series, n_windows = sketch.n_series, sketch.n_windows
        prefix_note = ""
        if args.prefix:
            covered = store.build_prefix()
            prefix_note = f", prefix over {covered} windows"
        elapsed = time.perf_counter() - start
        size = store.size_bytes()
    mode = f"chunked (rows<={args.chunk_rows})" if args.chunk_rows else "in-memory"
    print(f"sketched {n_series} series into {n_windows} "
          f"windows (B={args.window_size}, {mode} build, "
          f"{args.store_backend} store{prefix_note}) in {elapsed:.2f}s; "
          f"store={size / 1e6:.2f} MB")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    if args.prefix and args.dst_backend != "mmap":
        raise StorageError(
            "--prefix requires --dst-backend mmap (prefix-aggregate tables "
            "are persisted as memory-mapped arrays)"
        )
    with _open_store(args.src) as src, \
            _open_store(args.dst, args.dst_backend) as dst:
        start = time.perf_counter()
        count = convert_store(src, dst, batch_size=args.batch_size)
        # Prefix tables migrate by rebuilding on the destination: cumulative
        # sums are layout-specific state, not window records. Asked-for
        # explicitly, or carried over automatically when the source had them.
        src_prefixed = isinstance(src, MmapStore) and src.prefix_rows >= 2
        prefix_note = ""
        if isinstance(dst, MmapStore) and (args.prefix or src_prefixed):
            covered = dst.build_prefix()
            prefix_note = f" (+ prefix over {covered} windows)"
        elapsed = time.perf_counter() - start
        size = dst.size_bytes()
    print(f"migrated {count} window records to {args.dst} "
          f"({args.dst_backend}){prefix_note} in {elapsed:.2f}s; "
          f"store={size / 1e6:.2f} MB")
    return 0


def _open_provider(
    store: SketchStore, args: argparse.Namespace
) -> SketchProvider:
    """Build the sketch backend selected by ``--backend``."""
    data = None
    if getattr(args, "data", None):
        data = _load_dataset(args.data).values
    if args.backend == "mmap":
        if not isinstance(store, MmapStore):
            raise SketchError(
                f"--backend mmap needs a memory-mapped store directory; "
                f"{args.store} is a SQLite database (run 'tsubasa convert' "
                "first, or use --backend store)"
            )
        # The mmap backend serves persisted prefix tables on its own;
        # --prefix additionally covers stores without them (in-memory build).
        provider: SketchProvider = MmapProvider(store, data=data)
    elif args.backend == "store":
        provider = StoreProvider(
            store, cache_windows=args.cache_windows, data=data
        )
    else:
        provider = InMemoryProvider(load_sketch(store), data=data)
    if getattr(args, "prefix", False):
        # The long-lived service may share the provider across executor
        # threads; an eager build keeps the tables immutable on the query
        # path. One-shot queries build lazily, only up to the windows asked.
        provider = PrefixProvider(provider, eager=args.command == "serve")
    return provider


def _open_client(store: SketchStore, args: argparse.Namespace) -> TsubasaClient:
    """Build the declarative query client over the selected backend."""
    policy = None
    if getattr(args, "parallel", 0):
        policy = ParallelPolicy(args.parallel)
    return TsubasaClient(provider=_open_provider(store, args), policy=policy)


def _cmd_query(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        client = _open_client(store, args)
        theta = args.theta
        if args.alpha is not None:
            from repro.core.significance import critical_correlation

            n = client.n_series
            theta = critical_correlation(
                args.length, args.alpha, n_comparisons=n * (n - 1) // 2
            )
            print(f"significance level {args.alpha} -> theta={theta:.4f} "
                  f"(Bonferroni over {n * (n - 1) // 2} pairs)")
        spec = QuerySpec(
            op="network",
            window=WindowSpec(end=args.end, length=args.length),
            theta=float(theta),
        )
        try:
            result = client.execute(spec)
        except SketchError as exc:
            # Same code the global handler would assign, plus the concrete
            # CLI fix the library message cannot know about.
            print(f"error: {exc}; pass --data or adjust --end/--length",
                  file=sys.stderr)
            return exit_code_for(exc)
    provenance = result.provenance
    mode = "" if provenance.execution == "serial" else (
        f", {provenance.execution} x{provenance.n_workers}"
    )
    if provenance.path != "direct":
        mode += f", {provenance.path} path"
    print(f"query answered from sketches in "
          f"{result.timings['total'] * 1e3:.1f} ms "
          f"({provenance.backend} backend{mode})")
    _print_network(result.value, args.max_edges)
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import ascii_degree_map, topology_report

    dataset = _load_dataset(args.data)
    engine = TsubasaHistorical(
        dataset.values, args.window_size, names=dataset.names,
        coordinates=dataset.coordinates,
    )
    network = engine.network((args.end, args.length), args.theta)
    print(topology_report(network))
    print()
    print(ascii_degree_map(network, width=args.width, height=args.height))
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    window = WindowSpec(end=args.end, length=args.length)
    specs = [QuerySpec(op="top_k", window=window, k=args.k)]
    if args.anticorrelated:
        specs.append(QuerySpec(op="anticorrelated", window=window, k=args.k))
    with _open_store(args.store) as store:
        client = _open_client(store, args)
        # execute_many shares the one matrix across both specs.
        results = client.execute_many(specs)
    print(f"top {args.k} correlated pairs:")
    for a, b, corr in results[0].value:
        print(f"  {a} -- {b}  corr={corr:+.4f}")
    if args.anticorrelated:
        print(f"top {args.k} anti-correlated pairs:")
        for a, b, corr in results[1].value:
            print(f"  {a} -- {b}  corr={corr:+.4f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.dynamics import summarize_dynamics
    from repro.core.sweep import sliding_networks

    with _open_store(args.store) as store:
        sketch = load_sketch(store)
    results = sliding_networks(
        sketch, n_windows=args.windows, theta=args.theta,
        stride_windows=args.stride,
    )
    for first, network in results:
        start = first * sketch.window_size
        stop = (first + args.windows) * sketch.window_size
        print(f"[{start:>7}, {stop:>7}): {network.n_edges} edges")
    dynamics = summarize_dynamics([net for _, net in results])
    print(f"mean edges {dynamics.mean_edges:.1f}, "
          f"mean churn {dynamics.mean_churn:.1f}, "
          f"stable {len(dynamics.stable_edges)}, "
          f"blinking {len(dynamics.blinking_edges)}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.data)
    if args.initial >= dataset.n_points:
        print("error: --initial must leave data to stream", file=sys.stderr)
        return 2
    engine = TsubasaRealtime(
        dataset.values[:, : args.initial], args.window_size, names=dataset.names
    )
    ingestor = StreamIngestor(engine, theta=args.theta)
    source = ReplaySource(dataset.values, args.window_size, start=args.initial)
    snapshots = ingestor.run(source, max_updates=args.updates)
    for snap in snapshots:
        print(f"t={snap.timestamp}: edges={snap.network.n_edges} "
              f"(+{len(snap.appeared)} / -{len(snap.disappeared)})")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        layout = "mmap" if isinstance(store, MmapStore) else "sqlite"
        metadata = store.read_metadata()
        count = store.window_count()
        size = store.size_bytes()
        extras = ""
        if isinstance(store, MmapStore):
            extras = f" generation={store.read_generation()}"
            extras += f" prefix={max(store.prefix_rows - 1, 0)}w"
    print(f"kind={metadata.kind} layout={layout} series={len(metadata.names)} "
          f"B={metadata.window_size} windows={count} "
          f"size={size / 1e6:.2f} MB{extras}")
    return 0


async def _serve_jsonl(
    client: TsubasaClient,
    stdin,
    stdout,
    max_workers: int,
    max_batch: int,
    max_pending: int = 256,
    result_cache: int = 0,
    hub=None,
    source=None,
    stream_interval: float = 0.05,
    send_buffer: int = 64,
) -> int:
    """Serve JSON-lines specs from ``stdin`` until EOF (the ``serve`` loop).

    Each line is a wire-protocol request frame
    (:func:`repro.api.protocol.parse_request` — the framed ``{"protocol": 1,
    "id": ..., "spec": {...}}`` form or the legacy inline form), each output
    line a protocol completion envelope. Requests are submitted as they
    arrive (so in-flight window selections coalesce) and responses stream
    back in submission order; the per-request ids exist so framed clients
    can correlate envelopes independent of ordering. The response queue is
    bounded by ``max_pending``: once that many requests are ahead of the
    printer, the reader stops consuming stdin until responses drain, so a
    huge piped batch cannot accumulate unbounded in-flight results.

    With ``--stream-data`` (a live ``hub``/``source``), ``subscribe``
    requests work on this transport too: the ack, every
    :class:`~repro.api.protocol.StreamEvent`, and the closing completion
    each become one output line, interleaved with query responses. Stdin
    EOF stops *reading* but leaves open subscriptions streaming — pipe
    through ``head`` or send SIGINT to stop — so
    ``printf '{"op": "subscribe", ...}' | tsubasa serve ... | head`` tails
    the live network.

    The closing stderr summary counts what the *consumer observed*: ``ok``
    and ``failed`` are envelopes actually emitted (``failed`` includes
    malformed frames, broken out as ``rejected``), and responses completed
    after a consumer hangup are reported as ``discarded`` instead of being
    silently folded into the success count.
    """
    from repro.api.protocol import (
        ErrorEnvelope,
        Response,
        StreamEvent,
        parse_request,
    )
    from repro.api.server import _window_points

    loop = asyncio.get_running_loop()
    responses: asyncio.Queue = asyncio.Queue(maxsize=max_pending)
    hangup = asyncio.Event()  # set once stdout writes start failing
    emitted = {"ok": 0, "failed": 0, "discarded": 0}

    async def print_responses() -> None:
        while True:
            item = await responses.get()
            if item is None:
                return
            task, ready = item
            if hangup.is_set():
                # The consumer hung up: nobody can see further responses.
                # Keep draining (so the bounded queue never wedges the
                # reader), retrieve task outcomes without emitting, and
                # account for them honestly as discarded.
                if task is not None:
                    try:
                        await task
                    except Exception:  # noqa: BLE001 - outcome discarded
                        pass
                emitted["discarded"] += 1
                continue
            envelope = ready if ready is not None else await task
            try:
                stdout.write(json.dumps(envelope) + "\n")
                stdout.flush()
            except OSError:
                hangup.set()  # e.g. `tsubasa serve | head`
                emitted["discarded"] += 1
                continue
            # Stream events carry no "ok" flag; they are successes.
            ok = envelope.get("ok", "event" in envelope)
            emitted["ok" if ok else "failed"] += 1

    async def answer(request_id, spec: QuerySpec) -> dict:
        # Any failure — library error or not — becomes this request's
        # error envelope; one bad request must never kill the service or
        # drop later responses.
        try:
            result = await service.submit(spec)
        except Exception as exc:  # noqa: BLE001 - per-request envelope
            return ErrorEnvelope.from_exception(exc, request_id).to_dict()
        return Response.from_result(result, request_id).to_dict()

    async def run_subscription(request_id, spec: QuerySpec) -> None:
        # The stdin-transport mirror of the WebSocket subscription loop:
        # ack, then one StreamEvent line per snapshot, then a completion
        # (or an error envelope if the hub drops this subscriber).
        try:
            points = _window_points(spec.window, hub.window_size)
            if points != hub.window_points:
                raise StreamError(
                    f"subscribe window selects {points} points, but the "
                    f"standing query window is {hub.window_points} points "
                    f"({hub.window_points // hub.window_size} basic "
                    f"windows of {hub.window_size})"
                )
            subscription = hub.subscribe(
                theta=spec.theta, max_pending=send_buffer,
                resume_from=spec.resume_from,
            )
        except TsubasaError as exc:
            await responses.put(
                (None, ErrorEnvelope.from_exception(exc, request_id).to_dict())
            )
            return
        ack = Response(
            result={
                "subscribed": True,
                "theta": subscription.theta,
                "window_points": hub.window_points,
                "window_size": hub.window_size,
                "last_seq": hub.last_seq,
            },
            id=request_id,
        )
        events = 0
        try:
            await responses.put((None, ack.to_dict()))
            if subscription.pending_gap is not None:
                gap = StreamEvent(
                    seq=max(spec.resume_from or 0, 0),
                    event=dict(subscription.pending_gap, gap=True),
                    id=request_id,
                )
                await responses.put((None, gap.to_dict()))
            async for snapshot in subscription:
                event = StreamEvent.from_snapshot(
                    snapshot, subscription.theta, subscription.last_seq,
                    request_id,
                )
                await responses.put((None, event.to_dict()))
                events += 1
        except StreamError as exc:
            # The hub dropped this subscriber (it fell behind the bounded
            # queue); surface the reason, same policy as the WS transport.
            await responses.put(
                (None, ErrorEnvelope.from_exception(exc, request_id).to_dict())
            )
        else:
            await responses.put((
                None,
                Response(
                    result={
                        "complete": True,
                        "events": events,
                        "last_seq": subscription.last_seq,
                    },
                    id=request_id,
                ).to_dict(),
            ))
        finally:
            subscription.close()

    async with TsubasaService(
        client, max_workers=max_workers, max_batch=max_batch,
        result_cache=result_cache,
    ) as service:
        printer = loop.create_task(print_responses())
        subscriptions: set[asyncio.Task] = set()
        pump_task = None
        if hub is not None and source is not None:
            pump_task = loop.create_task(
                hub.pump(source, interval=stream_interval)
            )

            def pump_done(task: asyncio.Task, hub=hub) -> None:
                # A dead stream must be loud, and it must end subscriptions
                # (see the identical policy in _serve_http).
                if task.cancelled():
                    return
                exc = task.exception()
                if exc is not None:
                    print(f"stream pump failed: {exc}", file=sys.stderr)
                    if not hub.closed:
                        hub.close()

            pump_task.add_done_callback(pump_done)
        n_lines = 0
        n_rejected = 0
        while True:
            line = await loop.run_in_executor(None, stdin.readline)
            if not line or hangup.is_set():
                # EOF, or the consumer hung up — nobody can observe further
                # responses, so stop submitting work whose results would be
                # computed and discarded.
                break
            line = line.strip()
            if not line:
                continue
            n_lines += 1
            request_id: int | str = n_lines
            try:
                payload = json.loads(line)
                if isinstance(payload, dict) and isinstance(
                    payload.get("id"), (str, int)
                ):
                    request_id = payload["id"]
                request = parse_request(payload)
                if request.spec.op == "subscribe" and (
                    hub is None or hub.closed
                ):
                    raise ServiceError(
                        "subscribe needs a live stream; run tsubasa serve "
                        "--stream-data DATA (or --http and connect to "
                        "/v1/ws)"
                    )
            except (ValueError, TsubasaError) as exc:
                n_rejected += 1
                await responses.put(
                    (None, ErrorEnvelope.from_exception(exc, request_id).to_dict())
                )
                continue
            if request.id is not None:
                request_id = request.id
            if request.spec.op == "subscribe":
                task = loop.create_task(
                    run_subscription(request_id, request.spec)
                )
                subscriptions.add(task)
                task.add_done_callback(subscriptions.discard)
                continue
            task = loop.create_task(answer(request_id, request.spec))
            await responses.put((task, None))
        # Stdin is done; open subscriptions keep streaming until the
        # consumer hangs up or the stream itself ends.
        while subscriptions and not hangup.is_set():
            await asyncio.wait(subscriptions, timeout=0.2)
        for task in list(subscriptions):
            task.cancel()
        if subscriptions:
            await asyncio.gather(*subscriptions, return_exceptions=True)
        if pump_task is not None:
            pump_task.cancel()
            try:
                await pump_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if hub is not None and not hub.closed:
            hub.close()
        await responses.put(None)
        await printer
        stats = service.stats()
        hangup_note = (
            f", {emitted['discarded']} discarded after hangup"
            if emitted["discarded"]
            else ""
        )
        print(
            f"served {emitted['ok']} ok / {emitted['failed']} "
            f"failed ({n_rejected} malformed, {stats.coalesced} coalesced, "
            f"{stats.matrices_computed} matrices computed, "
            f"{stats.result_cache_hits} cache hits, "
            f"{stats.prefetched_windows} windows prefetched"
            f"{hangup_note})",
            file=sys.stderr,
        )
    return 0


def _replay_forever(values, batch_size: int, start: int):
    """An endless simulated live feed: replay the dataset, then loop.

    ``serve --stream-data`` streams the tail beyond the sketched range
    first (genuinely new data), then restarts from the beginning — a
    perpetually updating feed for subscriptions, the way replay demos
    drive the real-time engine, until the server shuts down.
    """
    cursor = start
    while True:
        yield from ReplaySource(values, batch_size, start=cursor)
        cursor = 0


def _parse_listen_address(value: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) → ``(host, port)``."""
    if value.isdigit():
        return "127.0.0.1", int(value)
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise DataError(
            f"--http expects HOST:PORT (or a bare port), got {value!r}"
        )
    return host or "127.0.0.1", int(port)


def _open_stream(client: TsubasaClient, args: argparse.Namespace):
    """Build the ``--stream-data`` live feed: ``(hub, source)`` or Nones."""
    from repro.streams.hub import SnapshotHub

    if not args.stream_data:
        return None, None
    provider = client.provider
    dataset = _load_dataset(args.stream_data)
    if dataset.n_points < provider.window_size:
        raise StreamError(
            f"--stream-data holds {dataset.n_points} points; at least "
            f"one basic window ({provider.window_size}) is needed to "
            "stream"
        )
    start = provider.length
    if start >= dataset.n_points:
        start = 0
    ingestor = StreamIngestor.from_provider(
        provider,
        query_windows=args.stream_windows or provider.n_windows,
        theta=args.stream_theta,
        keep_history=False,
    )
    source = _replay_forever(dataset.values, provider.window_size, start)
    return SnapshotHub(ingestor, max_pending=args.send_buffer), source


async def _serve_http(client: TsubasaClient, args: argparse.Namespace) -> int:
    """The ``serve --http`` loop: socket server + optional live stream."""
    import signal

    from repro.api.server import TsubasaServer

    host, port = _parse_listen_address(args.http)
    service = TsubasaService(
        client,
        max_workers=args.workers,
        max_batch=args.max_batch,
        result_cache=args.result_cache,
    )
    hub, source = _open_stream(client, args)
    server = TsubasaServer(
        service,
        hub=hub,
        max_inflight=args.max_inflight,
        send_buffer=args.send_buffer,
        max_inflight_total=args.max_inflight_total or None,
        auth_token=args.auth_token or None,
    )
    try:
        await server.start(host=host, port=port)
    except OSError as exc:
        # Bind failures (port in use, privileged port) get the CLI's
        # one-line error contract, not a traceback.
        raise ServiceError(f"cannot listen on {host}:{port}: {exc}") from exc
    endpoints = "POST /v1/query /v1/batch, GET /v1/stats /healthz, WS /v1/ws"
    protocols = "protocols 1, 2" if server.enable_v2 else "protocol 1"
    print(
        f"serving on http://{server.host}:{server.port} "
        f"({protocols}; {endpoints})",
        file=sys.stderr,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # platforms without loop signal handlers
    pump_task = None
    if hub is not None and source is not None:
        pump_task = loop.create_task(
            hub.pump(source, interval=args.stream_interval)
        )

        def pump_done(task: asyncio.Task, hub=hub) -> None:
            # A dead stream must be loud, and it must end subscriptions
            # (otherwise subscribers hang with an ack and no events, and
            # the failure is only discovered at shutdown).
            if task.cancelled():
                return
            exc = task.exception()
            if exc is not None:
                print(f"stream pump failed: {exc}", file=sys.stderr)
                if not hub.closed:
                    hub.close()

        pump_task.add_done_callback(pump_done)
    try:
        await stop.wait()
    except KeyboardInterrupt:
        pass
    if pump_task is not None:
        pump_task.cancel()
        try:
            await pump_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
    if hub is not None:
        hub.close()
    await server.aclose()
    stats = service.stats()
    print(
        f"served {stats.completed} ok / {stats.failed} failed "
        f"({stats.coalesced} coalesced, {stats.matrices_computed} matrices "
        f"computed, {stats.result_cache_hits} cache hits, "
        f"{server.stats['subscriptions_opened']} subscriptions, "
        f"{server.stats['slow_consumer_disconnects']} slow-consumer "
        "disconnects)",
        file=sys.stderr,
    )
    return 0


def _serve_supervised(args: argparse.Namespace) -> int:
    """``serve --http --workers N``: N ``SO_REUSEPORT`` acceptor processes.

    The parent validates the store, spawns the supervisor, prints the
    resolved address, and sleeps until SIGTERM/SIGINT — then drains every
    worker before returning.
    """
    import signal
    import threading

    from repro.api.supervisor import AcceptorSupervisor, WorkerConfig

    if args.stream_data:
        raise ServiceError(
            "--stream-data needs a single process (the live stream and its "
            "subscriptions are in-process state); drop --workers"
        )
    host, port = _parse_listen_address(args.http)
    # Fail fast in the parent with the CLI's one-line error contract
    # instead of a 60s worker-startup timeout.
    with _open_store(args.store):
        pass
    config = WorkerConfig(
        store=args.store,
        backend=args.backend,
        cache_windows=args.cache_windows,
        data=args.data,
        prefix=args.prefix,
        host=host,
        service_kwargs={
            "max_workers": 1,
            "max_batch": args.max_batch,
            "result_cache": args.result_cache,
        },
        server_kwargs={
            "max_inflight": args.max_inflight,
            "send_buffer": args.send_buffer,
            "max_inflight_total": args.max_inflight_total or None,
            "auth_token": args.auth_token or None,
        },
    )
    supervisor = AcceptorSupervisor(config, workers=args.workers, port=port)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except (ValueError, OSError):
            pass  # not the main thread, or an unsupported platform
    endpoints = "POST /v1/query /v1/batch, GET /v1/stats /healthz, WS /v1/ws"
    try:
        with supervisor:
            print(
                f"serving on http://{supervisor.address} "
                f"({args.workers} SO_REUSEPORT workers; protocols 1, 2; "
                f"{endpoints})",
                file=sys.stderr,
                flush=True,
            )
            try:
                # Poll so a tripped crash-loop guard ends the process
                # instead of supervising an ever-shrinking worker pool.
                while not stop.wait(0.2):
                    if supervisor.failed.is_set():
                        break
            except KeyboardInterrupt:
                pass
    except OSError as exc:
        raise ServiceError(f"cannot listen on {host}:{port}: {exc}") from exc
    if supervisor.failed.is_set():
        print(
            f"supervisor failed: {supervisor.failure_reason} "
            f"({supervisor.restarts} restart(s) attempted)",
            file=sys.stderr,
        )
        return 1
    print(
        f"stopped {args.workers} worker(s) "
        f"({supervisor.restarts} restart(s))",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise DataError("--workers must be >= 1")
    if args.http and args.workers > 1:
        return _serve_supervised(args)
    with _open_store(args.store) as store:
        client = _open_client(store, args)
        if args.http:
            return asyncio.run(_serve_http(client, args))
        hub, source = _open_stream(client, args)
        return asyncio.run(
            _serve_jsonl(
                client,
                sys.stdin,
                sys.stdout,
                max_workers=args.workers,
                max_batch=args.max_batch,
                max_pending=args.max_pending,
                result_cache=args.result_cache,
                hub=hub,
                source=source,
                stream_interval=args.stream_interval,
                send_buffer=args.send_buffer,
            )
        )


def _cmd_trim(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        if not isinstance(store, MmapStore):
            raise StorageError(
                "trim requires a memory-mapped store directory (SQLite "
                "stores reclaim space with VACUUM)"
            )
        before = store.size_bytes()
        reclaimed = store.trim()
        count = store.window_count()
        size = store.size_bytes()
    print(
        f"trimmed {args.store}: reclaimed {reclaimed / 1e6:.2f} MB "
        f"({before / 1e6:.2f} -> {size / 1e6:.2f} MB, "
        f"{count} committed windows)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``tsubasa`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="tsubasa",
        description="Climate network construction on historical and "
                    "real-time data (SIGMOD 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--stations", type=int, default=157)
    gen.add_argument("--points", type=int, default=8760)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    sk = sub.add_parser("sketch", help="sketch a dataset into a store")
    sk.add_argument("--data", required=True)
    sk.add_argument("--window-size", type=int, required=True)
    sk.add_argument("--store", required=True)
    sk.add_argument("--chunk-rows", type=int, default=0,
                    help="memory-bounded chunked build: covariance row-block "
                         "height (0 = materialize the whole sketch)")
    sk.add_argument("--store-backend", choices=("sqlite", "mmap"),
                    default="sqlite",
                    help="on-disk layout: SQLite database file or zero-copy "
                         "memory-mapped array directory")
    sk.add_argument("--prefix", action="store_true",
                    help="also persist prefix-aggregate tables (mmap stores "
                         "only): contiguous queries then cost O(n^2) "
                         "regardless of window count")
    sk.set_defaults(func=_cmd_sketch)

    cv = sub.add_parser("convert",
                        help="migrate a sketch store between layouts")
    cv.add_argument("--src", required=True,
                    help="source store (layout auto-detected)")
    cv.add_argument("--dst", required=True)
    cv.add_argument("--dst-backend", choices=("sqlite", "mmap"),
                    required=True,
                    help="destination layout")
    cv.add_argument("--batch-size", type=int, default=64,
                    help="window records per migration batch")
    cv.add_argument("--prefix", action="store_true",
                    help="build prefix-aggregate tables on the destination "
                         "(mmap only; automatic when the source store "
                         "already has them)")
    cv.set_defaults(func=_cmd_convert)

    def add_backend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=("memory", "store", "mmap"),
                       default="memory",
                       help="sketch backend: load whole sketch up front "
                            "(memory), read windows lazily with an LRU "
                            "cache (store), or serve zero-copy slices of a "
                            "memory-mapped store (mmap)")
        p.add_argument("--cache-windows", type=int, default=64,
                       help="store backend: LRU capacity in window records")
        p.add_argument("--data", default=None,
                       help="raw dataset enabling arbitrary (non-aligned) "
                            "query windows")
        p.add_argument("--prefix", action="store_true",
                       help="serve contiguous window ranges from "
                            "prefix-aggregate tables: O(n^2) per query "
                            "independent of the range length (the mmap "
                            "backend uses persisted tables automatically)")

    qr = sub.add_parser("query", help="build a network from a sketch store")
    qr.add_argument("--store", required=True)
    qr.add_argument("--end", type=int, required=True)
    qr.add_argument("--length", type=int, required=True)
    qr.add_argument("--theta", type=float, default=0.75)
    qr.add_argument("--alpha", type=float, default=None,
                    help="derive theta from a significance level instead")
    qr.add_argument("--max-edges", type=int, default=10)
    qr.add_argument("--parallel", type=int, default=0,
                    help="fan the matrix computation out over N worker "
                         "processes (0 = serial)")
    add_backend_args(qr)
    qr.set_defaults(func=_cmd_query)

    tk = sub.add_parser("topk", help="most correlated pairs in a window")
    tk.add_argument("--store", required=True)
    tk.add_argument("--end", type=int, required=True)
    tk.add_argument("--length", type=int, required=True)
    tk.add_argument("--k", type=int, default=10)
    tk.add_argument("--anticorrelated", action="store_true")
    add_backend_args(tk)
    tk.set_defaults(func=_cmd_topk)

    sw = sub.add_parser("sweep", help="networks over a sliding window sweep")
    sw.add_argument("--store", required=True)
    sw.add_argument("--windows", type=int, required=True,
                    help="query window length in basic windows")
    sw.add_argument("--stride", type=int, default=1)
    sw.add_argument("--theta", type=float, default=0.75)
    sw.set_defaults(func=_cmd_sweep)

    mp = sub.add_parser("map", help="ASCII degree map of a network")
    mp.add_argument("--data", required=True)
    mp.add_argument("--window-size", type=int, required=True)
    mp.add_argument("--end", type=int, required=True)
    mp.add_argument("--length", type=int, required=True)
    mp.add_argument("--theta", type=float, default=0.75)
    mp.add_argument("--width", type=int, default=60)
    mp.add_argument("--height", type=int, default=20)
    mp.set_defaults(func=_cmd_map)

    st = sub.add_parser("stream", help="simulate real-time updates")
    st.add_argument("--data", required=True)
    st.add_argument("--window-size", type=int, required=True)
    st.add_argument("--initial", type=int, required=True)
    st.add_argument("--theta", type=float, default=0.75)
    st.add_argument("--updates", type=int, default=10)
    st.set_defaults(func=_cmd_stream)

    info = sub.add_parser("info", help="describe a sketch store")
    info.add_argument("--store", required=True)
    info.set_defaults(func=_cmd_info)

    tr = sub.add_parser(
        "trim",
        help="compact an mmap sketch store written out of order",
        description="Truncate trailing unwritten capacity (and matching "
                    "prefix-table rows) left by out-of-order or interrupted "
                    "writes. Runs behind the store's fsync/generation "
                    "barrier; interior holes are preserved (window indices "
                    "are semantic).",
    )
    tr.add_argument("--store", required=True)
    tr.set_defaults(func=_cmd_trim)

    sv = sub.add_parser(
        "serve",
        help="long-lived query service (JSON-lines stdin, or --http socket)",
        description="By default, read one wire-protocol request frame per "
                    "input line ({'protocol': 1, 'id': ..., 'spec': {...}} "
                    "or the inline legacy form) and write one completion "
                    "envelope per line. With --http HOST:PORT, serve the "
                    "same protocol over HTTP/1.1 (POST /v1/query, "
                    "/v1/batch, GET /v1/stats, /healthz) and WebSockets "
                    "(/v1/ws, including streaming 'subscribe' ops). "
                    "Concurrent requests over the same window share a "
                    "single matrix computation.",
    )
    sv.add_argument("--store", required=True)
    sv.add_argument("--workers", type=int, default=1,
                    help="stdin mode: executor threads computing matrices "
                         "(keep 1 for --backend store). With --http, N > 1 "
                         "instead spawns N SO_REUSEPORT acceptor processes "
                         "sharing the port, each with its own event loop "
                         "and service (restarted on crash, drained on "
                         "SIGTERM)")
    sv.add_argument("--max-batch", type=int, default=64,
                    help="queued requests drained per dispatch round (the "
                         "unit of batched store prefetch)")
    sv.add_argument("--max-pending", type=int, default=256,
                    help="responses allowed ahead of the printer before the "
                         "reader pauses stdin (bounds in-flight memory)")
    sv.add_argument("--result-cache", type=int, default=64,
                    help="finished matrices kept in a bounded LRU and "
                         "replayed to repeat queries (0 disables)")
    sv.add_argument("--http", metavar="HOST:PORT", default=None,
                    help="serve over a socket instead of stdin/stdout: "
                         "HTTP/1.1 + WebSockets on this address (port 0 "
                         "binds an ephemeral port, announced on stderr)")
    sv.add_argument("--max-inflight", type=int, default=64,
                    help="HTTP/WS mode: concurrent requests allowed per "
                         "connection before excess ones are rejected")
    sv.add_argument("--send-buffer", type=int, default=64,
                    help="HTTP/WS mode: per-client send queue bound in "
                         "frames; clients that fall further behind are "
                         "disconnected (slow-consumer policy)")
    sv.add_argument("--max-inflight-total", type=int, default=0,
                    help="HTTP/WS mode: server-wide cap on concurrently "
                         "executing requests; excess requests are shed "
                         "with an 'overloaded' error envelope (HTTP 503). "
                         "0 = unlimited. Per acceptor process with "
                         "--workers N")
    sv.add_argument("--auth-token", default=None,
                    help="HTTP/WS mode: require 'Authorization: Bearer "
                         "<token>' on every request except /healthz "
                         "(plaintext on the wire: terminate TLS in front, "
                         "see README)")
    sv.add_argument("--stream-data", default=None,
                    help="replay this dataset through a realtime engine as "
                         "an endless simulated live feed (tail beyond the "
                         "sketched range first, then looping) so clients "
                         "can 'subscribe' to network updates — over "
                         "WebSockets with --http, or as JSON lines on "
                         "stdout in stdin mode")
    sv.add_argument("--stream-theta", type=float, default=0.75,
                    help="base threshold of the realtime stream "
                         "(subscriptions may ask for higher)")
    sv.add_argument("--stream-windows", type=int, default=0,
                    help="standing query length in basic windows "
                         "(0 = every window the store holds)")
    sv.add_argument("--stream-interval", type=float, default=0.05,
                    help="pause between replayed stream batches, in seconds")
    add_backend_args(sv)
    sv.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library failures surface as a one-line ``error: ...`` message and a
    per-subclass exit code (see :func:`exit_code_for`), never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TsubasaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())
