"""DFT-based approximate correlation (the StatStream-style competitor)."""

from repro.approx.combine import (
    eq5_correlation,
    statstream_correlation,
    window_statistics_spread,
)
from repro.approx.projection import (
    ProjectionSketch,
    build_projection_sketch,
    projection_correlation,
)
from repro.approx.dft import (
    dft_coefficients,
    epsilon_for_threshold,
    normalize_windows,
    pairwise_sq_distances,
)
from repro.approx.network import TsubasaApproximate, approximate_correlation_matrix
from repro.approx.realtime import ApproxSlidingState
from repro.approx.sketch import ApproxSketch, build_approx_sketch

__all__ = [
    "eq5_correlation",
    "statstream_correlation",
    "window_statistics_spread",
    "ProjectionSketch",
    "build_projection_sketch",
    "projection_correlation",
    "dft_coefficients",
    "epsilon_for_threshold",
    "normalize_windows",
    "pairwise_sq_distances",
    "TsubasaApproximate",
    "approximate_correlation_matrix",
    "ApproxSlidingState",
    "ApproxSketch",
    "build_approx_sketch",
]
