"""Sketching for the DFT-based approximation (Algorithm 1, lines 8–10).

The approximate sketch stores, per basic window:

* per-series mean and population std (needed by Eq. 5 to recombine windows
  with heterogeneous statistics — exactly the quantities TSUBASA keeps), and
* per-pair squared distances between the first ``n`` DFT coefficients of the
  normalized windows (the ``d_j`` of §2.2/§3.2).

Sketch-time cost is dominated by the DFT (``O(B^2)`` per window per series
under the paper's cost model — see :mod:`repro.approx.dft`) plus the pairwise
distance products, which is why the approximate sketch time grows with the
basic window size (Fig. 5b) while TSUBASA's stays nearly flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.dft import (
    coefficient_count,
    dft_coefficients,
    normalize_windows,
    pairwise_sq_distances,
)
from repro.core.segmentation import BasicWindowPlan
from repro.core.stats import series_window_stats
from repro.exceptions import DataError, SketchError

__all__ = ["ApproxSketch", "build_approx_sketch", "sketch_block"]


@dataclass
class ApproxSketch:
    """Pre-computed DFT-based statistics for a series collection.

    Attributes:
        names: Series identifiers, in row order.
        window_size: Basic window size ``B``.
        n_coeffs: Number of DFT coefficients used per window.
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        dists_sq: Per-window all-pair squared coefficient distances, shape
            ``(ns, n, n)``.
        sizes: Per-window sizes, shape ``(ns,)``.
    """

    names: list[str]
    window_size: int
    n_coeffs: int
    means: np.ndarray
    stds: np.ndarray
    dists_sq: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        n, ns = self.means.shape
        if len(self.names) != n:
            raise SketchError(f"{len(self.names)} names for {n} sketched series")
        if self.stds.shape != (n, ns):
            raise SketchError(f"stds shape {self.stds.shape} != ({n}, {ns})")
        if self.dists_sq.shape != (ns, n, n):
            raise SketchError(
                f"dists_sq shape {self.dists_sq.shape} != ({ns}, {n}, {n})"
            )
        if self.sizes.shape != (ns,):
            raise SketchError(f"sizes shape {self.sizes.shape} != ({ns},)")

    @property
    def n_series(self) -> int:
        """Number of sketched series."""
        return self.means.shape[0]

    @property
    def n_windows(self) -> int:
        """Number of sketched basic windows."""
        return self.means.shape[1]

    def window_correlations(self) -> np.ndarray:
        """Per-window approximate correlations ``c_j = 1 - d_j^2 / 2``."""
        return 1.0 - 0.5 * self.dists_sq

    def select(self, window_indices: np.ndarray) -> "ApproxSketch":
        """Restrict the sketch to a subset of basic windows."""
        idx = np.asarray(window_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_windows):
            raise SketchError(
                f"window indices out of range [0, {self.n_windows}): {idx}"
            )
        return ApproxSketch(
            names=self.names,
            window_size=self.window_size,
            n_coeffs=self.n_coeffs,
            means=self.means[:, idx],
            stds=self.stds[:, idx],
            dists_sq=self.dists_sq[idx],
            sizes=self.sizes[idx],
        )


def sketch_block(
    block: np.ndarray, n_coeffs: int, method: str = "direct"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sketch one raw basic-window block for the approximate method.

    Args:
        block: ``(n, B)`` raw values of one basic window.
        n_coeffs: DFT coefficients to keep.
        method: DFT evaluation method (see :func:`dft_coefficients`).

    Returns:
        ``(means, stds, dists_sq)`` for the block.
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2 or block.shape[1] == 0:
        raise DataError(f"expected a non-empty (n, B) block, got {block.shape}")
    normalized = normalize_windows(block)
    coeffs = dft_coefficients(normalized, n_coeffs, method=method)
    return block.mean(axis=1), block.std(axis=1), pairwise_sq_distances(coeffs)


def build_approx_sketch(
    data: np.ndarray,
    window_size: int,
    n_coeffs: int | None = None,
    coeff_fraction: float | None = None,
    names: list[str] | None = None,
    method: str = "direct",
) -> ApproxSketch:
    """Algorithm 1 with the DFT lines (8–10) enabled.

    Exactly one of ``n_coeffs`` / ``coeff_fraction`` may be given; the default
    is all coefficients (``n_coeffs = B``), where the approximation is exact.

    Args:
        data: ``(n, L)`` matrix of synchronized series.
        window_size: Basic window size ``B``.
        n_coeffs: Absolute number of DFT coefficients to keep.
        coeff_fraction: Fraction of ``B`` to keep (e.g. 0.75 for the paper's
            75% configuration).
        names: Optional series identifiers.
        method: DFT evaluation method (see :func:`dft_coefficients`).

    Returns:
        The complete :class:`ApproxSketch`.
    """
    if n_coeffs is not None and coeff_fraction is not None:
        raise DataError("give at most one of n_coeffs / coeff_fraction")
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    plan = BasicWindowPlan(length=matrix.shape[1], window_size=window_size)
    boundaries = plan.boundaries
    if coeff_fraction is not None:
        n_coeffs = coefficient_count(window_size, coeff_fraction)
    if n_coeffs is None:
        n_coeffs = window_size
    if not 1 <= n_coeffs <= window_size:
        raise DataError(f"n_coeffs must be in [1, {window_size}], got {n_coeffs}")

    means, stds, sizes = series_window_stats(matrix, boundaries)
    n_series = matrix.shape[0]
    n_windows = sizes.size
    dists = np.empty((n_windows, n_series, n_series), dtype=np.float64)
    for j in range(n_windows):
        block = matrix[:, boundaries[j] : boundaries[j + 1]]
        normalized = normalize_windows(block)
        # A short trailing window may have fewer points than n_coeffs.
        k = min(n_coeffs, block.shape[1])
        coeffs = dft_coefficients(normalized, k, method=method)
        dists[j] = pairwise_sq_distances(coeffs)

    if names is None:
        names = [f"s{i:04d}" for i in range(n_series)]
    return ApproxSketch(
        names=list(names),
        window_size=window_size,
        n_coeffs=n_coeffs,
        means=means,
        stds=stds,
        dists_sq=dists,
        sizes=sizes,
    )
