"""Eq. 6: incremental update of the approximate correlation (real-time).

The approximate competitor's real-time path mirrors TSUBASA's (Lemma 2) but
each entering basic window must be normalized and transformed (``O(B^2)``
DFT under the paper's cost model) before its pairwise coefficient distances
can be folded in — which is exactly why the approximate update is at least an
order of magnitude slower than TSUBASA's in Fig. 5d.

Implementation note: Eq. 6 is Lemma 2 with every per-window covariance
replaced by its DFT estimate ``sigma_x sigma_y (1 - d^2/2)``. We therefore
reuse :class:`~repro.core.lemma2.SlidingCorrelationState` over pseudo
covariances: the sliding algebra is identical, only the per-window sketch of
the entering window differs.
"""

from __future__ import annotations

import numpy as np

from repro.approx.combine import pseudo_covariances
from repro.approx.sketch import ApproxSketch, sketch_block
from repro.core.lemma2 import SlidingCorrelationState
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.sketch import Sketch
from repro.exceptions import SketchError, StreamError

__all__ = ["ApproxSlidingState"]


class ApproxSlidingState:
    """Sliding approximate correlation over the most recent basic windows.

    Args:
        sketch: Approximate sketch whose trailing windows seed the query
            window.
        n_windows: Number of trailing basic windows in the query window.
        dft_method: DFT evaluation for entering windows (``"direct"`` matches
            the paper's cost model; ``"fft"`` for speed).
    """

    def __init__(
        self, sketch: ApproxSketch, n_windows: int, dft_method: str = "direct"
    ) -> None:
        if n_windows <= 0:
            raise StreamError("query window must cover at least one basic window")
        if n_windows > sketch.n_windows:
            raise SketchError(
                f"query window of {n_windows} windows exceeds sketched "
                f"{sketch.n_windows}"
            )
        start = sketch.n_windows - n_windows
        idx = np.arange(start, sketch.n_windows)
        seed = Sketch(
            names=list(sketch.names),
            window_size=sketch.window_size,
            means=sketch.means[:, idx],
            stds=sketch.stds[:, idx],
            covs=pseudo_covariances(sketch, idx),
            sizes=sketch.sizes[idx],
        )
        self._n_coeffs = sketch.n_coeffs
        self._dft_method = dft_method
        self._state = SlidingCorrelationState(seed, n_windows)

    @property
    def names(self) -> list[str]:
        """Series identifiers, in matrix order."""
        return self._state.names

    @property
    def n_windows(self) -> int:
        """Number of basic windows in the sliding query window."""
        return self._state.n_windows

    def slide_raw(self, block: np.ndarray) -> None:
        """Sketch an entering raw block (normalize + DFT + distances) and slide.

        This is the per-update work Eq. 6 charges the approximate method for:
        the DFT of the newest basic window dominates.
        """
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[0] != self._state.n_series:
            raise StreamError(
                f"expected a ({self._state.n_series}, B) block, got {block.shape}"
            )
        k = min(self._n_coeffs, block.shape[1])
        mean, std, dist_sq = sketch_block(block, k, method=self._dft_method)
        pseudo_cov = np.outer(std, std) * (1.0 - 0.5 * dist_sq)
        self._state.slide(mean, std, pseudo_cov, block.shape[1])

    def correlation_matrix(self) -> CorrelationMatrix:
        """Approximate correlation matrix of the current query window."""
        return CorrelationMatrix(
            names=list(self._state.names),
            values=self._state.correlation_matrix(),
        )

    def network(self, theta: float) -> ClimateNetwork:
        """Approximate network for threshold ``theta`` (Eq. 4 semantics)."""
        return ClimateNetwork.from_matrix(self.correlation_matrix(), theta)
