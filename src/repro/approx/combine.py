"""Combining per-window DFT distances into query-window correlations.

Two strategies from the paper:

* **StatStream averaging** (§2.2, §4.1): assume every basic window has
  statistics similar to the query window and average the per-window
  correlations ``c_j = 1 - d_j^2 / 2`` — i.e. the query correlation estimate
  is ``1 - mean(d_j^2) / 2``. Cheap, but biased whenever window statistics
  drift (uncooperative series).
* **Eq. 5 (TSUBASA-style combination)**: substitute the DFT estimate
  ``sigma_xj * sigma_yj * (1 - d_j^2 / 2)`` for the per-window covariance in
  Lemma 1, correctly re-weighting windows by their means/stds. With all
  coefficients (``d_j`` exact) this equals the exact correlation.

Both return full matrices; Algorithm 4's thresholding (with the Eq. 4
no-false-negative radius) lives in :mod:`repro.approx.network`.
"""

from __future__ import annotations

import numpy as np

from repro.approx.sketch import ApproxSketch
from repro.core.lemma1 import combine_matrix
from repro.exceptions import SketchError

__all__ = [
    "statstream_correlation",
    "eq5_correlation",
    "pseudo_covariances",
    "window_statistics_spread",
]


def window_statistics_spread(
    sketch: ApproxSketch, window_indices: np.ndarray
) -> float:
    """How much basic-window statistics drift across a query window.

    Algorithm 4 (line 6) averages per-window distances only when "stats of
    basic windows ≃ w" — the similar-statistics assumption of StatStream.
    This scores the assumption: for each series, the dispersion of its
    per-window means (relative to its typical window std) and the relative
    dispersion of its per-window stds; the score is the maximum over series
    of the larger of the two. Near 0 means cooperative/homogeneous windows;
    values around 1 or above mean the assumption is badly violated and Eq. 5
    should be used.

    Args:
        sketch: The approximate sketch.
        window_indices: Basic windows forming the query window.

    Returns:
        A non-negative drift score (0 for perfectly homogeneous windows).
    """
    idx = _check_selection(sketch, window_indices)
    means = sketch.means[:, idx]
    stds = sketch.stds[:, idx]
    typical_std = np.maximum(stds.mean(axis=1), 1e-12)
    mean_drift = means.std(axis=1) / typical_std
    std_drift = stds.std(axis=1) / typical_std
    return float(np.maximum(mean_drift, std_drift).max())


def _check_selection(sketch: ApproxSketch, window_indices: np.ndarray) -> np.ndarray:
    idx = np.asarray(window_indices, dtype=np.int64)
    if idx.size == 0:
        raise SketchError("query window must cover at least one basic window")
    if idx.min() < 0 or idx.max() >= sketch.n_windows:
        raise SketchError(f"window indices out of range [0, {sketch.n_windows})")
    return idx


def statstream_correlation(
    sketch: ApproxSketch, window_indices: np.ndarray
) -> np.ndarray:
    """StatStream estimate: average per-window correlations over the query.

    Args:
        sketch: The approximate sketch.
        window_indices: Basic windows forming the (aligned) query window.

    Returns:
        ``(n, n)`` approximate correlation matrix with unit diagonal.
    """
    idx = _check_selection(sketch, window_indices)
    mean_dist_sq = sketch.dists_sq[idx].mean(axis=0)
    corr = 1.0 - 0.5 * mean_dist_sq
    np.fill_diagonal(corr, 1.0)
    return corr


def pseudo_covariances(
    sketch: ApproxSketch, window_indices: np.ndarray
) -> np.ndarray:
    """Per-window covariance estimates ``sigma_x sigma_y (1 - d^2/2)`` (Eq. 5).

    Args:
        sketch: The approximate sketch.
        window_indices: Basic windows to extract.

    Returns:
        ``(len(idx), n, n)`` estimated covariance matrices.
    """
    idx = _check_selection(sketch, window_indices)
    stds = sketch.stds[:, idx]
    # Per-window outer products of stds, all windows at once.
    sigma = np.einsum("aj,bj->jab", stds, stds)
    return sigma * (1.0 - 0.5 * sketch.dists_sq[idx])


def eq5_correlation(sketch: ApproxSketch, window_indices: np.ndarray) -> np.ndarray:
    """Eq. 5: window-statistics-aware combination of DFT distances.

    Args:
        sketch: The approximate sketch.
        window_indices: Basic windows forming the (aligned) query window.

    Returns:
        ``(n, n)`` approximate correlation matrix; exact when the sketch was
        built with all coefficients.
    """
    idx = _check_selection(sketch, window_indices)
    return combine_matrix(
        means=sketch.means[:, idx],
        stds=sketch.stds[:, idx],
        covs=pseudo_covariances(sketch, idx),
        sizes=sketch.sizes[idx],
    )
