"""DFT primitives for the StatStream-style approximation (§2.2, Eq. 2–3).

The approximate competitor normalizes each basic window, computes its DFT,
and keeps the first ``n`` coefficients; the Euclidean distance between two
windows' coefficient prefixes under-estimates the distance between the
normalized windows (Parseval), which maps to an *over*-estimate of their
correlation — hence false positives but never false negatives (Eq. 4).

Normalization convention: we scale to **unit norm**,
``x_hat = (x - mean) / (std * sqrt(B))``, so that ``||x_hat|| = 1`` and the
correlation identity of Eq. 3 holds exactly as printed::

    c = 1 - d(x_hat, y_hat)^2 / 2

The DFT uses the paper's unitary scaling (Eq. 2 has a ``1/sqrt(k)`` factor),
so distances are preserved between windows and coefficient vectors; with all
``B`` coefficients the approximation is exact.

Cost model: the paper's analysis (and the systems it compares against) price
the DFT at ``O(B^2)`` per window, and the measured sketch-time curves
(Fig. 5b, 6a) depend on that. :func:`dft_coefficients` therefore defaults to
the direct ``O(B^2)`` matrix-product transform; ``method="fft"`` switches to
``numpy``'s FFT when only the values (not the cost shape) matter.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "normalize_windows",
    "dft_matrix",
    "dft_coefficients",
    "coefficient_count",
    "pairwise_sq_distances",
    "distance_to_correlation",
    "correlation_to_distance_sq",
    "epsilon_for_threshold",
]

_DFT_CACHE: dict[int, np.ndarray] = {}


def normalize_windows(blocks: np.ndarray) -> np.ndarray:
    """Normalize windows to zero mean and unit norm (rows are windows).

    Args:
        blocks: ``(n, B)`` matrix; each row is one window.

    Returns:
        ``(n, B)`` matrix with zero-mean unit-norm rows; constant windows
        normalize to all-zero rows (their correlation contribution is zero).
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 2:
        raise DataError(f"expected (n, B) windows, got shape {blocks.shape}")
    size = blocks.shape[1]
    mean = blocks.mean(axis=1, keepdims=True)
    std = blocks.std(axis=1, keepdims=True)
    scale = std * np.sqrt(size)
    out = np.zeros_like(blocks)
    np.divide(blocks - mean, scale, out=out, where=scale > 0.0)
    return out


def dft_matrix(size: int) -> np.ndarray:
    """Unitary DFT matrix of the given size (cached per size)."""
    if size <= 0:
        raise DataError(f"DFT size must be positive, got {size}")
    cached = _DFT_CACHE.get(size)
    if cached is None:
        grid = np.arange(size)
        cached = np.exp(-2j * np.pi * np.outer(grid, grid) / size) / np.sqrt(size)
        _DFT_CACHE[size] = cached
    return cached


def dft_coefficients(
    windows: np.ndarray, n_coeffs: int, method: str = "direct"
) -> np.ndarray:
    """First ``n`` unitary DFT coefficients of each (already normalized) row.

    Args:
        windows: ``(n, B)`` matrix of normalized windows.
        n_coeffs: How many leading coefficients to keep (``1..B``).
        method: ``"direct"`` for the ``O(B^2)`` transform the paper's cost
            model assumes; ``"fft"`` for ``numpy.fft`` (same values).

    Returns:
        Complex ``(n, n_coeffs)`` coefficient matrix.
    """
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 2:
        raise DataError(f"expected (n, B) windows, got shape {windows.shape}")
    size = windows.shape[1]
    if not 1 <= n_coeffs <= size:
        raise DataError(f"n_coeffs must be in [1, {size}], got {n_coeffs}")
    if method == "direct":
        transform = dft_matrix(size)[:, :n_coeffs]
        return windows @ transform
    if method == "fft":
        return np.fft.fft(windows, axis=1)[:, :n_coeffs] / np.sqrt(size)
    raise DataError(f"unknown DFT method {method!r}")


def coefficient_count(window_size: int, fraction: float) -> int:
    """Number of coefficients for a fraction of the window (e.g. the 75% runs)."""
    if not 0.0 < fraction <= 1.0:
        raise DataError(f"fraction must be in (0, 1], got {fraction}")
    return max(1, int(round(window_size * fraction)))


def pairwise_sq_distances(coeffs: np.ndarray) -> np.ndarray:
    """All-pair squared Euclidean distances between coefficient rows.

    Uses the Gram-matrix identity ``d_ij^2 = g_ii + g_jj - 2 Re(g_ij)`` so the
    whole ``(n, n)`` distance matrix is one complex matmul.

    Args:
        coeffs: Complex ``(n, k)`` coefficient matrix.

    Returns:
        Real ``(n, n)`` matrix of squared distances (zero diagonal).
    """
    coeffs = np.asarray(coeffs)
    gram = coeffs @ coeffs.conj().T
    norms = np.real(np.diag(gram))
    dists = norms[:, None] + norms[None, :] - 2.0 * np.real(gram)
    np.maximum(dists, 0.0, out=dists)
    np.fill_diagonal(dists, 0.0)
    return dists


def distance_to_correlation(dist_sq: np.ndarray) -> np.ndarray:
    """Eq. 3: correlation from squared distance of unit-norm windows."""
    return 1.0 - 0.5 * np.asarray(dist_sq)


def correlation_to_distance_sq(corr: np.ndarray) -> np.ndarray:
    """Inverse of Eq. 3: squared distance from correlation."""
    return 2.0 * (1.0 - np.asarray(corr))


def epsilon_for_threshold(theta: float) -> float:
    """Eq. 4 pruning radius for threshold ``theta`` (unit-norm convention).

    ``Corr >= theta  ⇒  d^2 <= 2 * (1 - theta)``; because coefficient-prefix
    distances under-estimate true distances, testing the prefix distance
    against this radius yields a superset of the true edge set (no false
    negatives).

    Returns:
        The *squared* distance radius ``2 * (1 - theta)``.
    """
    if not -1.0 <= theta <= 1.0:
        raise DataError(f"theta must be in [-1, 1], got {theta}")
    return 2.0 * (1.0 - theta)
