"""Network-Approximate (Algorithm 4): approximate climate networks.

Builds a network from an :class:`~repro.approx.sketch.ApproxSketch` over an
aligned query window. Two combination strategies are offered (Algorithm 4,
lines 6–9): StatStream averaging when per-window statistics resemble the
query window's, and Eq. 5 otherwise. Thresholding follows Eq. 4: a pair is an
edge when its estimated distance is within the pruning radius, which (because
coefficient prefixes under-estimate distances) yields a superset of the exact
network — false positives, never false negatives.
"""

from __future__ import annotations

import numpy as np

from repro.approx.combine import eq5_correlation, statstream_correlation
from repro.approx.sketch import ApproxSketch
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.segmentation import QueryWindow
from repro.exceptions import DataError

__all__ = ["approximate_correlation_matrix", "TsubasaApproximate"]


def approximate_correlation_matrix(
    sketch: ApproxSketch,
    window_indices: np.ndarray,
    method: str = "eq5",
    drift_tolerance: float = 0.25,
) -> np.ndarray:
    """Approximate all-pairs correlation over an aligned query window.

    Args:
        sketch: The approximate sketch.
        window_indices: Basic windows forming the query window.
        method: ``"eq5"`` (statistics-aware, §3.2), ``"average"``
            (StatStream's similar-statistics assumption, §2.2), or
            ``"auto"`` — Algorithm 4's dispatch: average when the windows'
            statistics are homogeneous, Eq. 5 otherwise.
        drift_tolerance: Homogeneity cutoff for ``"auto"`` (see
            :func:`~repro.approx.combine.window_statistics_spread`).

    Returns:
        ``(n, n)`` approximate correlation matrix.
    """
    if method == "auto":
        from repro.approx.combine import window_statistics_spread

        drift = window_statistics_spread(sketch, window_indices)
        method = "average" if drift <= drift_tolerance else "eq5"
    if method == "eq5":
        return eq5_correlation(sketch, window_indices)
    if method == "average":
        return statstream_correlation(sketch, window_indices)
    raise DataError(f"unknown combination method {method!r}")


class TsubasaApproximate:
    """The DFT-based approximate engine (the paper's competitor).

    Args:
        sketch: A pre-built :class:`ApproxSketch`.
        coordinates: Optional node positions attached to networks.
    """

    def __init__(
        self,
        sketch: ApproxSketch,
        coordinates: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        self._sketch = sketch
        self._coordinates = coordinates
        self._client = None

    @property
    def sketch(self) -> ApproxSketch:
        """The underlying approximate sketch."""
        return self._sketch

    @property
    def client(self):
        """The declarative query client this engine delegates to (lazy)."""
        if self._client is None:
            from repro.api.client import TsubasaClient

            self._client = TsubasaClient(
                approx_sketch=self._sketch, coordinates=self._coordinates
            )
        return self._client

    def _window_spec(self, query: QueryWindow | tuple[int, int]):
        from repro.api.spec import WindowSpec

        if not isinstance(query, QueryWindow):
            end, length = query
            query = QueryWindow(end=end, length=length)
        return WindowSpec(end=query.end, length=query.length)

    def correlation_matrix(
        self, query: QueryWindow | tuple[int, int], method: str = "eq5"
    ) -> CorrelationMatrix:
        """Approximate correlation matrix over an aligned query window."""
        from repro.api.spec import QuerySpec

        spec = QuerySpec(
            op="matrix",
            window=self._window_spec(query),
            engine="approx",
            method=method,
        )
        return self.client.execute(spec).value

    def network(
        self,
        query: QueryWindow | tuple[int, int],
        theta: float,
        method: str = "eq5",
    ) -> ClimateNetwork:
        """Algorithm 4: approximate network with Eq. 4 thresholding.

        The estimated correlation being ``>= theta`` is equivalent to the
        estimated squared distance being within ``2 * (1 - theta)`` (Eq. 4 in
        the unit-norm convention); since prefix distances under-estimate,
        the result is a superset of the exact network.
        """
        from repro.api.spec import QuerySpec

        spec = QuerySpec(
            op="network",
            window=self._window_spec(query),
            theta=theta,
            engine="approx",
            method=method,
        )
        return self.client.execute(spec).value
