"""Random-projection sketches for uncooperative time-series (§2.2).

StatStream's answer to series whose energy is not concentrated in the first
few DFT coefficients ("uncooperative" series) is random projection: project
each normalized basic window onto ``k`` random vectors and estimate distances
in the projected space. The Johnson-Lindenstrauss property makes the
projected squared distance an unbiased estimator of the true squared
distance, regardless of where the signal's energy lives — at the cost of
being an *estimate* (both over- and under-shooting), so unlike the DFT
prefix it cannot guarantee the no-false-negative property of Eq. 4.

We implement the classic ±1 (Achlioptas) scheme with the ``1/sqrt(k)``
scaling. Per window per series the sketch is ``k`` floats (vs. ``2n`` floats
for ``n`` complex DFT coefficients); the projection itself costs ``O(k * B)``
per window instead of the DFT's ``O(B^2)``.

The paper notes this approach "similar to DFT coefficient calculation
approximates correlation and has high overhead" — the comparison bench in
``tests`` and the accuracy contrast with Eq. 5 make both halves observable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.dft import normalize_windows
from repro.core.lemma1 import combine_matrix
from repro.core.segmentation import BasicWindowPlan
from repro.core.stats import series_window_stats
from repro.exceptions import DataError, SketchError

__all__ = [
    "projection_matrix",
    "ProjectionSketch",
    "build_projection_sketch",
    "projection_correlation",
]


def projection_matrix(
    window_size: int, n_components: int, seed: int
) -> np.ndarray:
    """Random ±1 projection matrix with JL scaling, shape ``(B, k)``.

    Deterministic for a seed so sketch-time and query-time (or two workers')
    projections agree.
    """
    if window_size <= 0 or n_components <= 0:
        raise DataError("window_size and n_components must be positive")
    rng = np.random.default_rng(seed)
    signs = rng.integers(0, 2, size=(window_size, n_components)) * 2 - 1
    return signs.astype(np.float64) / np.sqrt(n_components)


@dataclass
class ProjectionSketch:
    """Random-projection statistics per basic window.

    Attributes:
        names: Series identifiers, in row order.
        window_size: Basic window size ``B``.
        n_components: Projection dimension ``k``.
        seed: Seed of the shared projection matrix.
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        dists_sq: Estimated per-window all-pair squared distances between
            normalized windows, shape ``(ns, n, n)``.
        sizes: Per-window sizes, shape ``(ns,)``.
    """

    names: list[str]
    window_size: int
    n_components: int
    seed: int
    means: np.ndarray
    stds: np.ndarray
    dists_sq: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        n, ns = self.means.shape
        if len(self.names) != n:
            raise SketchError(f"{len(self.names)} names for {n} series")
        if self.dists_sq.shape != (ns, n, n):
            raise SketchError(
                f"dists_sq shape {self.dists_sq.shape} != ({ns}, {n}, {n})"
            )

    @property
    def n_series(self) -> int:
        """Number of sketched series."""
        return self.means.shape[0]

    @property
    def n_windows(self) -> int:
        """Number of sketched basic windows."""
        return self.means.shape[1]


def build_projection_sketch(
    data: np.ndarray,
    window_size: int,
    n_components: int,
    seed: int = 0,
    names: list[str] | None = None,
) -> ProjectionSketch:
    """Sketch a collection with random projections of normalized windows.

    Args:
        data: ``(n, L)`` matrix of synchronized series.
        window_size: Basic window size ``B``.
        n_components: Projection dimension ``k`` (accuracy grows with k;
            ``k = B`` is still an estimate, unlike the DFT with all
            coefficients).
        seed: Projection-matrix seed.
        names: Optional series identifiers.

    Returns:
        The :class:`ProjectionSketch`.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    plan = BasicWindowPlan(length=matrix.shape[1], window_size=window_size)
    bounds = plan.boundaries
    means, stds, sizes = series_window_stats(matrix, bounds)

    n_series, n_windows = matrix.shape[0], sizes.size
    dists = np.empty((n_windows, n_series, n_series))
    for j in range(n_windows):
        block = matrix[:, bounds[j] : bounds[j + 1]]
        normalized = normalize_windows(block)
        projector = projection_matrix(block.shape[1], n_components,
                                      seed + j)
        projected = normalized @ projector  # (n, k)
        gram = projected @ projected.T
        norms = np.diag(gram)
        d = norms[:, None] + norms[None, :] - 2.0 * gram
        np.maximum(d, 0.0, out=d)
        np.fill_diagonal(d, 0.0)
        dists[j] = d

    if names is None:
        names = [f"s{i:04d}" for i in range(n_series)]
    return ProjectionSketch(
        names=list(names),
        window_size=window_size,
        n_components=n_components,
        seed=seed,
        means=means,
        stds=stds,
        dists_sq=dists,
        sizes=sizes,
    )


def projection_correlation(
    sketch: ProjectionSketch, window_indices: np.ndarray
) -> np.ndarray:
    """Estimated all-pairs correlation via the Eq. 5 combination.

    Identical recombination to the DFT path, with projected distances in
    place of coefficient distances: pseudo-covariance
    ``sigma_x sigma_y (1 - d^2 / 2)`` per window, pooled by Lemma 1.

    Args:
        sketch: The projection sketch.
        window_indices: Basic windows forming the (aligned) query window.

    Returns:
        ``(n, n)`` estimated correlation matrix.
    """
    idx = np.asarray(window_indices, dtype=np.int64)
    if idx.size == 0:
        raise SketchError("query window must cover at least one basic window")
    if idx.min() < 0 or idx.max() >= sketch.n_windows:
        raise SketchError(f"window indices out of range [0, {sketch.n_windows})")
    stds = sketch.stds[:, idx]
    sigma = np.einsum("aj,bj->jab", stds, stds)
    pseudo = sigma * (1.0 - 0.5 * sketch.dists_sq[idx])
    return combine_matrix(
        means=sketch.means[:, idx],
        stds=stds,
        covs=pseudo,
        sizes=sketch.sizes[idx],
    )
