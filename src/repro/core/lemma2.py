"""Lemma 2: incremental correlation update for real-time sliding windows.

For a real-time query ``w = ("now", m)`` the query window slides forward by
one basic window whenever ``B`` new points arrive: the newest basic window
enters, the oldest leaves. Lemma 2 expresses the new correlation in terms of
the previous correlation plus the statistics of just the entering and leaving
windows — no pass over the query window is needed.

This module provides both forms:

* :func:`lemma2_update_pair` — the paper's closed-form update for one pair,
  stated in the lemma's own quantities (previous correlation, previous query
  window stds and means, first/last window stats). Used in tests to validate
  the printed formula and by callers tracking exactly those quantities.
* :class:`SlidingCorrelationState` — the production all-pairs engine. It
  maintains the pooled sufficient statistics of the current query window
  (``T``, per-series sums and sums of squares, all-pair cross sums), each as
  a sum of per-window contributions kept in a deque. Sliding subtracts the
  leaving window's stored contribution and adds the entering one's — an
  algebraically identical, numerically safer restatement of Lemma 2 (the
  stored contributions make subtraction the exact inverse of addition).
  Aggregates are rebuilt from the deque every ``rebuild_every`` slides to
  bound floating-point cancellation drift over long streams.

Both are validated against full Lemma 1 recomputation and the raw baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.sketch import Sketch
from repro.exceptions import SketchError, StreamError

__all__ = ["PairWindowSnapshot", "PairSlideResult", "lemma2_update_pair",
           "SlidingCorrelationState"]


@dataclass(frozen=True)
class PairWindowSnapshot:
    """Statistics of one basic window for one pair, as Lemma 2 consumes them.

    Attributes:
        size: Window size ``B_j``.
        mean_x: Window mean of ``x``.
        mean_y: Window mean of ``y``.
        var_x: Window population variance of ``x`` (``sigma_xj ** 2``).
        var_y: Window population variance of ``y``.
        cov: Window covariance ``sigma_xj * sigma_yj * c_j``.
    """

    size: float
    mean_x: float
    mean_y: float
    var_x: float
    var_y: float
    cov: float


@dataclass(frozen=True)
class PairSlideResult:
    """Output of one :func:`lemma2_update_pair` step.

    Carries the updated correlation together with the refreshed query-window
    statistics that the *next* step will need as inputs.
    """

    corr: float
    std_x: float
    std_y: float
    grand_x: float
    grand_y: float
    total: float


def lemma2_update_pair(
    corr_t: float,
    std_x: float,
    std_y: float,
    grand_x: float,
    grand_y: float,
    total: float,
    leaving: PairWindowSnapshot,
    entering: PairWindowSnapshot,
) -> PairSlideResult:
    """One Lemma 2 step for a single pair, in the paper's own quantities.

    Args:
        corr_t: ``Corr_t(x, y)`` over the current query window.
        std_x: Population std of ``x`` over the current query window.
        std_y: Population std of ``y`` over the current query window.
        grand_x: Mean of ``x`` over the current query window (``x_{1:ns}``).
        grand_y: Mean of ``y`` over the current query window.
        total: ``T``, number of points in the current query window.
        leaving: Stats of the oldest (dropped) basic window.
        entering: Stats of the newest (added) basic window.

    Returns:
        The updated correlation and query-window statistics.
    """
    total_new = total - leaving.size + entering.size

    # Deltas of the leaving/entering windows relative to the *old* grand mean
    # (the lemma's delta_x1 and delta_x_{ns+1}).
    dx1, dy1 = leaving.mean_x - grand_x, leaving.mean_y - grand_y
    dxn, dyn = entering.mean_x - grand_x, entering.mean_y - grand_y

    # alpha: shift of the grand mean caused by the slide.
    alpha_x = (entering.size * dxn - leaving.size * dx1) / total_new
    alpha_y = (entering.size * dyn - leaving.size * dy1) / total_new

    # New pooled second moments (the C and D terms of the lemma).
    var_x_new = (
        total * std_x**2
        + entering.size * (entering.var_x + dxn**2)
        - leaving.size * (leaving.var_x + dx1**2)
    ) / total_new - alpha_x**2
    var_y_new = (
        total * std_y**2
        + entering.size * (entering.var_y + dyn**2)
        - leaving.size * (leaving.var_y + dy1**2)
    ) / total_new - alpha_y**2
    var_x_new = max(var_x_new, 0.0)
    var_y_new = max(var_y_new, 0.0)

    # New pooled co-moment (the s' term of the lemma).
    comoment = (
        total * std_x * std_y * corr_t
        + entering.size * (entering.cov + dxn * dyn)
        - leaving.size * (leaving.cov + dx1 * dy1)
        - total_new * alpha_x * alpha_y
    )

    std_x_new = float(np.sqrt(var_x_new))
    std_y_new = float(np.sqrt(var_y_new))
    denom = total_new * std_x_new * std_y_new
    corr_new = float(np.clip(comoment / denom, -1.0, 1.0)) if denom > 0.0 else 0.0
    return PairSlideResult(
        corr=corr_new,
        std_x=std_x_new,
        std_y=std_y_new,
        grand_x=grand_x + alpha_x,
        grand_y=grand_y + alpha_y,
        total=total_new,
    )


class SlidingCorrelationState:
    """All-pairs sliding-window correlation state (Lemma 2, vectorized).

    The state tracks the current query window as a FIFO of basic windows.
    Each window contributes three pooled aggregates:

    * ``S`` — per-series sums (``B_j * mean_j``), shape ``(n,)``
    * ``Q`` — per-series sums of squares (``B_j * (std_j^2 + mean_j^2)``)
    * ``P`` — all-pair cross sums (``B_j * (cov_j + mean_j mean_j^T)``)

    from which the exact all-pairs Pearson matrix is
    ``(T*P - S S^T) / (sqrt(T*Q - S^2) outer sqrt(T*Q - S^2))`` — the textbook
    identity that Lemma 1/2 decompose per window.

    Args:
        sketch: Sketch whose trailing windows seed the query window.
        n_windows: How many trailing basic windows form the query window.
        rebuild_every: Rebuild aggregates from stored contributions after this
            many slides, bounding floating-point drift (default 256).
    """

    def __init__(
        self, sketch: Sketch, n_windows: int, rebuild_every: int = 256
    ) -> None:
        if n_windows <= 0:
            raise StreamError("query window must cover at least one basic window")
        if n_windows > sketch.n_windows:
            raise SketchError(
                f"query window of {n_windows} windows exceeds sketched "
                f"{sketch.n_windows}"
            )
        if rebuild_every <= 0:
            raise StreamError("rebuild_every must be positive")
        self._n = sketch.n_series
        self._names = list(sketch.names)
        self._rebuild_every = rebuild_every
        self._slides_since_rebuild = 0
        self._contribs: deque[tuple[np.ndarray, np.ndarray, np.ndarray, int]] = deque()

        start = sketch.n_windows - n_windows
        for j in range(start, sketch.n_windows):
            self._contribs.append(
                self._contribution(
                    sketch.means[:, j],
                    sketch.stds[:, j],
                    sketch.covs[j],
                    int(sketch.sizes[j]),
                )
            )
        self._rebuild_aggregates()

    @staticmethod
    def _contribution(
        mean: np.ndarray, std: np.ndarray, cov: np.ndarray, size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        s = size * mean
        q = size * (std**2 + mean**2)
        p = size * (cov + np.outer(mean, mean))
        return s, q, p, size

    def _rebuild_aggregates(self) -> None:
        self._sum = np.zeros(self._n)
        self._sumsq = np.zeros(self._n)
        self._cross = np.zeros((self._n, self._n))
        self._total = 0
        for s, q, p, size in self._contribs:
            self._sum += s
            self._sumsq += q
            self._cross += p
            self._total += size
        self._slides_since_rebuild = 0

    @property
    def names(self) -> list[str]:
        """Series identifiers, in matrix row order."""
        return self._names

    @property
    def n_series(self) -> int:
        """Number of tracked series."""
        return self._n

    @property
    def n_windows(self) -> int:
        """Number of basic windows currently inside the query window."""
        return len(self._contribs)

    @property
    def total_points(self) -> int:
        """Number of data points currently inside the query window (``T``)."""
        return self._total

    def slide(
        self,
        mean: np.ndarray,
        std: np.ndarray,
        cov: np.ndarray,
        size: int,
    ) -> None:
        """Advance the query window by one basic window (Lemma 2 step).

        Args:
            mean: Entering window's per-series means, shape ``(n,)``.
            std: Entering window's per-series population stds.
            cov: Entering window's all-pair covariance matrix, shape ``(n, n)``.
            size: Entering window's size ``B*``.
        """
        mean = np.asarray(mean, dtype=np.float64)
        std = np.asarray(std, dtype=np.float64)
        cov = np.asarray(cov, dtype=np.float64)
        if mean.shape != (self._n,) or std.shape != (self._n,):
            raise StreamError(
                f"expected per-series vectors of shape ({self._n},), got "
                f"{mean.shape} and {std.shape}"
            )
        if cov.shape != (self._n, self._n):
            raise StreamError(f"expected covariance of shape ({self._n}, {self._n})")
        if size <= 0:
            raise StreamError("entering window size must be positive")

        old_s, old_q, old_p, old_size = self._contribs.popleft()
        new = self._contribution(mean, std, cov, size)
        self._contribs.append(new)

        self._sum += new[0] - old_s
        self._sumsq += new[1] - old_q
        self._cross += new[2] - old_p
        self._total += size - old_size

        self._slides_since_rebuild += 1
        if self._slides_since_rebuild >= self._rebuild_every:
            self._rebuild_aggregates()

    def slide_raw(self, block: np.ndarray) -> None:
        """Sketch a raw ``(n, B*)`` block on the fly and slide with it."""
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[0] != self._n:
            raise StreamError(
                f"expected a ({self._n}, B) raw block, got shape {block.shape}"
            )
        if block.shape[1] == 0:
            raise StreamError("cannot slide with an empty block")
        mean = block.mean(axis=1)
        centered = block - mean[:, None]
        cov = centered @ centered.T / block.shape[1]
        self.slide(mean, block.std(axis=1), cov, block.shape[1])

    def correlation_matrix(self) -> np.ndarray:
        """Exact all-pairs Pearson matrix of the current query window."""
        t = float(self._total)
        numer = t * self._cross - np.outer(self._sum, self._sum)
        var = np.maximum(t * self._sumsq - self._sum**2, 0.0)
        scale = np.sqrt(var)
        denom = np.outer(scale, scale)
        corr = np.zeros((self._n, self._n))
        np.divide(numer, denom, out=corr, where=denom > 0.0)
        np.clip(corr, -1.0, 1.0, out=corr)
        np.fill_diagonal(corr, 1.0)
        return corr
