"""Correlation matrices, threshold networks, and network comparison.

The output of TSUBASA's query path is the complete ``n x n`` correlation
matrix (unlike the DFT competitors, which only surface edges above a
threshold). A user-provided threshold ``theta`` turns the matrix into the
boolean adjacency matrix of the climate network; arbitrary thresholds can be
applied to the same matrix at query time.

Also implements the paper's two accuracy measures (§4.1):

* **number of edges** of the thresholded network, and
* **correlation similarity ratio** ``D_p`` — the fraction of identical
  off-diagonal entries between two adjacency matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataError

__all__ = ["CorrelationMatrix", "threshold_adjacency", "count_edges",
           "similarity_ratio"]


@dataclass
class CorrelationMatrix:
    """A labeled, symmetric correlation matrix.

    Attributes:
        names: Series identifiers, in row/column order.
        values: ``(n, n)`` correlation values in ``[-1, 1]``.
    """

    names: list[str]
    values: np.ndarray
    _index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        n = len(self.names)
        if self.values.shape != (n, n):
            raise DataError(
                f"matrix shape {self.values.shape} does not match {n} names"
            )
        self._index = {name: i for i, name in enumerate(self.names)}
        if len(self._index) != n:
            raise DataError("series names must be unique")

    @property
    def n_series(self) -> int:
        """Number of series (matrix dimension)."""
        return len(self.names)

    def get(self, a: str, b: str) -> float:
        """Correlation between series ``a`` and ``b`` by name."""
        return float(self.values[self._index[a], self._index[b]])

    def threshold(self, theta: float) -> np.ndarray:
        """Boolean adjacency matrix of edges with ``corr > theta``.

        The diagonal is forced to ``False`` (no self-loops), matching the
        paper's edge definition between distinct nodes.
        """
        adj = self.values > theta
        np.fill_diagonal(adj, False)
        return adj

    def edges(self, theta: float) -> list[tuple[str, str, float]]:
        """Weighted edge list ``(a, b, corr)`` for pairs with ``corr > theta``.

        Each undirected edge is reported once with ``a`` preceding ``b`` in
        row order.
        """
        adj = self.threshold(theta)
        rows, cols = np.nonzero(np.triu(adj, k=1))
        return [
            (self.names[i], self.names[j], float(self.values[i, j]))
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    def n_edges(self, theta: float) -> int:
        """Number of undirected edges above ``theta``."""
        return count_edges(self.threshold(theta))


def threshold_adjacency(values: np.ndarray, theta: float) -> np.ndarray:
    """Boolean adjacency from a raw correlation array (no self-loops)."""
    values = np.asarray(values)
    if values.ndim != 2 or values.shape[0] != values.shape[1]:
        raise DataError(f"expected a square matrix, got shape {values.shape}")
    adj = values > theta
    np.fill_diagonal(adj, False)
    return adj


def count_edges(adjacency: np.ndarray) -> int:
    """Number of undirected edges in a boolean adjacency matrix."""
    adj = np.asarray(adjacency, dtype=bool)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise DataError(f"expected a square matrix, got shape {adj.shape}")
    return int(np.triu(adj, k=1).sum())


def similarity_ratio(a: np.ndarray, b: np.ndarray) -> float:
    """Correlation similarity ratio ``D_p`` between two networks (§4.1).

    ``D_p(A, B) = 2 * sum_{i<j} (1 - |a_ij - b_ij|) / (n * (n - 1))`` — the
    fraction of off-diagonal entries on which the two boolean adjacency
    matrices agree. Equals 1 iff the networks are identical and is symmetric
    in its arguments.

    Args:
        a: First boolean adjacency matrix.
        b: Second boolean adjacency matrix, same shape.

    Returns:
        The similarity ratio in ``[0, 1]``. For ``n < 2`` the ratio is
        defined as 1.0 (no off-diagonal entries to disagree on).
    """
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    if a.shape != b.shape:
        raise DataError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise DataError(f"expected square matrices, got shape {a.shape}")
    n = a.shape[0]
    if n < 2:
        return 1.0
    upper = np.triu_indices(n, k=1)
    agree = np.sum(a[upper] == b[upper])
    return float(2.0 * agree / (n * (n - 1)))
