"""Threshold-matrix pruning by correlation inference (§3.5, Eq. 7, Alg. 5).

Pearson correlations obey a triangle-like constraint: knowing ``c_xz`` and
``c_yz`` bounds ``c_xy`` to::

    c_xz * c_yz - sqrt((1 - c_xz^2) * (1 - c_yz^2))
        <= c_xy <=
    c_xz * c_yz + sqrt((1 - c_xz^2) * (1 - c_yz^2))

(a consequence of the correlation matrix being positive semidefinite).
For a *thresholded* network with threshold ``theta`` this lets us decide many
entries of the boolean matrix without ever computing their correlation:

* lower bound ``>= theta``                        → edge (``m_xy = 1``)
* upper bound ``<= -theta``                       → edge (``|c| > theta``
  networks; for the paper's ``c > theta`` networks this instead decides
  ``m_xy = 0``, see note below)
* ``lower >= -theta`` and ``upper <= theta``      → no edge (``m_xy = 0``)

Algorithm 5 picks anchor series ``z``, computes the single row ``c_z*``
exactly, infers what it can for all remaining pairs from the bounds, and
falls back to exact computation (``Compute-Rest``) for undecided entries.

Note: the paper's Algorithm 5 sets ``m_jk = 1`` when ``U_jk <= -theta``,
which treats strong *negative* correlation as an edge (an ``|c| >= theta``
network). Its network definition elsewhere (§2.1) uses ``c > theta``. We
implement the ``c > theta`` semantics — ``U <= theta`` decides 0, ``L >=
theta`` decides 1 — and expose the absolute-value variant through
``edge_rule="absolute"`` for completeness. Both are verified against exact
thresholding: inference never contradicts the exact network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import DataError

__all__ = ["correlation_bounds", "PruningResult", "prune_threshold_matrix"]


def correlation_bounds(
    c_xz: np.ndarray, c_yz: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 7: bounds on ``c_xy`` implied by ``c_xz`` and ``c_yz``.

    Args:
        c_xz: Correlation(s) of ``x`` with the anchor ``z``.
        c_yz: Correlation(s) of ``y`` with the anchor ``z``; broadcastable.

    Returns:
        ``(lower, upper)`` arrays bounding ``c_xy``.
    """
    c_xz = np.asarray(c_xz, dtype=np.float64)
    c_yz = np.asarray(c_yz, dtype=np.float64)
    if np.any(np.abs(c_xz) > 1.0 + 1e-12) or np.any(np.abs(c_yz) > 1.0 + 1e-12):
        raise DataError("correlations must lie in [-1, 1]")
    product = c_xz * c_yz
    slack = np.sqrt(
        np.maximum(1.0 - c_xz**2, 0.0) * np.maximum(1.0 - c_yz**2, 0.0)
    )
    return product - slack, product + slack


@dataclass(frozen=True)
class PruningResult:
    """Outcome of Algorithm 5.

    Attributes:
        matrix: ``(n, n)`` boolean network matrix (``True`` = edge).
        decided_by_inference: Number of unordered pairs whose entry was
            settled by Eq. 7 bounds before any exact value was available for
            them.
        computed_exactly: Number of unordered pairs settled by an exact
            correlation value (anchor rows plus ``Compute-Rest`` fallbacks);
            complements ``decided_by_inference``.
        rows_computed: Number of exact correlation *rows* materialized — the
            actual cost driver (each row is one ``compute_row`` call).
        anchors_used: Indices of the anchor series whose rows were computed.
    """

    matrix: np.ndarray
    decided_by_inference: int
    computed_exactly: int
    rows_computed: int
    anchors_used: list[int]

    @property
    def pruning_rate(self) -> float:
        """Fraction of unordered pairs decided without exact computation."""
        total = self.decided_by_inference + self.computed_exactly
        return self.decided_by_inference / total if total else 0.0


def prune_threshold_matrix(
    compute_row: Callable[[int], np.ndarray],
    n_series: int,
    theta: float,
    max_anchors: int | None = None,
    edge_rule: str = "positive",
) -> PruningResult:
    """Algorithm 5: build the boolean network matrix with anchor-based pruning.

    Args:
        compute_row: Callback ``i -> (n,)`` array of exact correlations of
            series ``i`` against every series (row ``i`` of the correlation
            matrix). This is the only way the algorithm touches data, so it
            composes with any engine (sketch-based or raw).
        n_series: Number of series ``N``.
        theta: Positive correlation threshold.
        max_anchors: Stop after this many anchors and compute the rest
            exactly; ``None`` lets every series serve as an anchor (the
            paper's exhaustive option) before ``Compute-Rest``.
        edge_rule: ``"positive"`` for the paper's §2.1 ``c > theta`` edges,
            ``"absolute"`` for Algorithm 5's literal ``|c| >= theta`` rule.

    Returns:
        A :class:`PruningResult`; its matrix equals exact thresholding.
    """
    if n_series <= 0:
        raise DataError("n_series must be positive")
    if not 0.0 < theta < 1.0:
        raise DataError(f"theta must be in (0, 1), got {theta}")
    if edge_rule not in ("positive", "absolute"):
        raise DataError(f"unknown edge_rule {edge_rule!r}")

    # -1 = unknown, 0 = no edge, 1 = edge (the paper's m_ij, -inf as unknown).
    decisions = np.full((n_series, n_series), -1, dtype=np.int8)
    np.fill_diagonal(decisions, 1 if edge_rule == "absolute" else 0)
    known_rows: dict[int, np.ndarray] = {}
    anchors: list[int] = []
    inferred = 0

    def apply_exact_row(i: int, row: np.ndarray) -> None:
        if edge_rule == "positive":
            edge = row > theta
        else:
            edge = np.abs(row) >= theta
        decisions[i, :] = edge.astype(np.int8)
        decisions[:, i] = decisions[i, :]
        decisions[i, i] = 1 if edge_rule == "absolute" else 0
        known_rows[i] = row

    anchor_budget = n_series if max_anchors is None else min(max_anchors, n_series)
    for anchor in range(n_series):
        if len(anchors) >= anchor_budget:
            break
        if not np.any(decisions < 0):
            break
        row = np.asarray(compute_row(anchor), dtype=np.float64)
        if row.shape != (n_series,):
            raise DataError(
                f"compute_row({anchor}) returned shape {row.shape}, expected "
                f"({n_series},)"
            )
        anchors.append(anchor)
        apply_exact_row(anchor, row)

        # Infer bounds for every still-unknown pair from this anchor's row.
        lower, upper = correlation_bounds(row[:, None], row[None, :])
        if edge_rule == "positive":
            decide_one = lower >= theta
            decide_zero = upper <= theta
        else:
            decide_one = (lower >= theta) | (upper <= -theta)
            decide_zero = (lower >= -theta) & (upper <= theta)
        unknown = decisions < 0
        newly_one = unknown & decide_one
        newly_zero = unknown & decide_zero & ~decide_one
        inferred += int(np.triu(newly_one | newly_zero, k=1).sum())
        decisions[newly_one] = 1
        decisions[newly_zero] = 0

    # Compute-Rest: exact correlation for whatever inference left undecided.
    remaining = np.argwhere(np.triu(decisions < 0, k=1))
    for i, j in remaining:
        i, j = int(i), int(j)
        if i not in known_rows and j not in known_rows:
            known_rows[i] = np.asarray(compute_row(i), dtype=np.float64)
        value = known_rows[i][j] if i in known_rows else known_rows[j][i]
        if edge_rule == "positive":
            edge = value > theta
        else:
            edge = abs(value) >= theta
        decisions[i, j] = decisions[j, i] = np.int8(edge)

    # Cost accounting: a pair counts as inferred when Eq. 7 bounds settled it
    # before any exact value existed for it; everything else was settled by
    # an exact correlation. The number of materialized rows is the actual
    # compute cost (one compute_row call each).
    total_pairs = n_series * (n_series - 1) // 2
    matrix = decisions == 1
    return PruningResult(
        matrix=matrix,
        decided_by_inference=inferred,
        computed_exactly=total_pairs - inferred,
        rows_computed=len(known_rows),
        anchors_used=anchors,
    )
