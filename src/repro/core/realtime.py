"""Network-Construct-RealTime (Algorithm 3): streaming network maintenance.

The real-time engine answers the standing query ``w = ("now", m)``: the
network over the most recent ``m`` observed points. Data is ingested in
arbitrary-sized batches; the engine buffers until a full basic window of
``B`` points has accumulated (Algorithm 3, lines 5–6), sketches that window
on the fly, and advances the all-pairs correlation state with one Lemma 2
step — never recomputing from scratch.

Edge *churn* between consecutive network snapshots (appearing/disappearing
edges, the "blinking links" of the climate literature) is exposed through
:meth:`TsubasaRealtime.diff_network`, which downstream dynamics analysis
(:mod:`repro.analysis.dynamics`) builds on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.lemma2 import SlidingCorrelationState
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.sketch import Sketch, build_sketch
from repro.exceptions import DataError, StreamError

if TYPE_CHECKING:
    from repro.engine.providers import SketchProvider

__all__ = ["TsubasaRealtime"]


class TsubasaRealtime:
    """Maintain an exact climate network over a sliding real-time window.

    Args:
        initial_data: ``(n, m)`` matrix seeding the query window. ``m`` must
            be a multiple of ``window_size`` (the real-time path processes
            whole basic windows, per §3.1.2).
        window_size: Basic window size ``B``.
        names: Optional series identifiers.
        coordinates: Optional ``name -> (lat, lon)`` positions for networks.
    """

    def __init__(
        self,
        initial_data: np.ndarray,
        window_size: int,
        names: list[str] | None = None,
        coordinates: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        matrix = np.asarray(initial_data, dtype=np.float64)
        if matrix.ndim != 2:
            raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
        if matrix.shape[1] % window_size != 0:
            raise StreamError(
                f"initial window length {matrix.shape[1]} must be a multiple of "
                f"the basic window size {window_size}"
            )
        sketch = build_sketch(matrix, window_size, names=names)
        self._init_state(sketch, window_size, coordinates, matrix.shape[1])

    def _init_state(
        self,
        sketch: Sketch,
        window_size: int,
        coordinates: dict[str, tuple[float, float]] | None,
        timestamp: int,
    ) -> None:
        self._window_size = window_size
        self._state = SlidingCorrelationState(sketch, sketch.n_windows)
        self._buffer = np.empty((sketch.n_series, 0), dtype=np.float64)
        self._coordinates = coordinates
        self._timestamp = timestamp
        self._windows_processed = 0

    @classmethod
    def from_provider(
        cls,
        provider: "SketchProvider",
        query_windows: int | None = None,
        coordinates: dict[str, tuple[float, float]] | None = None,
    ) -> "TsubasaRealtime":
        """Warm-start the sliding state from any sketch backend.

        Seeds the standing query over the provider's trailing basic windows
        without touching raw data — only the ``query_windows`` needed window
        records are materialized, so resuming off a large store stays cheap.

        Args:
            provider: Any :class:`~repro.engine.providers.SketchProvider`
                holding the already-sketched past.
            query_windows: Standing query length in basic windows; defaults
                to every window the provider holds.
            coordinates: Optional ``name -> (lat, lon)`` node positions.

        Returns:
            A ready engine whose network state equals one that had streamed
            the provider's trailing windows itself (tested).
        """
        n_windows = provider.n_windows if query_windows is None else query_windows
        if n_windows <= 0:
            raise StreamError("query_windows must be positive")
        if n_windows > provider.n_windows:
            raise StreamError(
                f"provider holds {provider.n_windows} windows, cannot seed a "
                f"{n_windows}-window query"
            )
        indices = np.arange(provider.n_windows - n_windows, provider.n_windows)
        sizes = provider.sizes[indices]
        if np.any(sizes != provider.window_size):
            raise StreamError(
                "real-time seeding requires whole basic windows; the provider's "
                f"trailing windows have sizes {sizes.tolist()} for B="
                f"{provider.window_size}"
            )
        sketch = provider.materialize(indices)
        engine = cls.__new__(cls)
        engine._init_state(
            sketch, provider.window_size, coordinates, provider.length
        )
        return engine

    @property
    def names(self) -> list[str]:
        """Series identifiers, in matrix order."""
        return self._state.names

    @property
    def window_size(self) -> int:
        """Basic window size ``B``."""
        return self._window_size

    @property
    def query_windows(self) -> int:
        """Length of the standing query window, in basic windows."""
        return self._state.n_windows

    @property
    def now(self) -> int:
        """Offset of the most recent point folded into the network."""
        return self._timestamp

    @property
    def pending(self) -> int:
        """Number of buffered points not yet forming a full basic window."""
        return self._buffer.shape[1]

    @property
    def windows_processed(self) -> int:
        """Number of Lemma 2 slides performed since construction."""
        return self._windows_processed

    def ingest(self, values: np.ndarray) -> int:
        """Ingest a batch of new observations (Algorithm 3, lines 4–9).

        Args:
            values: ``(n, k)`` batch of new synchronized points, ``k >= 0``.
                A 1-D array of length ``n`` is accepted as a single tick.

        Returns:
            The number of basic windows completed (and Lemma 2 slides
            performed) by this batch.
        """
        batch = np.asarray(values, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[:, None]
        if batch.ndim != 2 or batch.shape[0] != self._state.n_series:
            raise StreamError(
                f"expected a ({self._state.n_series}, k) batch, got shape "
                f"{batch.shape}"
            )
        if not np.all(np.isfinite(batch)):
            raise DataError("ingested batch contains NaN or infinite values")

        self._buffer = np.concatenate([self._buffer, batch], axis=1)
        slides = 0
        while self._buffer.shape[1] >= self._window_size:
            block = self._buffer[:, : self._window_size]
            self._buffer = self._buffer[:, self._window_size :]
            self._state.slide_raw(block)
            self._timestamp += self._window_size
            self._windows_processed += 1
            slides += 1
        return slides

    def correlation_matrix(self) -> CorrelationMatrix:
        """Exact correlation matrix over the current query window."""
        return CorrelationMatrix(
            names=list(self._state.names),
            values=self._state.correlation_matrix(),
        )

    def network(self, theta: float) -> ClimateNetwork:
        """Current climate network for threshold ``theta``."""
        return ClimateNetwork.from_matrix(
            self.correlation_matrix(), theta, self._coordinates
        )

    def diff_network(
        self, previous: ClimateNetwork, theta: float
    ) -> tuple[set[tuple[str, str]], set[tuple[str, str]]]:
        """Edge churn between a previous snapshot and the current network.

        Args:
            previous: An earlier network over the same node set.
            theta: Threshold for the current snapshot.

        Returns:
            ``(appeared, disappeared)`` sets of undirected edges.
        """
        current = self.network(theta)
        if previous.names != current.names:
            raise StreamError("cannot diff networks over different node sets")
        old_edges = previous.edge_set()
        new_edges = current.edge_set()
        return new_edges - old_edges, old_edges - new_edges
