"""Network-Construct-Histo (Algorithm 2): exact historical queries.

Given any :class:`~repro.engine.providers.SketchProvider` (in-memory sketch,
lazy store-backed, or chunked on-demand build), an arbitrary query window is
answered by:

1. aligning the query against the basic-window plan
   (:meth:`BasicWindowPlan.align`),
2. streaming the sketch statistics of the fully covered basic windows from
   the provider (chunked, so a disk-backed query never materializes the full
   ``(ns, n, n)`` covariance tensor),
3. sketching the (possibly empty) partial head/tail fragments from raw data
   on the fly — these are just two extra variable-size "basic windows" as far
   as Lemma 1 is concerned, and
4. combining everything with the vectorized Lemma 1 kernel
   (:func:`~repro.core.lemma1.combine_matrix_chunked`) into the complete,
   exact correlation matrix, from which any threshold yields the network.

:class:`TsubasaHistorical` is the user-facing engine bundling plan, provider,
and (optionally) raw data. Raw data may be withheld (``keep_raw=False``, or a
provider constructed without data) to model the sketch-only deployment; in
that case only aligned queries are answerable and arbitrary ones raise
:class:`~repro.exceptions.SketchError`.

Since the declarative query API landed, the engine's query methods are thin
wrappers: they build a :class:`~repro.api.spec.QuerySpec` and delegate to a
:class:`~repro.api.client.TsubasaClient` over the same provider, which keeps
one implementation of the query surface (and makes every engine method
expressible — and benchmarkable — as a spec). Answers are bit-identical to
the pre-delegation paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.lemma1 import combine_matrix_chunked, combine_row
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.segmentation import BasicWindowPlan, QueryWindow, WindowSelection
from repro.core.sketch import Sketch, build_sketch
from repro.engine.providers import InMemoryProvider, SketchProvider
from repro.exceptions import DataError, SketchError

if TYPE_CHECKING:
    from repro.api.client import TsubasaClient
    from repro.api.spec import WindowSpec
    from repro.core.pruning import PruningResult

__all__ = [
    "fragment_stats",
    "query_correlation_matrix",
    "query_correlation_row",
    "TsubasaHistorical",
]

#: Default number of basic windows combined per streamed covariance chunk.
DEFAULT_CHUNK_WINDOWS = 64


def query_correlation_row(
    sketch: Sketch, window_indices: np.ndarray, row: int
) -> np.ndarray:
    """Exact correlations of one series against all others (Lemma 1, one row).

    This is the ``Computecorr(L, i)`` primitive of Algorithm 5, delegating to
    the single row kernel (:func:`~repro.core.lemma1.combine_row`).

    Args:
        sketch: The pre-computed sketch.
        window_indices: Basic windows forming the (aligned) query window.
        row: Index of the anchor series.

    Returns:
        Length-``n`` array of exact correlations (entry ``row`` is 1.0).
    """
    idx = np.asarray(window_indices, dtype=np.int64)
    if idx.size == 0:
        raise SketchError("query window must cover at least one basic window")
    if not 0 <= row < sketch.n_series:
        raise SketchError(f"row {row} out of range [0, {sketch.n_series})")
    return combine_row(
        sketch.means[:, idx],
        sketch.stds[:, idx],
        sketch.covs[idx][:, row, :],
        sketch.sizes[idx].astype(np.float64),
        row,
    )


def fragment_stats(
    data: np.ndarray, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Sketch one raw fragment ``data[:, start:stop]`` on the fly.

    Used for the partial head/tail windows of arbitrary queries (§3.1.1).

    Returns:
        ``(means, stds, cov, size)`` of the fragment across all series.
    """
    block = np.asarray(data, dtype=np.float64)[:, start:stop]
    if block.shape[1] == 0:
        raise DataError(f"empty fragment [{start}, {stop})")
    mean = block.mean(axis=1)
    centered = block - mean[:, None]
    cov = centered @ centered.T / block.shape[1]
    return mean, block.std(axis=1), cov, block.shape[1]


def _as_provider(
    source: SketchProvider | Sketch, data: np.ndarray | None
) -> SketchProvider:
    if isinstance(source, SketchProvider):
        return source
    if isinstance(source, Sketch):
        return InMemoryProvider(source, data=data)
    raise DataError(f"expected a Sketch or SketchProvider, got {type(source)!r}")


def query_correlation_matrix(
    source: SketchProvider | Sketch,
    selection: WindowSelection,
    data: np.ndarray | None = None,
    chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
) -> np.ndarray:
    """Exact all-pairs correlation for an aligned window selection.

    Args:
        source: A sketch provider, or a plain :class:`Sketch` (wrapped in an
            :class:`~repro.engine.providers.InMemoryProvider`).
        selection: Alignment of the query window against the source's plan.
        data: Raw series matrix overriding the provider's own raw data for
            partial head/tail fragments (required when ``selection`` has
            fragments and the provider holds no raw data).
        chunk_windows: Basic windows per streamed covariance chunk.

    Returns:
        The exact ``(n, n)`` Pearson correlation matrix over the query window.
    """
    provider = _as_provider(source, data)
    idx = np.asarray(selection.full_windows, dtype=np.int64)

    # Sketch the (at most two) partial fragments up front: they must raise
    # before any store reads when raw data is unavailable.
    fragments = []
    for fragment in (selection.head, selection.tail):
        if fragment is None:
            continue
        if data is not None:
            fragments.append(fragment_stats(data, *fragment))
        else:
            fragments.append(provider.fragment(*fragment))

    def chunks() -> Iterator[
        tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ]:
        if idx.size:
            yield from provider.iter_window_chunks(idx, chunk_windows)
        for mean, std, cov, size in fragments:
            yield (
                mean[:, None],
                std[:, None],
                np.array([float(size)]),
                cov[None],
            )

    return combine_matrix_chunked(chunks())


class TsubasaHistorical:
    """The TSUBASA historical engine: sketch once, query any window exactly.

    The engine runs against any sketch backend. The classic form builds an
    in-memory sketch from raw data::

        TsubasaHistorical(data, window_size=50)

    while ``provider=`` plugs in any backend — a lazily read SQLite store, a
    memory-bounded chunked build — without changing query semantics::

        TsubasaHistorical(provider=StoreProvider(sqlite_store))

    Args:
        data: ``(n, L)`` matrix of synchronized series (omit with
            ``provider``).
        window_size: Basic window size ``B`` (omit with ``provider``).
        names: Optional series identifiers (omit with ``provider``).
        coordinates: Optional ``name -> (lat, lon)`` node positions, attached
            to constructed networks.
        keep_raw: Keep the raw matrix for arbitrary (non-aligned) queries
            (default). With ``False`` the engine stores only the sketch (the
            paper's sketch-only deployment) and supports aligned queries
            only. Only meaningful with ``data`` — with ``provider`` the
            backend itself decides whether raw data is available, so passing
            ``keep_raw`` alongside ``provider`` raises.
        provider: A ready :class:`~repro.engine.providers.SketchProvider`
            backend, mutually exclusive with ``data``/``window_size``.
        chunk_windows: Basic windows per streamed covariance chunk on the
            query path.
    """

    def __init__(
        self,
        data: np.ndarray | None = None,
        window_size: int | None = None,
        names: list[str] | None = None,
        coordinates: dict[str, tuple[float, float]] | None = None,
        keep_raw: bool | None = None,
        provider: SketchProvider | None = None,
        chunk_windows: int = DEFAULT_CHUNK_WINDOWS,
    ) -> None:
        if provider is not None:
            if data is not None or window_size is not None or names is not None:
                raise DataError(
                    "give either raw data (data/window_size/names) or a "
                    "provider, not both"
                )
            if keep_raw is not None:
                raise DataError(
                    "keep_raw has no effect with a provider; construct the "
                    "provider with or without raw data instead"
                )
            self._provider = provider
        else:
            if data is None or window_size is None:
                raise DataError(
                    "either data and window_size, or a provider, is required"
                )
            matrix = np.asarray(data, dtype=np.float64)
            if matrix.ndim != 2:
                raise DataError(
                    f"expected a 2-D series matrix, got shape {matrix.shape}"
                )
            sketch = build_sketch(matrix, window_size, names=names)
            self._provider = InMemoryProvider(
                sketch, data=matrix if keep_raw in (None, True) else None
            )
        self._plan = self._provider.plan
        self._coordinates = coordinates
        self._chunk_windows = chunk_windows
        self._materialized: Sketch | None = None
        self._client = None

    @property
    def provider(self) -> SketchProvider:
        """The sketch backend answering this engine's queries."""
        return self._provider

    @property
    def sketch(self) -> Sketch:
        """The underlying sketch (materialized once, lazily, for lazy backends)."""
        if self._materialized is None:
            self._materialized = self._provider.materialize()
        return self._materialized

    @property
    def plan(self) -> BasicWindowPlan:
        """The basic-window segmentation plan."""
        return self._plan

    @property
    def names(self) -> list[str]:
        """Series identifiers, in matrix order."""
        return self._provider.names

    def _resolve(self, query: QueryWindow | tuple[int, int]) -> QueryWindow:
        if isinstance(query, QueryWindow):
            return query
        end, length = query
        return QueryWindow(end=end, length=length)

    @property
    def client(self) -> "TsubasaClient":
        """The declarative query client this engine delegates to (lazy)."""
        if self._client is None:
            from repro.api.client import TsubasaClient

            self._client = TsubasaClient(
                provider=self._provider,
                coordinates=self._coordinates,
                chunk_windows=self._chunk_windows,
            )
        return self._client

    def _window_spec(self, query: QueryWindow | tuple[int, int]) -> "WindowSpec":
        from repro.api.spec import WindowSpec

        window = self._resolve(query)
        return WindowSpec(end=window.end, length=window.length)

    def correlation_matrix(
        self, query: QueryWindow | tuple[int, int]
    ) -> CorrelationMatrix:
        """Exact correlation matrix over ``query`` (Algorithm 2, lines 2–5).

        Args:
            query: A :class:`QueryWindow` or an ``(end, length)`` tuple.

        Returns:
            The labeled exact correlation matrix.
        """
        from repro.api.spec import QuerySpec

        spec = QuerySpec(op="matrix", window=self._window_spec(query))
        return self.client.execute(spec).value

    def network(
        self, query: QueryWindow | tuple[int, int], theta: float
    ) -> ClimateNetwork:
        """Construct the climate network over ``query`` with threshold ``theta``.

        This is the full Algorithm 2: exact matrix plus threshold pruning of
        edges (Algorithm 2, lines 6–7).
        """
        from repro.api.spec import QuerySpec

        spec = QuerySpec(
            op="network", window=self._window_spec(query), theta=theta
        )
        return self.client.execute(spec).value

    def network_pruned(
        self,
        query: QueryWindow | tuple[int, int],
        theta: float,
        max_anchors: int | None = None,
    ) -> "PruningResult":
        """Algorithm 5 network construction: infer entries from Eq. 7 bounds.

        Computes anchor *rows* of the correlation matrix from the provider
        and decides as many boolean entries as the bounds allow; only aligned
        query windows are supported (anchor rows read sketches directly).

        Args:
            query: The (aligned) query window.
            theta: Correlation threshold in ``(0, 1)``.
            max_anchors: Anchor budget (``None`` = up to every series).

        Returns:
            A :class:`~repro.core.pruning.PruningResult`; its boolean matrix
            equals exact thresholding (tested).
        """
        from repro.core.pruning import prune_threshold_matrix

        window = self._resolve(query)
        selection = self._plan.align(window)
        if not selection.is_aligned:
            raise SketchError(
                "pruned construction requires an aligned query window"
            )
        idx = selection.full_windows
        # Algorithm 5 materializes many anchor rows; on a lazy backend each
        # cov_rows() call would re-stream the whole selection from the store,
        # so load the selection once (a single record pass) and serve every
        # row from memory. Backends with prefix-aggregate tables skip even
        # that: a contiguous selection's anchor rows come straight from the
        # tables in O(n) each (combine_row_prefix), independent of how many
        # windows the selection spans — decisions then match exact
        # thresholding within the prefix accuracy contract
        # (repro.core.prefix.PREFIX_ATOL).
        bounds = self._provider.prefix_range(selection)
        if bounds is not None:
            lo, hi = bounds

            def compute_row(i: int) -> np.ndarray:
                return self._provider.prefix_row(lo, hi, i)

        elif isinstance(self._provider, InMemoryProvider):
            means, stds, sizes = self._provider.window_stats(idx)

            def compute_row(i: int) -> np.ndarray:
                cov_row = self._provider.cov_rows(idx, np.array([i]))[:, 0, :]
                return combine_row(means, stds, cov_row, sizes, i)

        else:
            selected = self._provider.materialize(idx)
            row_idx = np.arange(selected.n_windows, dtype=np.int64)

            def compute_row(i: int) -> np.ndarray:
                return query_correlation_row(selected, row_idx, i)

        return prune_threshold_matrix(
            compute_row,
            self._provider.n_series,
            theta,
            max_anchors=max_anchors,
        )
