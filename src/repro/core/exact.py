"""Network-Construct-Histo (Algorithm 2): exact historical queries.

Given a pre-computed :class:`~repro.core.sketch.Sketch`, an arbitrary query
window is answered by:

1. aligning the query against the basic-window plan
   (:meth:`BasicWindowPlan.align`),
2. reading the sketch slices of the fully covered basic windows,
3. sketching the (possibly empty) partial head/tail fragments from raw data
   on the fly — these are just two extra variable-size "basic windows" as far
   as Lemma 1 is concerned, and
4. combining everything with the vectorized Lemma 1 into the complete, exact
   correlation matrix, from which any threshold yields the climate network.

:class:`TsubasaHistorical` is the user-facing engine bundling data, plan and
sketch. Raw data may be withheld (``keep_raw=False``) to model the
sketch-only deployment; in that case only aligned queries are answerable and
arbitrary ones raise :class:`~repro.exceptions.SketchError`.
"""

from __future__ import annotations

import numpy as np

from repro.core.lemma1 import combine_matrix
from repro.core.matrix import CorrelationMatrix
from repro.core.network import ClimateNetwork
from repro.core.segmentation import BasicWindowPlan, QueryWindow, WindowSelection
from repro.core.sketch import Sketch, build_sketch
from repro.exceptions import DataError, SketchError

__all__ = [
    "fragment_stats",
    "query_correlation_matrix",
    "query_correlation_row",
    "TsubasaHistorical",
]


def query_correlation_row(
    sketch: Sketch, window_indices: np.ndarray, row: int
) -> np.ndarray:
    """Exact correlations of one series against all others (Lemma 1, one row).

    This is the ``Computecorr(L, i)`` primitive of Algorithm 5: the pruning
    path materializes single anchor rows instead of the full matrix.

    Args:
        sketch: The pre-computed sketch.
        window_indices: Basic windows forming the (aligned) query window.
        row: Index of the anchor series.

    Returns:
        Length-``n`` array of exact correlations (entry ``row`` is 1.0).
    """
    idx = np.asarray(window_indices, dtype=np.int64)
    if idx.size == 0:
        raise SketchError("query window must cover at least one basic window")
    if not 0 <= row < sketch.n_series:
        raise SketchError(f"row {row} out of range [0, {sketch.n_series})")
    sizes = sketch.sizes[idx].astype(np.float64)
    total = float(sizes.sum())
    means = sketch.means[:, idx]
    stds = sketch.stds[:, idx]
    grand = means @ sizes / total
    delta = means - grand[:, None]

    numer = np.einsum("j,ja->a", sizes, sketch.covs[idx][:, row, :])
    numer += (delta[row] * sizes) @ delta.T
    pooled_var = np.sum(sizes * (stds**2 + delta**2), axis=1)
    scale = np.sqrt(np.maximum(pooled_var, 0.0))
    denom = scale[row] * scale

    out = np.zeros(sketch.n_series)
    np.divide(numer, denom, out=out, where=denom > 0.0)
    np.clip(out, -1.0, 1.0, out=out)
    out[row] = 1.0
    return out


def fragment_stats(
    data: np.ndarray, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Sketch one raw fragment ``data[:, start:stop]`` on the fly.

    Used for the partial head/tail windows of arbitrary queries (§3.1.1).

    Returns:
        ``(means, stds, cov, size)`` of the fragment across all series.
    """
    block = np.asarray(data, dtype=np.float64)[:, start:stop]
    if block.shape[1] == 0:
        raise DataError(f"empty fragment [{start}, {stop})")
    mean = block.mean(axis=1)
    centered = block - mean[:, None]
    cov = centered @ centered.T / block.shape[1]
    return mean, block.std(axis=1), cov, block.shape[1]


def query_correlation_matrix(
    sketch: Sketch,
    selection: WindowSelection,
    data: np.ndarray | None = None,
) -> np.ndarray:
    """Exact all-pairs correlation for an aligned window selection.

    Args:
        sketch: The pre-computed sketch.
        selection: Alignment of the query window against the sketch's plan.
        data: Raw series matrix, required when ``selection`` has partial
            head/tail fragments.

    Returns:
        The exact ``(n, n)`` Pearson correlation matrix over the query window.
    """
    means = [sketch.means[:, selection.full_windows]]
    stds = [sketch.stds[:, selection.full_windows]]
    covs = [sketch.covs[selection.full_windows]]
    sizes = [sketch.sizes[selection.full_windows]]

    for fragment in (selection.head, selection.tail):
        if fragment is None:
            continue
        if data is None:
            raise SketchError(
                "query window is not aligned to basic windows and no raw data "
                "is available to sketch the partial fragments"
            )
        mean, std, cov, size = fragment_stats(data, *fragment)
        means.append(mean[:, None])
        stds.append(std[:, None])
        covs.append(cov[None])
        sizes.append(np.array([size], dtype=np.int64))

    return combine_matrix(
        means=np.concatenate(means, axis=1),
        stds=np.concatenate(stds, axis=1),
        covs=np.concatenate(covs, axis=0),
        sizes=np.concatenate(sizes),
    )


class TsubasaHistorical:
    """The TSUBASA historical engine: sketch once, query any window exactly.

    Args:
        data: ``(n, L)`` matrix of synchronized series.
        window_size: Basic window size ``B``.
        names: Optional series identifiers.
        coordinates: Optional ``name -> (lat, lon)`` node positions, attached
            to constructed networks.
        keep_raw: Keep the raw matrix for arbitrary (non-aligned) queries.
            With ``False`` the engine stores only the sketch (the paper's
            sketch-only deployment) and supports aligned queries only.
    """

    def __init__(
        self,
        data: np.ndarray,
        window_size: int,
        names: list[str] | None = None,
        coordinates: dict[str, tuple[float, float]] | None = None,
        keep_raw: bool = True,
    ) -> None:
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim != 2:
            raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
        self._plan = BasicWindowPlan(length=matrix.shape[1], window_size=window_size)
        self._sketch = build_sketch(matrix, window_size, names=names)
        self._data = matrix if keep_raw else None
        self._coordinates = coordinates

    @property
    def sketch(self) -> Sketch:
        """The underlying pre-computed sketch."""
        return self._sketch

    @property
    def plan(self) -> BasicWindowPlan:
        """The basic-window segmentation plan."""
        return self._plan

    @property
    def names(self) -> list[str]:
        """Series identifiers, in matrix order."""
        return self._sketch.names

    def _resolve(self, query: QueryWindow | tuple[int, int]) -> QueryWindow:
        if isinstance(query, QueryWindow):
            return query
        end, length = query
        return QueryWindow(end=end, length=length)

    def correlation_matrix(
        self, query: QueryWindow | tuple[int, int]
    ) -> CorrelationMatrix:
        """Exact correlation matrix over ``query`` (Algorithm 2, lines 2–5).

        Args:
            query: A :class:`QueryWindow` or an ``(end, length)`` tuple.

        Returns:
            The labeled exact correlation matrix.
        """
        window = self._resolve(query)
        selection = self._plan.align(window)
        values = query_correlation_matrix(self._sketch, selection, self._data)
        return CorrelationMatrix(names=list(self._sketch.names), values=values)

    def network(
        self, query: QueryWindow | tuple[int, int], theta: float
    ) -> ClimateNetwork:
        """Construct the climate network over ``query`` with threshold ``theta``.

        This is the full Algorithm 2: exact matrix plus threshold pruning of
        edges (Algorithm 2, lines 6–7).
        """
        matrix = self.correlation_matrix(query)
        return ClimateNetwork.from_matrix(matrix, theta, self._coordinates)

    def network_pruned(
        self,
        query: QueryWindow | tuple[int, int],
        theta: float,
        max_anchors: int | None = None,
    ):
        """Algorithm 5 network construction: infer entries from Eq. 7 bounds.

        Computes anchor *rows* of the correlation matrix from the sketch and
        decides as many boolean entries as the bounds allow; only aligned
        query windows are supported (anchor rows read sketches directly).

        Args:
            query: The (aligned) query window.
            theta: Correlation threshold in ``(0, 1)``.
            max_anchors: Anchor budget (``None`` = up to every series).

        Returns:
            A :class:`~repro.core.pruning.PruningResult`; its boolean matrix
            equals exact thresholding (tested).
        """
        from repro.core.pruning import prune_threshold_matrix

        window = self._resolve(query)
        selection = self._plan.align(window)
        if not selection.is_aligned:
            raise SketchError(
                "pruned construction requires an aligned query window"
            )
        idx = selection.full_windows
        return prune_threshold_matrix(
            lambda i: query_correlation_row(self._sketch, idx, i),
            self._sketch.n_series,
            theta,
            max_anchors=max_anchors,
        )
