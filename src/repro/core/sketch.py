"""The TSUBASA sketch (Algorithm 1: ``Preprocessing``).

A :class:`Sketch` holds, for a collection of ``n`` synchronized series
segmented by a :class:`~repro.core.segmentation.BasicWindowPlan`:

* per-series, per-window means and population standard deviations
  (``2 * n * ns`` floats), and
* per-pair, per-window covariance matrices (``ns * n * n`` floats; the
  paper stores the per-window correlation ``c_j``, which is recoverable as
  ``cov_j / (sigma_xj * sigma_yj)`` — we store the covariance because it is
  the quantity Lemma 1 consumes and it is well-defined for constant windows).

This matches the paper's space complexity ``O(L * N^2 / B)``. Sketching is a
single pass over the data (``O(L * N^2)`` time, dominated by the per-window
pair products), performed at ingestion time; queries never touch raw data
except for the partial head/tail fragments of arbitrary (non-aligned) query
windows.

Sketches are append-only: real-time ingestion extends them one basic window
at a time via :meth:`Sketch.append_window`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.segmentation import BasicWindowPlan
from repro.core.stats import (
    pairwise_window_covariances,
    series_window_stats,
)
from repro.exceptions import DataError, SketchError

__all__ = ["Sketch", "build_sketch"]


@dataclass
class Sketch:
    """Pre-computed basic-window statistics for a series collection.

    Attributes:
        names: Series identifiers, in row order.
        window_size: The basic window size ``B`` used for segmentation.
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        covs: Per-window all-pair covariance matrices, shape ``(ns, n, n)``.
        sizes: Per-window sizes ``B_j``, shape ``(ns,)``.
    """

    names: list[str]
    window_size: int
    means: np.ndarray
    stds: np.ndarray
    covs: np.ndarray
    sizes: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        n, ns = self.means.shape
        if len(self.names) != n:
            raise SketchError(f"{len(self.names)} names for {n} sketched series")
        if self.stds.shape != (n, ns):
            raise SketchError(f"stds shape {self.stds.shape} != ({n}, {ns})")
        if self.covs.shape != (ns, n, n):
            raise SketchError(f"covs shape {self.covs.shape} != ({ns}, {n}, {n})")
        if self.sizes.shape != (ns,):
            raise SketchError(f"sizes shape {self.sizes.shape} != ({ns},)")

    @property
    def n_series(self) -> int:
        """Number of sketched series."""
        return self.means.shape[0]

    @property
    def n_windows(self) -> int:
        """Number of sketched basic windows."""
        return self.means.shape[1]

    @property
    def length(self) -> int:
        """Total number of sketched data points per series."""
        return int(self.sizes.sum())

    def correlations(self) -> np.ndarray:
        """Per-window all-pair Pearson correlations ``c_j`` (paper's form).

        Returns:
            Array of shape ``(ns, n, n)``; entries with a constant window on
            either side are 0.
        """
        corrs = np.zeros_like(self.covs)
        for j in range(self.n_windows):
            denom = np.outer(self.stds[:, j], self.stds[:, j])
            np.divide(self.covs[j], denom, out=corrs[j], where=denom > 0.0)
        return corrs

    def select(self, window_indices: np.ndarray) -> "Sketch":
        """Restrict the sketch to a subset of basic windows (query alignment)."""
        idx = np.asarray(window_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_windows):
            raise SketchError(
                f"window indices out of range [0, {self.n_windows}): {idx}"
            )
        return Sketch(
            names=self.names,
            window_size=self.window_size,
            means=self.means[:, idx],
            stds=self.stds[:, idx],
            covs=self.covs[idx],
            sizes=self.sizes[idx],
        )

    def append_window(self, block: np.ndarray) -> None:
        """Sketch one newly arrived basic window and append it (real-time path).

        Args:
            block: ``(n, B*)`` matrix of the newest basic window's raw values;
                ``B*`` may differ from ``window_size`` (variable-size support).
        """
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[0] != self.n_series:
            raise DataError(
                f"expected a ({self.n_series}, B) block, got shape {block.shape}"
            )
        if block.shape[1] == 0:
            raise DataError("cannot append an empty basic window")
        mean = block.mean(axis=1)
        std = block.std(axis=1)
        centered = block - mean[:, None]
        cov = centered @ centered.T / block.shape[1]

        self.means = np.concatenate([self.means, mean[:, None]], axis=1)
        self.stds = np.concatenate([self.stds, std[:, None]], axis=1)
        self.covs = np.concatenate([self.covs, cov[None]], axis=0)
        self.sizes = np.append(self.sizes, np.int64(block.shape[1]))

    def drop_leading_windows(self, count: int) -> None:
        """Discard the ``count`` oldest basic windows (sliding retention)."""
        if count < 0 or count > self.n_windows:
            raise SketchError(
                f"cannot drop {count} of {self.n_windows} sketched windows"
            )
        self.means = self.means[:, count:]
        self.stds = self.stds[:, count:]
        self.covs = self.covs[count:]
        self.sizes = self.sizes[count:]


def build_sketch(
    data: np.ndarray,
    window_size: int,
    names: list[str] | None = None,
) -> Sketch:
    """Algorithm 1: sketch a series collection in one pass.

    Args:
        data: ``(n, L)`` matrix of synchronized series.
        window_size: Basic window size ``B``.
        names: Optional series identifiers; defaults to ``s0000 ...``.

    Returns:
        The complete :class:`Sketch` (series stats + pairwise window stats).
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D series matrix, got shape {matrix.shape}")
    plan = BasicWindowPlan(length=matrix.shape[1], window_size=window_size)
    boundaries = plan.boundaries
    means, stds, sizes = series_window_stats(matrix, boundaries)
    covs = pairwise_window_covariances(matrix, boundaries)
    if names is None:
        names = [f"s{i:04d}" for i in range(matrix.shape[0])]
    return Sketch(
        names=list(names),
        window_size=window_size,
        means=means,
        stds=stds,
        covs=covs,
        sizes=sizes,
    )
