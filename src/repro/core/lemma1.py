"""Lemma 1: exact Pearson correlation from basic-window statistics.

Given per-window means, population standard deviations, sizes, and per-pair
per-window correlations (or covariances), the exact Pearson correlation over
the concatenation of the windows is::

    Corr(x, y) = sum_j B_j * (sigma_xj * sigma_yj * c_j + delta_xj * delta_yj)
                 / sqrt(sum_i B_i * (sigma_xi^2 + delta_xi^2))
                 / sqrt(sum_i B_i * (sigma_yi^2 + delta_yi^2))

with ``delta_xj = mean_xj - grand_mean(x)``. This is the pooled
variance/covariance decomposition; the numerator term
``sigma_xj * sigma_yj * c_j`` is exactly the per-window covariance.

Note on the grand mean: the paper prints ``delta_xi = x_i - (sum_k x_k)/ns``
(the *unweighted* mean of window means). That equals the true query-window
mean only when all windows have equal size. Since Lemma 1 explicitly covers
variable window sizes (that is what enables arbitrary query windows), we use
the *weighted* grand mean ``sum_k B_k * mean_k / sum_k B_k``, which is exact
in every case and identical to the paper's expression for equal sizes.
DESIGN.md records this correction.

This module is the **single** Lemma 1 implementation in the code base: every
engine (historical, real-time seeding, pruning anchor rows, the parallel
executor's row blocks, store-backed providers) funnels through the kernels
below, which all share one normalization convention via
:func:`pooled_deltas_scales` — the pooled second moment is kept *undivided*
(``sum_i B_i * (sigma_i^2 + delta_i^2)``) so numerator and denominator carry
the same ``B`` weighting and no ``total``/``sqrt(total)`` rescaling pair is
needed. Earlier revisions had three hand-written copies of this math with
subtly different normalizations (divided vs undivided pooled variance); a
regression test pins all kernels against the raw-data baseline.

Public kernels:

* :func:`combine_pair` / :func:`combine_pair_arrays` — one pair, scalar.
* :func:`combine_row` — one anchor series against all others (Algorithm 5's
  ``Computecorr`` primitive).
* :func:`combine_rows` — a block of rows (the parallel executor's unit).
* :func:`combine_matrix` — all pairs at once.
* :func:`combine_matrix_streaming` — all pairs with the covariance tensor
  consumed chunk-by-chunk, so a disk-backed query never holds the full
  ``(ns, n, n)`` tensor in memory.

All of these cost ``O(ns)`` in the number of selected windows — they read
and reduce every selected record. For *contiguous* window ranges (every
aligned query), :mod:`repro.core.prefix` answers the same combination in
``O(n^2)`` independent of ``ns`` from precomputed prefix-aggregate tables;
the kernels here remain the general path (fragments, arbitrary selections,
row blocks) and the accuracy reference the prefix kernel is fuzz-tested
against.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.stats import PairWindowStats, WindowStats
from repro.exceptions import SketchError

__all__ = [
    "combine_pair",
    "combine_pair_arrays",
    "combine_row",
    "combine_rows",
    "combine_matrix",
    "combine_matrix_chunked",
    "combine_matrix_streaming",
    "pooled_deltas_scales",
    "pooled_mean",
    "pooled_variance",
]


def pooled_mean(means: np.ndarray, sizes: np.ndarray) -> float | np.ndarray:
    """Grand mean of a concatenation of windows from per-window means.

    Args:
        means: Per-window means; last axis indexes windows.
        sizes: Per-window sizes ``B_j``, broadcastable against ``means``.

    Returns:
        The weighted grand mean along the last axis.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    return np.sum(np.asarray(means) * sizes, axis=-1) / np.sum(sizes)

def pooled_variance(
    means: np.ndarray, stds: np.ndarray, sizes: np.ndarray
) -> float | np.ndarray:
    """Population variance of a concatenation of windows (proof of Lemma 1).

    Implements ``sigma^2 = (1/T) * sum_i B_i * (sigma_i^2 + delta_i^2)``.

    Args:
        means: Per-window means; last axis indexes windows.
        stds: Per-window population stds, same shape as ``means``.
        sizes: Per-window sizes, broadcastable along the last axis.

    Returns:
        The pooled population variance along the last axis.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    total = np.sum(sizes)
    grand = np.expand_dims(np.sum(np.asarray(means) * sizes, axis=-1) / total, -1)
    delta = np.asarray(means) - grand
    return np.sum(sizes * (np.asarray(stds) ** 2 + delta**2), axis=-1) / total


def pooled_deltas_scales(
    means: np.ndarray, stds: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The shared normalization of every Lemma 1 kernel.

    Args:
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        sizes: Per-window sizes ``B_j``, shape ``(ns,)`` (float64).

    Returns:
        ``(delta, scale)`` where ``delta`` (shape ``(n, ns)``) holds the
        per-window deviations from the weighted grand mean and ``scale``
        (shape ``(n,)``) is ``sqrt(sum_i B_i * (sigma_i^2 + delta_i^2))`` —
        the *undivided* pooled standard-deviation scale. A Lemma 1 numerator
        ``sum_j B_j * (cov_j + delta_x * delta_y)`` divided by
        ``scale_x * scale_y`` is the exact correlation.
    """
    total = float(np.sum(sizes))
    if total <= 0.0:
        raise SketchError("window sizes must sum to a positive total")
    grand = means @ sizes / total  # (n,)
    delta = means - grand[:, None]  # (n, ns)
    pooled = np.sum(sizes * (stds**2 + delta**2), axis=1)  # (n,)
    scale = np.sqrt(np.maximum(pooled, 0.0))
    return delta, scale


def _weighted_cov_sum(sizes: np.ndarray, covs: np.ndarray) -> np.ndarray:
    """``sum_j B_j * covs[j]`` via one BLAS matrix-vector product.

    Equivalent to ``np.einsum("j,jab->ab", sizes, covs)`` but ~2x faster at
    query sizes: for the C-contiguous (or contiguously memory-mapped) chunk
    tensors every provider produces, the reshape is a view and the reduction
    is a single dgemv over the flattened windows. The trailing dimensions
    are flattened explicitly because ``reshape(k, -1)`` cannot infer an axis
    for size-0 inputs (empty chunks, empty row blocks), which einsum
    handled.
    """
    flat = covs.reshape(covs.shape[0], int(np.prod(covs.shape[1:], dtype=np.int64)))
    return (sizes @ flat).reshape(covs.shape[1:])


def _check_window_stats(
    means: np.ndarray, stds: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    # Canonical C layout: providers hand these in as C arrays, transposed
    # memmap slices, or fancy-indexed (Fortran-ordered) views, and BLAS
    # accumulates in a layout-dependent order — normalizing here keeps query
    # results bit-identical across backends (tested). The arrays are the
    # small O(n * ns) statistics, never the covariance tensor.
    means = np.ascontiguousarray(means, dtype=np.float64)
    stds = np.ascontiguousarray(stds, dtype=np.float64)
    sizes = np.ascontiguousarray(sizes, dtype=np.float64)
    if means.ndim != 2 or means.shape != stds.shape:
        raise SketchError(f"means/stds shape mismatch: {means.shape} vs {stds.shape}")
    if sizes.shape != (means.shape[1],):
        raise SketchError(f"sizes shape {sizes.shape} != ({means.shape[1]},)")
    if sizes.size == 0:
        raise SketchError("cannot combine an empty window sequence")
    return means, stds, sizes


def combine_pair(
    x_stats: Sequence[WindowStats],
    y_stats: Sequence[WindowStats],
    pair_stats: Sequence[PairWindowStats],
) -> float:
    """Exact Pearson correlation of one pair from per-window sketches.

    This is the literal Lemma 1 computation for a single pair, accepting the
    dataclass form of the sketch. Windows may have different sizes.

    Args:
        x_stats: Per-window stats of series ``x``, in window order.
        y_stats: Per-window stats of series ``y``, aligned with ``x_stats``.
        pair_stats: Per-window pair stats of ``(x, y)``, aligned with both.

    Returns:
        ``Corr(x, y)`` over the concatenated windows; 0.0 when either series
        is constant over the query window (zero variance).
    """
    if not (len(x_stats) == len(y_stats) == len(pair_stats)):
        raise SketchError(
            "per-window stat sequences must have equal length "
            f"({len(x_stats)}, {len(y_stats)}, {len(pair_stats)})"
        )
    if not x_stats:
        raise SketchError("cannot combine an empty window sequence")
    for xs, ys, ps in zip(x_stats, y_stats, pair_stats):
        if not (xs.size == ys.size == ps.size):
            raise SketchError(
                f"window size mismatch across sketches: {xs.size}, {ys.size}, {ps.size}"
            )

    sizes = np.array([s.size for s in x_stats], dtype=np.float64)
    mx = np.array([s.mean for s in x_stats])
    my = np.array([s.mean for s in y_stats])
    sx = np.array([s.std for s in x_stats])
    sy = np.array([s.std for s in y_stats])
    cov = np.array([p.cov for p in pair_stats])

    return combine_pair_arrays(mx, sx, my, sy, cov, sizes)


def combine_pair_arrays(
    means_x: np.ndarray,
    stds_x: np.ndarray,
    means_y: np.ndarray,
    stds_y: np.ndarray,
    covs: np.ndarray,
    sizes: np.ndarray,
) -> float:
    """Array form of :func:`combine_pair` (one pair, ``ns`` windows).

    Args:
        means_x: Per-window means of ``x``, shape ``(ns,)``.
        stds_x: Per-window population stds of ``x``.
        means_y: Per-window means of ``y``.
        stds_y: Per-window population stds of ``y``.
        covs: Per-window covariances ``sigma_xj * sigma_yj * c_j``.
        sizes: Per-window sizes ``B_j``.

    Returns:
        The exact Pearson correlation over the concatenation.
    """
    means = np.stack([np.asarray(means_x), np.asarray(means_y)])
    stds = np.stack([np.asarray(stds_x), np.asarray(stds_y)])
    covs = np.asarray(covs, dtype=np.float64)
    # Row 0 ("x") of each per-window 2x2 covariance matrix is all the row
    # kernel consumes: [var_x, cov_xy].
    cov_rows = np.empty((covs.size, 1, 2))
    cov_rows[:, 0, 0] = np.asarray(stds_x) ** 2
    cov_rows[:, 0, 1] = covs
    block = combine_rows(
        means, stds, cov_rows, sizes, rows=np.array([0], dtype=np.int64)
    )
    return float(block[0, 1])


def combine_rows(
    means: np.ndarray,
    stds: np.ndarray,
    cov_rows: np.ndarray,
    sizes: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Vectorized Lemma 1 for a block of rows of the correlation matrix.

    This is the workhorse kernel: the parallel executor's per-partition unit,
    the pruning path's anchor rows (via :func:`combine_row`), and the full
    matrix (via :func:`combine_matrix`) are all thin wrappers over it.

    Args:
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        cov_rows: This block's rows of every per-window covariance matrix,
            shape ``(ns, len(rows), n)`` — ``cov_rows[j, a, b]`` is the
            window-``j`` covariance of series ``rows[a]`` with series ``b``.
        sizes: Per-window sizes, shape ``(ns,)``.
        rows: Indices of the owned rows, shape ``(m,)``.

    Returns:
        The exact ``(len(rows), n)`` correlation block over the concatenated
        windows. Self-correlation entries ``(a, rows[a])`` are 1.0; entries
        involving a constant series are 0.0.
    """
    means, stds, sizes = _check_window_stats(means, stds, sizes)
    rows = np.asarray(rows, dtype=np.int64)
    n, ns = means.shape
    cov_rows = np.asarray(cov_rows, dtype=np.float64)
    if cov_rows.shape != (ns, rows.size, n):
        raise SketchError(
            f"cov_rows shape {cov_rows.shape} incompatible with {ns} windows, "
            f"{rows.size} rows, {n} series"
        )
    if rows.size and (rows.min() < 0 or rows.max() >= n):
        raise SketchError(f"row indices out of range [0, {n}): {rows}")

    delta, scale = pooled_deltas_scales(means, stds, sizes)

    # Numerator: sum_j B_j * (cov_j + delta_xj * delta_yj), block rows only.
    numer = _weighted_cov_sum(sizes, cov_rows)
    numer += (delta[rows] * sizes) @ delta.T
    denom = np.outer(scale[rows], scale)

    block = np.zeros((rows.size, n), dtype=np.float64)
    np.divide(numer, denom, out=block, where=denom > 0.0)
    np.clip(block, -1.0, 1.0, out=block)
    block[np.arange(rows.size), rows] = 1.0
    return block


def combine_row(
    means: np.ndarray,
    stds: np.ndarray,
    cov_row: np.ndarray,
    sizes: np.ndarray,
    row: int,
) -> np.ndarray:
    """Exact correlations of one series against all others (one Lemma 1 row).

    This is the ``Computecorr(L, i)`` primitive of Algorithm 5: the pruning
    path materializes single anchor rows instead of the full matrix.

    Args:
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        cov_row: Row ``row`` of every per-window covariance matrix, shape
            ``(ns, n)``.
        sizes: Per-window sizes, shape ``(ns,)``.
        row: Index of the anchor series.

    Returns:
        Length-``n`` array of exact correlations (entry ``row`` is 1.0).
    """
    cov_row = np.asarray(cov_row, dtype=np.float64)
    block = combine_rows(
        means, stds, cov_row[:, None, :], sizes, rows=np.array([row], dtype=np.int64)
    )
    return block[0]


def combine_matrix(
    means: np.ndarray,
    stds: np.ndarray,
    covs: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Vectorized Lemma 1 for all pairs at once.

    Args:
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        covs: Per-window all-pair covariance matrices, shape ``(ns, n, n)``.
        sizes: Per-window sizes, shape ``(ns,)``.

    Returns:
        The exact ``(n, n)`` Pearson correlation matrix over the concatenated
        windows, with unit diagonal. Rows/columns of constant series are zero
        off-diagonal.
    """
    means, stds, sizes = _check_window_stats(means, stds, sizes)
    n, ns = means.shape
    covs = np.asarray(covs, dtype=np.float64)
    if covs.shape != (ns, n, n):
        raise SketchError(
            f"covs shape {covs.shape} incompatible with {ns} windows of {n} series"
        )
    corr = combine_rows(means, stds, covs, sizes, rows=np.arange(n, dtype=np.int64))
    np.fill_diagonal(corr, 1.0)
    return corr


def combine_matrix_chunked(
    chunks: Iterable[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Lemma 1 all-pairs matrix from one streaming pass over window chunks.

    Identical result to :func:`combine_matrix`, but consumes window-ordered
    ``(means, stds, sizes, covs)`` chunks — shapes ``(n, k)``, ``(n, k)``,
    ``(k,)``, ``(k, n, n)`` — so a backend delivers each window record
    exactly once. The weighted covariance sum ``sum_j B_j * cov_j`` does not
    depend on the grand means, so it is accumulated as chunks stream by;
    only the ``ns``-times-smaller per-series statistics are collected whole
    and folded in at the end. Peak memory is one chunk plus the ``(n, n)``
    accumulator.

    Args:
        chunks: Iterable of ``(means, stds, sizes, covs)`` chunk tuples,
            concatenating in window order to the full query selection.

    Returns:
        The exact ``(n, n)`` Pearson correlation matrix, unit diagonal.
    """
    weighted_cov: np.ndarray | None = None
    means_parts: list[np.ndarray] = []
    stds_parts: list[np.ndarray] = []
    sizes_parts: list[np.ndarray] = []
    n = 0
    for chunk_means, chunk_stds, chunk_sizes, chunk_covs in chunks:
        chunk_means = np.asarray(chunk_means, dtype=np.float64)
        chunk_stds = np.asarray(chunk_stds, dtype=np.float64)
        chunk_sizes = np.asarray(chunk_sizes, dtype=np.float64)
        chunk_covs = np.asarray(chunk_covs, dtype=np.float64)
        if weighted_cov is None:
            n = chunk_means.shape[0]
            weighted_cov = np.zeros((n, n), dtype=np.float64)
        k = chunk_sizes.size
        if chunk_means.shape != (n, k) or chunk_stds.shape != (n, k):
            raise SketchError(
                f"chunk stats shapes {chunk_means.shape}/{chunk_stds.shape} "
                f"incompatible with {k} windows of {n} series"
            )
        if chunk_covs.shape != (k, n, n):
            raise SketchError(
                f"chunk covs shape {chunk_covs.shape} incompatible with "
                f"{k} windows of {n} series"
            )
        weighted_cov += _weighted_cov_sum(chunk_sizes, chunk_covs)
        means_parts.append(chunk_means)
        stds_parts.append(chunk_stds)
        sizes_parts.append(chunk_sizes)
    if weighted_cov is None:
        raise SketchError("cannot combine an empty window sequence")

    means, stds, sizes = _check_window_stats(
        np.concatenate(means_parts, axis=1),
        np.concatenate(stds_parts, axis=1),
        np.concatenate(sizes_parts),
    )
    delta, scale = pooled_deltas_scales(means, stds, sizes)
    numer = weighted_cov + (delta * sizes) @ delta.T
    denom = np.outer(scale, scale)
    corr = np.zeros((n, n), dtype=np.float64)
    np.divide(numer, denom, out=corr, where=denom > 0.0)
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)
    return corr


def combine_matrix_streaming(
    means: np.ndarray,
    stds: np.ndarray,
    sizes: np.ndarray,
    cov_chunks: Iterable[np.ndarray],
) -> np.ndarray:
    """Lemma 1 all-pairs matrix with the covariance tensor streamed in chunks.

    Convenience form of :func:`combine_matrix_chunked` for callers that hold
    the (small) per-series statistics whole and stream only the ``(ns, n,
    n)`` covariance tensor as window-ordered chunks.

    Args:
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        sizes: Per-window sizes, shape ``(ns,)``.
        cov_chunks: Iterable of covariance chunks, each of shape
            ``(k, n, n)``, concatenating (in window order) to the full
            ``(ns, n, n)`` tensor.

    Returns:
        The exact ``(n, n)`` Pearson correlation matrix, unit diagonal.
    """
    means, stds, sizes = _check_window_stats(means, stds, sizes)
    ns = means.shape[1]

    def stat_chunks() -> Iterable[
        tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ]:
        offset = 0
        for chunk in cov_chunks:
            chunk = np.asarray(chunk, dtype=np.float64)
            k = chunk.shape[0] if chunk.ndim == 3 else -1
            if k < 0 or offset + k > ns:
                raise SketchError(
                    f"covariance chunks cover {offset + max(k, 1)} windows, "
                    f"expected {ns}"
                )
            yield (
                means[:, offset : offset + k],
                stds[:, offset : offset + k],
                sizes[offset : offset + k],
                chunk,
            )
            offset += k
        if offset != ns:
            raise SketchError(
                f"covariance chunks cover {offset} windows, expected {ns}"
            )

    return combine_matrix_chunked(stat_chunks())
