"""Lemma 1: exact Pearson correlation from basic-window statistics.

Given per-window means, population standard deviations, sizes, and per-pair
per-window correlations (or covariances), the exact Pearson correlation over
the concatenation of the windows is::

    Corr(x, y) = sum_j B_j * (sigma_xj * sigma_yj * c_j + delta_xj * delta_yj)
                 / sqrt(sum_i B_i * (sigma_xi^2 + delta_xi^2))
                 / sqrt(sum_i B_i * (sigma_yi^2 + delta_yi^2))

with ``delta_xj = mean_xj - grand_mean(x)``. This is the pooled
variance/covariance decomposition; the numerator term
``sigma_xj * sigma_yj * c_j`` is exactly the per-window covariance.

Note on the grand mean: the paper prints ``delta_xi = x_i - (sum_k x_k)/ns``
(the *unweighted* mean of window means). That equals the true query-window
mean only when all windows have equal size. Since Lemma 1 explicitly covers
variable window sizes (that is what enables arbitrary query windows), we use
the *weighted* grand mean ``sum_k B_k * mean_k / sum_k B_k``, which is exact
in every case and identical to the paper's expression for equal sizes.
DESIGN.md records this correction.

Two implementations are provided:

* :func:`combine_pair` — scalar, mirroring the lemma term by term; useful for
  clarity, tests, and the real-time per-pair state.
* :func:`combine_matrix` — vectorized all-pairs version used by network
  construction; one shot for the full ``n x n`` correlation matrix.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.stats import PairWindowStats, WindowStats
from repro.exceptions import SketchError

__all__ = [
    "combine_pair",
    "combine_pair_arrays",
    "combine_matrix",
    "pooled_mean",
    "pooled_variance",
]


def pooled_mean(means: np.ndarray, sizes: np.ndarray) -> float | np.ndarray:
    """Grand mean of a concatenation of windows from per-window means.

    Args:
        means: Per-window means; last axis indexes windows.
        sizes: Per-window sizes ``B_j``, broadcastable against ``means``.

    Returns:
        The weighted grand mean along the last axis.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    return np.sum(np.asarray(means) * sizes, axis=-1) / np.sum(sizes)

def pooled_variance(
    means: np.ndarray, stds: np.ndarray, sizes: np.ndarray
) -> float | np.ndarray:
    """Population variance of a concatenation of windows (proof of Lemma 1).

    Implements ``sigma^2 = (1/T) * sum_i B_i * (sigma_i^2 + delta_i^2)``.

    Args:
        means: Per-window means; last axis indexes windows.
        stds: Per-window population stds, same shape as ``means``.
        sizes: Per-window sizes, broadcastable along the last axis.

    Returns:
        The pooled population variance along the last axis.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    total = np.sum(sizes)
    grand = np.expand_dims(np.sum(np.asarray(means) * sizes, axis=-1) / total, -1)
    delta = np.asarray(means) - grand
    return np.sum(sizes * (np.asarray(stds) ** 2 + delta**2), axis=-1) / total


def combine_pair(
    x_stats: Sequence[WindowStats],
    y_stats: Sequence[WindowStats],
    pair_stats: Sequence[PairWindowStats],
) -> float:
    """Exact Pearson correlation of one pair from per-window sketches.

    This is the literal Lemma 1 computation for a single pair, accepting the
    dataclass form of the sketch. Windows may have different sizes.

    Args:
        x_stats: Per-window stats of series ``x``, in window order.
        y_stats: Per-window stats of series ``y``, aligned with ``x_stats``.
        pair_stats: Per-window pair stats of ``(x, y)``, aligned with both.

    Returns:
        ``Corr(x, y)`` over the concatenated windows; 0.0 when either series
        is constant over the query window (zero variance).
    """
    if not (len(x_stats) == len(y_stats) == len(pair_stats)):
        raise SketchError(
            "per-window stat sequences must have equal length "
            f"({len(x_stats)}, {len(y_stats)}, {len(pair_stats)})"
        )
    if not x_stats:
        raise SketchError("cannot combine an empty window sequence")
    for xs, ys, ps in zip(x_stats, y_stats, pair_stats):
        if not (xs.size == ys.size == ps.size):
            raise SketchError(
                f"window size mismatch across sketches: {xs.size}, {ys.size}, {ps.size}"
            )

    sizes = np.array([s.size for s in x_stats], dtype=np.float64)
    mx = np.array([s.mean for s in x_stats])
    my = np.array([s.mean for s in y_stats])
    sx = np.array([s.std for s in x_stats])
    sy = np.array([s.std for s in y_stats])
    cov = np.array([p.cov for p in pair_stats])

    return combine_pair_arrays(mx, sx, my, sy, cov, sizes)


def combine_pair_arrays(
    means_x: np.ndarray,
    stds_x: np.ndarray,
    means_y: np.ndarray,
    stds_y: np.ndarray,
    covs: np.ndarray,
    sizes: np.ndarray,
) -> float:
    """Array form of :func:`combine_pair` (one pair, ``ns`` windows).

    Args:
        means_x: Per-window means of ``x``, shape ``(ns,)``.
        stds_x: Per-window population stds of ``x``.
        means_y: Per-window means of ``y``.
        stds_y: Per-window population stds of ``y``.
        covs: Per-window covariances ``sigma_xj * sigma_yj * c_j``.
        sizes: Per-window sizes ``B_j``.

    Returns:
        The exact Pearson correlation over the concatenation.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    total = float(np.sum(sizes))
    grand_x = float(np.sum(means_x * sizes) / total)
    grand_y = float(np.sum(means_y * sizes) / total)
    dx = np.asarray(means_x) - grand_x
    dy = np.asarray(means_y) - grand_y

    numer = float(np.sum(sizes * (np.asarray(covs) + dx * dy)))
    var_x = float(np.sum(sizes * (np.asarray(stds_x) ** 2 + dx**2)))
    var_y = float(np.sum(sizes * (np.asarray(stds_y) ** 2 + dy**2)))
    denom = np.sqrt(var_x) * np.sqrt(var_y)
    if denom <= 0.0:
        return 0.0
    return float(np.clip(numer / denom, -1.0, 1.0))


def combine_matrix(
    means: np.ndarray,
    stds: np.ndarray,
    covs: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Vectorized Lemma 1 for all pairs at once.

    Args:
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        covs: Per-window all-pair covariance matrices, shape ``(ns, n, n)``.
        sizes: Per-window sizes, shape ``(ns,)``.

    Returns:
        The exact ``(n, n)`` Pearson correlation matrix over the concatenated
        windows, with unit diagonal. Rows/columns of constant series are zero
        off-diagonal.
    """
    means = np.asarray(means, dtype=np.float64)
    stds = np.asarray(stds, dtype=np.float64)
    covs = np.asarray(covs, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if means.shape != stds.shape:
        raise SketchError(f"means/stds shape mismatch: {means.shape} vs {stds.shape}")
    n, ns = means.shape
    if covs.shape != (ns, n, n):
        raise SketchError(
            f"covs shape {covs.shape} incompatible with {ns} windows of {n} series"
        )
    if sizes.shape != (ns,):
        raise SketchError(f"sizes shape {sizes.shape} != ({ns},)")

    total = float(np.sum(sizes))
    grand = means @ sizes / total  # (n,)
    delta = means - grand[:, None]  # (n, ns)

    # Numerator: sum_j B_j * (cov_j + delta_xj * delta_yj), all pairs at once.
    numer = np.einsum("j,jab->ab", sizes, covs)
    numer += (delta * sizes) @ delta.T

    # Denominator: pooled per-series variances.
    pooled_var = np.sum(sizes * (stds**2 + delta**2), axis=1) / total
    scale = np.sqrt(np.maximum(pooled_var, 0.0)) * np.sqrt(total)
    denom = np.outer(scale, scale)

    corr = np.zeros((n, n), dtype=np.float64)
    np.divide(numer, denom, out=corr, where=denom > 0.0)
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)
    return corr
