"""Query operators over correlation matrices.

The complete-matrix design of TSUBASA (vs. threshold-only competitors) means
classic correlated-time-series queries become cheap post-processing of the
matrix: top-k most correlated pairs, per-node neighborhoods, range queries,
and anti-correlation search. These operators are what a network analyst (or
the visualization layer of Fig. 1) actually calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import CorrelationMatrix
from repro.exceptions import DataError

__all__ = [
    "top_k_pairs",
    "neighbors",
    "pairs_in_range",
    "most_anticorrelated_pairs",
    "degree_at_threshold",
]


def _upper_pairs(matrix: CorrelationMatrix) -> tuple[np.ndarray, np.ndarray]:
    n = matrix.n_series
    return np.triu_indices(n, k=1)


def _top_order(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest values, descending, ties by index order.

    Equivalent to ``np.argsort(-values, kind="stable")[:k]`` but avoids the
    full ``O(p log p)`` sort when ``k << p``: ``np.argpartition`` isolates a
    candidate set in ``O(p)``, the boundary is resolved deterministically
    (every value strictly above the k-th, then just enough boundary ties in
    ascending index order), and only the ``O(k)`` tail is stably sorted.
    """
    if k <= 0 or k >= values.size:
        # Covers the empty selection (k clamped to 0 pairs) and makes the
        # helper total for any k; argpartition below needs 1 <= k < size.
        return np.argsort(-values, kind="stable")[: max(k, 0)]
    candidates = np.argpartition(-values, k - 1)[:k]
    boundary = values[candidates].min()
    if np.isnan(boundary):
        # NaNs (e.g. np.corrcoef of a constant series) sort last, so one in
        # the candidate set means fewer than k finite values exist; the
        # boundary comparisons below would go all-False and silently drop
        # results. Take the stable slow path instead.
        return np.argsort(-values, kind="stable")[:k]
    # argpartition picks an *arbitrary* subset of boundary-valued entries;
    # rebuild the selection so equal values keep ascending index order.
    above = np.nonzero(values > boundary)[0]
    ties = np.nonzero(values == boundary)[0][: k - above.size]
    chosen = np.concatenate([above, ties])
    # nonzero() returns ascending indices, so a stable sort of the (small)
    # candidate set reproduces the full stable sort's tie order exactly.
    return chosen[np.argsort(-values[chosen], kind="stable")]


def top_k_pairs(
    matrix: CorrelationMatrix, k: int
) -> list[tuple[str, str, float]]:
    """The ``k`` most positively correlated distinct pairs, descending.

    Args:
        matrix: A labeled correlation matrix.
        k: Number of pairs to return (capped at the number of pairs).

    Returns:
        ``(name_a, name_b, correlation)`` triples, strongest first; ties are
        broken by row order for determinism.
    """
    if k <= 0:
        raise DataError(f"k must be positive, got {k}")
    rows, cols = _upper_pairs(matrix)
    values = matrix.values[rows, cols]
    k = min(k, values.size)
    # Equal correlations keep row order (same contract as a stable argsort).
    order = _top_order(values, k)
    return [
        (matrix.names[rows[i]], matrix.names[cols[i]], float(values[i]))
        for i in order
    ]


def most_anticorrelated_pairs(
    matrix: CorrelationMatrix, k: int
) -> list[tuple[str, str, float]]:
    """The ``k`` most *negatively* correlated pairs, most negative first.

    Anti-correlated teleconnections (seesaw patterns like the Southern
    Oscillation) are as physically meaningful as positive ones.
    """
    if k <= 0:
        raise DataError(f"k must be positive, got {k}")
    rows, cols = _upper_pairs(matrix)
    values = matrix.values[rows, cols]
    k = min(k, values.size)
    # Most negative first == largest of the negated values; negation
    # preserves ties, so index order at equal correlations is unchanged.
    order = _top_order(-values, k)
    return [
        (matrix.names[rows[i]], matrix.names[cols[i]], float(values[i]))
        for i in order
    ]


def neighbors(
    matrix: CorrelationMatrix, name: str, theta: float
) -> list[tuple[str, float]]:
    """Nodes correlated with ``name`` above ``theta``, strongest first."""
    if name not in matrix.names:
        raise DataError(f"unknown series {name!r}")
    index = matrix.names.index(name)
    row = matrix.values[index].copy()
    row[index] = -np.inf  # exclude self
    hits = np.nonzero(row > theta)[0]
    order = hits[np.argsort(-row[hits], kind="stable")]
    return [(matrix.names[j], float(row[j])) for j in order]


def pairs_in_range(
    matrix: CorrelationMatrix, low: float, high: float
) -> list[tuple[str, str, float]]:
    """All distinct pairs with correlation in ``[low, high]``.

    Useful for isolating the "uncertain band" around a threshold, e.g. the
    pairs Eq. 7 inference cannot decide.
    """
    if low > high:
        raise DataError(f"empty range [{low}, {high}]")
    rows, cols = _upper_pairs(matrix)
    values = matrix.values[rows, cols]
    mask = (values >= low) & (values <= high)
    return [
        (matrix.names[i], matrix.names[j], float(v))
        for i, j, v in zip(rows[mask], cols[mask], values[mask])
    ]


def degree_at_threshold(matrix: CorrelationMatrix, theta: float) -> dict[str, int]:
    """Node degree of the θ-thresholded network, keyed by series name."""
    adjacency = matrix.threshold(theta)
    degrees = adjacency.sum(axis=1)
    return {name: int(d) for name, d in zip(matrix.names, degrees)}
