"""Query operators over correlation matrices.

The complete-matrix design of TSUBASA (vs. threshold-only competitors) means
classic correlated-time-series queries become cheap post-processing of the
matrix: top-k most correlated pairs, per-node neighborhoods, range queries,
and anti-correlation search. These operators are what a network analyst (or
the visualization layer of Fig. 1) actually calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import CorrelationMatrix
from repro.exceptions import DataError

__all__ = [
    "top_k_pairs",
    "neighbors",
    "pairs_in_range",
    "most_anticorrelated_pairs",
    "degree_at_threshold",
]


def _upper_pairs(matrix: CorrelationMatrix) -> tuple[np.ndarray, np.ndarray]:
    n = matrix.n_series
    return np.triu_indices(n, k=1)


def top_k_pairs(
    matrix: CorrelationMatrix, k: int
) -> list[tuple[str, str, float]]:
    """The ``k`` most positively correlated distinct pairs, descending.

    Args:
        matrix: A labeled correlation matrix.
        k: Number of pairs to return (capped at the number of pairs).

    Returns:
        ``(name_a, name_b, correlation)`` triples, strongest first; ties are
        broken by row order for determinism.
    """
    if k <= 0:
        raise DataError(f"k must be positive, got {k}")
    rows, cols = _upper_pairs(matrix)
    values = matrix.values[rows, cols]
    k = min(k, values.size)
    # argsort is stable, so equal correlations keep row order.
    order = np.argsort(-values, kind="stable")[:k]
    return [
        (matrix.names[rows[i]], matrix.names[cols[i]], float(values[i]))
        for i in order
    ]


def most_anticorrelated_pairs(
    matrix: CorrelationMatrix, k: int
) -> list[tuple[str, str, float]]:
    """The ``k`` most *negatively* correlated pairs, most negative first.

    Anti-correlated teleconnections (seesaw patterns like the Southern
    Oscillation) are as physically meaningful as positive ones.
    """
    if k <= 0:
        raise DataError(f"k must be positive, got {k}")
    rows, cols = _upper_pairs(matrix)
    values = matrix.values[rows, cols]
    k = min(k, values.size)
    order = np.argsort(values, kind="stable")[:k]
    return [
        (matrix.names[rows[i]], matrix.names[cols[i]], float(values[i]))
        for i in order
    ]


def neighbors(
    matrix: CorrelationMatrix, name: str, theta: float
) -> list[tuple[str, float]]:
    """Nodes correlated with ``name`` above ``theta``, strongest first."""
    if name not in matrix.names:
        raise DataError(f"unknown series {name!r}")
    index = matrix.names.index(name)
    row = matrix.values[index].copy()
    row[index] = -np.inf  # exclude self
    hits = np.nonzero(row > theta)[0]
    order = hits[np.argsort(-row[hits], kind="stable")]
    return [(matrix.names[j], float(row[j])) for j in order]


def pairs_in_range(
    matrix: CorrelationMatrix, low: float, high: float
) -> list[tuple[str, str, float]]:
    """All distinct pairs with correlation in ``[low, high]``.

    Useful for isolating the "uncertain band" around a threshold, e.g. the
    pairs Eq. 7 inference cannot decide.
    """
    if low > high:
        raise DataError(f"empty range [{low}, {high}]")
    rows, cols = _upper_pairs(matrix)
    values = matrix.values[rows, cols]
    mask = (values >= low) & (values <= high)
    return [
        (matrix.names[i], matrix.names[j], float(v))
        for i, j, v in zip(rows[mask], cols[mask], values[mask])
    ]


def degree_at_threshold(matrix: CorrelationMatrix, theta: float) -> dict[str, int]:
    """Node degree of the θ-thresholded network, keyed by series name."""
    adjacency = matrix.threshold(theta)
    degrees = adjacency.sum(axis=1)
    return {name: int(d) for name, d in zip(matrix.names, degrees)}
