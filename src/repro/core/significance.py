"""Statistical significance of correlation thresholds.

The paper leaves the threshold ``theta`` to the user ("a user-provided
correlation threshold"). Climate-network practice often derives it from a
significance level instead: an edge is kept when the correlation is unlikely
under the null hypothesis of independence. For Pearson's correlation on
``m`` samples the test statistic

    t = r * sqrt((m - 2) / (1 - r^2))

follows a Student-t distribution with ``m - 2`` degrees of freedom under the
null, which gives closed forms both ways:

* :func:`critical_correlation` — the threshold ``theta`` equivalent to a
  two-sided significance level ``alpha`` (optionally Bonferroni-corrected
  for the ``N * (N - 1) / 2`` simultaneous pair tests).
* :func:`correlation_pvalues` — two-sided p-values for a whole matrix.
* :func:`significant_adjacency` — adjacency of statistically significant
  *positive* edges, the drop-in replacement for a fixed-θ threshold.

Because TSUBASA returns the complete correlation matrix, significance
filtering is a query-time decision — no re-sketching needed, exactly the
flexibility argument of the paper's introduction.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import DataError

__all__ = [
    "critical_correlation",
    "correlation_pvalues",
    "significant_adjacency",
]


def critical_correlation(
    n_samples: int, alpha: float = 0.05, n_comparisons: int | None = None
) -> float:
    """Smallest ``|r|`` significant at level ``alpha`` (two-sided).

    Args:
        n_samples: Number of points ``m`` the correlation was computed over
            (the query window length); must be > 2.
        alpha: Two-sided significance level.
        n_comparisons: Applies a Bonferroni correction for this many
            simultaneous tests (pass ``N * (N - 1) // 2`` for an all-pairs
            network); ``None`` means no correction.

    Returns:
        The critical correlation in ``(0, 1)``.
    """
    if n_samples <= 2:
        raise DataError(f"need more than 2 samples, got {n_samples}")
    if not 0.0 < alpha < 1.0:
        raise DataError(f"alpha must be in (0, 1), got {alpha}")
    if n_comparisons is not None:
        if n_comparisons <= 0:
            raise DataError("n_comparisons must be positive")
        alpha = alpha / n_comparisons
    dof = n_samples - 2
    t_crit = float(stats.t.ppf(1.0 - alpha / 2.0, dof))
    return t_crit / np.sqrt(dof + t_crit * t_crit)


def correlation_pvalues(corr: np.ndarray, n_samples: int) -> np.ndarray:
    """Two-sided p-values of every entry of a correlation matrix.

    Args:
        corr: ``(n, n)`` correlation matrix.
        n_samples: Number of points each correlation was computed over.

    Returns:
        ``(n, n)`` p-values; the diagonal is 0 (a series is trivially
        correlated with itself). Entries at exactly ``|r| = 1`` get p = 0.
    """
    matrix = np.asarray(corr, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DataError(f"expected a square matrix, got shape {matrix.shape}")
    if n_samples <= 2:
        raise DataError(f"need more than 2 samples, got {n_samples}")
    dof = n_samples - 2
    clipped = np.clip(matrix, -1.0, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_stat = clipped * np.sqrt(dof / np.maximum(1.0 - clipped**2, 0.0))
    pvals = np.where(
        np.abs(clipped) >= 1.0,
        0.0,
        2.0 * stats.t.sf(np.abs(t_stat), dof),
    )
    np.fill_diagonal(pvals, 0.0)
    return pvals


def significant_adjacency(
    corr: np.ndarray,
    n_samples: int,
    alpha: float = 0.05,
    correction: str = "bonferroni",
) -> np.ndarray:
    """Adjacency of significantly *positive* correlations.

    Args:
        corr: ``(n, n)`` correlation matrix.
        n_samples: Number of points each correlation was computed over.
        alpha: Two-sided significance level.
        correction: ``"bonferroni"`` (over all unordered pairs) or
            ``"none"``.

    Returns:
        Boolean ``(n, n)`` adjacency (no self-loops). Equivalent to
        thresholding at :func:`critical_correlation`.
    """
    matrix = np.asarray(corr, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DataError(f"expected a square matrix, got shape {matrix.shape}")
    if correction == "bonferroni":
        n = matrix.shape[0]
        comparisons = max(n * (n - 1) // 2, 1)
    elif correction == "none":
        comparisons = None
    else:
        raise DataError(f"unknown correction {correction!r}")
    theta = critical_correlation(n_samples, alpha, comparisons)
    adjacency = matrix > theta
    np.fill_diagonal(adjacency, False)
    return adjacency
