"""Prefix-aggregate sketches: Lemma 1 in O(n^2) for contiguous window ranges.

The Lemma 1 combination is a weighted sum over the selected basic windows, so
a direct query costs ``O(ns * n^2)`` — it must read and reduce every selected
window record. But the combination is *associative*, and the grand-mean
terms that appear to couple every window to the query range can be expanded
away::

    sum_j B_j (m_xj - mu_x)(m_yj - mu_y)  =  sum_j B_j m_xj m_yj - T mu_x mu_y

(and likewise ``sum_j B_j (sigma_xj^2 + (m_xj - mu_x)^2) =
sum_j B_j (sigma_xj^2 + m_xj^2) - T mu_x^2`` for the pooled scales), where
``T = sum_j B_j`` and ``mu`` is the range's weighted grand mean. Everything a
query needs therefore reduces to *prefix sums over windows* of four
grand-mean-free aggregates:

* ``B``                           (window sizes),
* ``B * m``                       per series,
* ``B * (sigma^2 + m^2)``         per series,
* ``B * (cov + m_x * m_y)``       per pair.

Precompute the cumulative tables once at sketch-build time and any contiguous
range ``[lo, hi)`` is answered by two row lookups and a subtraction —
``O(n^2)`` work independent of the number of selected windows.

Numerical accuracy contract
---------------------------

The expansion trades the direct kernel's numerically benign form for a
classic catastrophic cancellation: ``sum B m^2 - T mu^2`` subtracts two large
nearly-equal numbers when the means dwarf the deviations, and plain running
sums accumulate ``O(ns * eps)`` rounding before the subtraction even happens.
Two measures keep the tables usable at ``ns >= 50k`` (fuzz-tested in
``tests/test_prefix_fuzz.py``):

* **Offset centering** — the tables accumulate *centered* moments
  ``m' = m - c`` with per-series offsets ``c`` fixed at build time (the
  weighted grand mean of the windows present at the first build). Variances
  and covariances are shift-invariant, so the algebra stays exact while the
  accumulated magnitudes shrink from ``m^2`` to the drift of the means
  around ``c`` — for stationary series the cancellation all but disappears.
* **Blocked Kahan summation** — cumulative sums are written in blocks of
  ``_KAHAN_BLOCK`` windows (plain ``np.cumsum`` inside a block, a
  compensated carry across blocks), so the summation error of any prefix row
  is ``O(_KAHAN_BLOCK * eps)``, independent of ``ns``.

The residual error is governed by the conditioning of the subtraction,
``kappa = (sum B (sigma^2 + m'^2)) / pooled``: roughly, how far the query
range's mean sits from the build-time offset, measured in within-range
standard deviations. The documented contract, enforced by the fuzz suite:
for ranges with ``kappa <= ~1e8`` (mean drift up to ~1e4 standard
deviations), :func:`combine_matrix_prefix` matches the direct
:func:`~repro.core.lemma1.combine_matrix` within :data:`PREFIX_ATOL` on
every correlation entry; typical error on stationary data is below 1e-12.
Ranges whose pooled variance falls below :data:`VARIANCE_GUARD` of the
centered second moment — or below ``_KAHAN_BLOCK * eps`` of the prefix row
magnitude, the rounding already baked into the cumulative tables (short
ranges deep in a long history difference two huge nearly-equal rows) — are
indistinguishable from constant in float64 and are reported as constant
(correlation 0), matching the direct kernel's zero-variance convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lemma1 import _check_window_stats
from repro.exceptions import SketchError

__all__ = [
    "PrefixAggregates",
    "build_prefix_aggregates",
    "combine_matrix_prefix",
    "combine_row_prefix",
    "PREFIX_ATOL",
    "VARIANCE_GUARD",
]

#: Documented absolute tolerance of prefix-combined correlations against the
#: direct Lemma 1 kernel (see the module docstring for the conditioning
#: regime it covers; the fuzz suite enforces it).
PREFIX_ATOL = 1e-7

#: Ranges whose pooled variance is below this fraction of the centered second
#: moment are reported as constant: the subtraction's own rounding noise is
#: of that order, so smaller values carry no signal in float64.
VARIANCE_GUARD = 1e-11

#: Windows per plain-cumsum block between compensated carries.
_KAHAN_BLOCK = 512


def _extend_cumsum(table: np.ndarray, rows: int, values: np.ndarray) -> None:
    """Append cumulative sums of ``values`` to ``table`` after row ``rows-1``.

    ``table[rows + i] = table[rows - 1] + sum(values[: i + 1])`` along axis
    0, computed with a blocked Kahan carry: each block of
    :data:`_KAHAN_BLOCK` rows is a plain ``np.cumsum`` (error
    ``O(block * eps)``), and the running total folds block sums in with
    compensated addition, so the error of the carried total does not grow
    with the number of rows.
    """
    total = np.array(table[rows - 1], dtype=np.float64, copy=True)
    comp = np.zeros_like(total)
    pos = rows
    for start in range(0, values.shape[0], _KAHAN_BLOCK):
        chunk = values[start : start + _KAHAN_BLOCK]
        partial = np.cumsum(chunk, axis=0)
        table[pos : pos + chunk.shape[0]] = total + partial
        y = partial[-1] - comp
        carried = total + y
        comp = (carried - total) - y
        total = carried
        pos += chunk.shape[0]


@dataclass
class PrefixAggregates:
    """Cumulative offset-centered Lemma 1 aggregates over the window sequence.

    Row ``k`` holds sums over basic windows ``[0, k)`` of the centered
    quantities (``m' = m - offsets``):

    * ``count[k] = sum B_j``
    * ``first[k, x] = sum B_j m'_xj``
    * ``second[k, x] = sum B_j (sigma_xj^2 + m'_xj^2)``
    * ``cross[k, x, y] = sum B_j (cov_xyj + m'_xj m'_yj)``

    Arrays may be larger than ``rows`` (preallocated capacity, or a mapped
    file sized for the full store); only rows ``[0, rows)`` are valid. Row 0
    is always the zero row, so ``rows = 1`` means "allocated, no windows
    covered yet" and the tables cover windows ``[0, rows - 1)``.

    Instances are either writable (in-memory build, or the store's writer
    memmaps) and extendable via :meth:`extend`, or read-only views over
    persisted tables (:meth:`~repro.storage.mmap_store.MmapStore.read_prefix`).

    Attributes:
        offsets: Per-series centering offsets ``c``, shape ``(n,)``. Fixed
            for the lifetime of the tables — extending must reuse them.
        count: Prefix window-size sums, shape ``(capacity,)``.
        first: Prefix centered first moments, shape ``(capacity, n)``.
        second: Prefix centered second moments, shape ``(capacity, n)``.
        cross: Prefix centered cross moments, shape ``(capacity, n, n)``.
        rows: Number of valid prefix rows (``0`` = nothing, including no
            zero row).
    """

    offsets: np.ndarray
    count: np.ndarray
    first: np.ndarray
    second: np.ndarray
    cross: np.ndarray
    rows: int

    def __post_init__(self) -> None:
        if self.offsets.ndim != 1:
            raise SketchError(
                f"prefix offsets must be 1-D, got shape {self.offsets.shape}"
            )
        n = self.offsets.shape[0]
        capacity = self.count.shape[0]
        if self.count.ndim != 1:
            raise SketchError(
                f"prefix count table must be 1-D, got shape {self.count.shape}"
            )
        if self.first.shape != (capacity, n) or self.second.shape != (capacity, n):
            raise SketchError(
                f"prefix moment tables {self.first.shape}/{self.second.shape} "
                f"incompatible with capacity {capacity}, {n} series"
            )
        if self.cross.shape != (capacity, n, n):
            raise SketchError(
                f"prefix cross table {self.cross.shape} incompatible with "
                f"capacity {capacity}, {n} series"
            )
        if not 0 <= self.rows <= capacity:
            raise SketchError(
                f"prefix rows {self.rows} outside [0, {capacity}]"
            )

    @property
    def n_series(self) -> int:
        """Number of series per table row."""
        return int(self.offsets.shape[0])

    @property
    def capacity(self) -> int:
        """Allocated table rows (``n_windows + 1`` for a full build)."""
        return int(self.count.shape[0])

    @property
    def covered(self) -> int:
        """Basic windows the committed rows cover (``rows - 1``, floored at 0)."""
        return max(self.rows - 1, 0)

    @property
    def writable(self) -> bool:
        """Whether the tables can be extended in place."""
        return all(
            a.flags.writeable
            for a in (self.count, self.first, self.second, self.cross)
        )

    @classmethod
    def allocate(cls, offsets: np.ndarray, n_windows: int) -> "PrefixAggregates":
        """Zero-initialized in-memory tables for ``n_windows`` basic windows."""
        offsets = np.asarray(offsets, dtype=np.float64)
        if n_windows <= 0:
            raise SketchError(f"n_windows must be positive, got {n_windows}")
        n = offsets.shape[0]
        capacity = n_windows + 1
        return cls(
            offsets=offsets.copy(),
            count=np.zeros(capacity),
            first=np.zeros((capacity, n)),
            second=np.zeros((capacity, n)),
            cross=np.zeros((capacity, n, n)),
            rows=1,
        )

    def extend(
        self,
        means: np.ndarray,
        stds: np.ndarray,
        covs: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Fold the next windows (in order) into the tables.

        Args:
            means: Per-series means of the appended windows, shape ``(n, k)``.
            stds: Per-series population stds, shape ``(n, k)``.
            covs: Per-window covariance matrices, shape ``(k, n, n)``.
            sizes: Per-window sizes, shape ``(k,)``.
        """
        if not self.writable:
            raise SketchError("prefix tables are read-only")
        if self.rows < 1:
            raise SketchError("prefix tables hold no zero row to extend from")
        means, stds, sizes = _check_window_stats(means, stds, sizes)
        n, k = means.shape
        if n != self.n_series:
            raise SketchError(
                f"chunk holds {n} series, prefix tables hold {self.n_series}"
            )
        covs = np.asarray(covs, dtype=np.float64)
        if covs.shape != (k, n, n):
            raise SketchError(
                f"chunk covs shape {covs.shape} incompatible with "
                f"{k} windows of {n} series"
            )
        if self.rows + k > self.capacity:
            raise SketchError(
                f"prefix tables hold {self.capacity} rows; cannot extend "
                f"{self.rows} committed rows by {k} windows"
            )
        centered = (means - self.offsets[:, None]).T  # (k, n)
        weights = sizes[:, None]
        rows = self.rows
        _extend_cumsum(self.count, rows, sizes)
        _extend_cumsum(self.first, rows, weights * centered)
        _extend_cumsum(self.second, rows, weights * (stds.T**2 + centered**2))
        _extend_cumsum(
            self.cross,
            rows,
            sizes[:, None, None]
            * (covs + centered[:, :, None] * centered[:, None, :]),
        )
        self.rows = rows + k

    def moments(self, lo: int, hi: int) -> tuple[float, np.ndarray, np.ndarray]:
        """Centered range aggregates ``(T, s1, s2)`` over windows ``[lo, hi)``.

        The cross-moment difference is intentionally not materialized here —
        :func:`combine_matrix_prefix` takes the full ``(n, n)`` slice,
        :func:`combine_row_prefix` only one row of it.
        """
        self._check_range(lo, hi)
        total = float(self.count[hi] - self.count[lo])
        if total <= 0.0:
            raise SketchError("window sizes must sum to a positive total")
        return total, self.first[hi] - self.first[lo], self.second[hi] - self.second[lo]

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo < hi <= self.covered:
            raise SketchError(
                f"prefix range [{lo}, {hi}) outside the covered windows "
                f"[0, {self.covered})"
            )


def build_prefix_aggregates(
    means: np.ndarray,
    stds: np.ndarray,
    covs: np.ndarray,
    sizes: np.ndarray,
    offsets: np.ndarray | None = None,
) -> PrefixAggregates:
    """Build the full prefix tables of a sketched window sequence.

    Args:
        means: Per-series per-window means, shape ``(n, ns)``.
        stds: Per-series per-window population stds, shape ``(n, ns)``.
        covs: Per-window covariance matrices, shape ``(ns, n, n)``.
        sizes: Per-window sizes, shape ``(ns,)``.
        offsets: Optional per-series centering offsets; defaults to the
            weighted grand mean over all ``ns`` windows (the choice that
            minimizes cancellation for stationary series).

    Returns:
        Writable in-memory :class:`PrefixAggregates` covering every window.
    """
    means, stds, sizes = _check_window_stats(means, stds, sizes)
    n, ns = means.shape
    covs = np.asarray(covs, dtype=np.float64)
    if covs.shape != (ns, n, n):
        raise SketchError(
            f"covs shape {covs.shape} incompatible with {ns} windows of {n} series"
        )
    if offsets is None:
        offsets = means @ sizes / float(np.sum(sizes))
    offsets = np.asarray(offsets, dtype=np.float64)
    if offsets.shape != (n,):
        raise SketchError(f"offsets shape {offsets.shape} != ({n},)")
    aggregates = PrefixAggregates.allocate(offsets, ns)
    aggregates.extend(means, stds, covs, sizes)
    return aggregates


def _pooled_scales(
    total: float, mu: np.ndarray, s2: np.ndarray, row_magnitude: np.ndarray
) -> np.ndarray:
    """Undivided pooled stds from centered range moments (guarded).

    ``pooled = s2 - T mu^2`` equals ``sum B (sigma^2 + delta^2)`` exactly in
    real arithmetic; in floats the result carries two noise floors that are
    zeroed here so the range is treated as constant, like the direct
    kernel's zero-variance convention:

    * :data:`VARIANCE_GUARD` of the (always larger) centered second moment —
      the subtraction's own cancellation noise, and
    * ``_KAHAN_BLOCK * eps`` of the *prefix row magnitude* — the rounding
      already baked into the cumulative tables. A short range deep in a
      long history differences two huge nearly-equal rows, so its noise
      scales with the rows, not with the (possibly tiny) range moment.
    """
    pooled = s2 - total * mu**2
    floor = np.maximum(
        VARIANCE_GUARD * np.maximum(s2, 0.0),
        _KAHAN_BLOCK * np.finfo(np.float64).eps * np.abs(row_magnitude),
    )
    pooled = np.where(pooled > floor, pooled, 0.0)
    return np.sqrt(pooled)


def combine_matrix_prefix(
    aggregates: PrefixAggregates, lo: int, hi: int
) -> np.ndarray:
    """Exact all-pairs correlation over windows ``[lo, hi)`` in ``O(n^2)``.

    Matches :func:`~repro.core.lemma1.combine_matrix` over the same windows
    within :data:`PREFIX_ATOL` (see the module docstring's accuracy
    contract), at a cost independent of ``hi - lo``.

    Args:
        aggregates: Prefix tables covering at least window ``hi - 1``.
        lo: First selected basic window (inclusive).
        hi: Last selected basic window (exclusive).

    Returns:
        The ``(n, n)`` Pearson correlation matrix, unit diagonal; rows and
        columns of (effectively) constant series are zero off-diagonal.
    """
    total, s1, s2 = aggregates.moments(lo, hi)
    mu = s1 / total
    scale = _pooled_scales(total, mu, s2, aggregates.second[hi])
    numer = (
        aggregates.cross[hi] - aggregates.cross[lo] - total * np.outer(mu, mu)
    )
    denom = np.outer(scale, scale)
    corr = np.zeros_like(denom)
    np.divide(numer, denom, out=corr, where=denom > 0.0)
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)
    return corr


def combine_row_prefix(
    aggregates: PrefixAggregates, lo: int, hi: int, row: int
) -> np.ndarray:
    """One correlation-matrix row over windows ``[lo, hi)`` in ``O(n)``.

    The prefix form of :func:`~repro.core.lemma1.combine_row` (Algorithm 5's
    ``Computecorr`` primitive): only row ``row`` of the cross table is read.

    Args:
        aggregates: Prefix tables covering at least window ``hi - 1``.
        lo: First selected basic window (inclusive).
        hi: Last selected basic window (exclusive).
        row: Index of the anchor series.

    Returns:
        Length-``n`` array of exact correlations (entry ``row`` is 1.0).
    """
    total, s1, s2 = aggregates.moments(lo, hi)
    n = aggregates.n_series
    if not 0 <= row < n:
        raise SketchError(f"row {row} out of range [0, {n})")
    mu = s1 / total
    scale = _pooled_scales(total, mu, s2, aggregates.second[hi])
    numer = (
        aggregates.cross[hi, row]
        - aggregates.cross[lo, row]
        - total * mu[row] * mu
    )
    denom = scale[row] * scale
    out = np.zeros(n)
    np.divide(numer, denom, out=out, where=denom > 0.0)
    np.clip(out, -1.0, 1.0, out=out)
    out[row] = 1.0
    return out
